//! Warm restart from a persisted solution store, measured against the
//! process-wide compilation counter: a restarted cluster that loads its
//! snapshots serves previously solved work **without recompiling** — the
//! routed submission path fingerprints the model with the compile-free
//! canonical form and hits the store before any compilation is attempted.
//!
//! Single `#[test]`, own binary: the compilation counter is global to the
//! process, so this is the only way to keep unrelated compilations out of
//! the measured delta (same discipline as `compile_once.rs`).

use qdm::prelude::*;
use qdm::qubo::compiled::compilation_count;
use qdm::qubo::model::QuboModel;
use qdm::qubo::penalty;
use std::sync::Arc;

struct PickOne {
    costs: Vec<f64>,
}

impl DmProblem for PickOne {
    fn name(&self) -> String {
        format!("warm-pick-{}", self.costs.len())
    }
    fn n_vars(&self) -> usize {
        self.costs.len()
    }
    fn to_qubo(&self) -> QuboModel {
        let mut q = QuboModel::new(self.costs.len());
        for (i, &c) in self.costs.iter().enumerate() {
            q.add_linear(i, c);
        }
        let vars: Vec<usize> = (0..self.costs.len()).collect();
        let weight = penalty::penalty_weight(&q);
        penalty::exactly_one(&mut q, &vars, weight);
        q
    }
    fn decode(&self, bits: &[bool]) -> Decoded {
        let chosen: Vec<usize> =
            bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
        Decoded {
            feasible: chosen.len() == 1,
            objective: chosen.iter().map(|&i| self.costs[i]).sum(),
            summary: format!("chose {chosen:?}"),
        }
    }
}

fn pick(n: usize) -> SharedProblem {
    Arc::new(PickOne { costs: (0..n).map(|i| ((i * 3) % 7) as f64 + 0.75).collect() })
}

fn cluster(shards: usize) -> ClusterService {
    ClusterService::new(ClusterConfig {
        shards,
        service: ServiceConfig { workers: 1, cache_capacity: 32, ..Default::default() },
        ..Default::default()
    })
}

#[test]
fn warm_restart_serves_snapshotted_work_without_recompiling() {
    let specs = || (0..4).map(|i| JobSpec::new(pick(4 + i), 900 + i as u64)).collect::<Vec<_>>();

    // Cold cluster: solve everything once, then export the per-shard
    // solution stores.
    let cold = cluster(2);
    let mut expected = Vec::new();
    {
        let session = cold.session("warm-tenant", SessionConfig::default());
        let handles: Vec<JobHandle> =
            specs().into_iter().map(|spec| session.submit(spec).expect("admitted")).collect();
        for handle in &handles {
            let outcome = handle.wait();
            let result = outcome.as_ref().expect("cold solve must succeed");
            assert!(!result.from_cache, "first sight of each job must be a real solve");
            expected.push((result.report.bits.clone(), result.report.energy));
        }
    }
    let snapshots = cold.save_snapshots();
    assert_eq!(snapshots.len(), 2, "one snapshot per shard");
    assert_eq!(snapshots.iter().map(SolutionSnapshot::len).sum::<usize>(), 4);
    drop(cold);

    // Warm cluster: load the stores, then resubmit the identical jobs.
    // The routed path fingerprints with `QuboModel::canonical_form` (no
    // compilation) and finds every result in the store — the compile
    // counter must not move at all.
    let warm = cluster(2);
    warm.load_snapshots(&snapshots);
    let compiles_before = compilation_count();
    {
        let session = warm.session("warm-tenant", SessionConfig::default());
        let handles: Vec<JobHandle> =
            specs().into_iter().map(|spec| session.submit(spec).expect("admitted")).collect();
        for (i, handle) in handles.iter().enumerate() {
            let outcome = handle.wait();
            let result = outcome.as_ref().expect("warm serve must succeed");
            assert!(result.from_cache, "job {i}: a snapshotted result must come from the store");
            assert_eq!(
                (result.report.bits.clone(), result.report.energy),
                expected[i],
                "job {i}: warm restart must be bit-identical to the cold solve"
            );
        }
    }
    assert_eq!(
        compilation_count(),
        compiles_before,
        "serving from the restored store must not compile anything"
    );
    let report = warm.report();
    assert_eq!(report.jobs_completed, 4);
    assert_eq!(report.snapshot_loaded, 4, "all four restored entries are counted");
}
