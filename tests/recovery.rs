//! Crash-safety integration tests: the durable job journal, deterministic
//! replay, and the snapshotted solution store.
//!
//! The scenario under test is always the same: a process accepts jobs,
//! dies at some stage of processing — post-submit, mid-compile, mid-solve
//! (between checkpoints), or pre-serve — and a fresh process reconstructed
//! over the same journal replays every unfinished job **bit-identically**
//! while losing nothing and resurrecting nothing. Crashes are simulated
//! with injected faults and [`SolverService::simulate_crash`]; nothing in
//! this file sleeps on wall-clock time — parked backoffs and injected
//! delays run on a [`ManualClock`].

use qdm::prelude::*;
use qdm::qubo::model::QuboModel;
use qdm::qubo::penalty;
use qdm::qubo::probe::{SolverCheckpoint, StageProbe};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Minimal pick-one problem (same shape as the robustness tests): `n`
/// binary choices, exactly one must be set.
struct PickOne {
    costs: Vec<f64>,
}

impl DmProblem for PickOne {
    fn name(&self) -> String {
        format!("recovery-pick-{}", self.costs.len())
    }
    fn n_vars(&self) -> usize {
        self.costs.len()
    }
    fn to_qubo(&self) -> QuboModel {
        let mut q = QuboModel::new(self.costs.len());
        for (i, &c) in self.costs.iter().enumerate() {
            q.add_linear(i, c);
        }
        let vars: Vec<usize> = (0..self.costs.len()).collect();
        let weight = penalty::penalty_weight(&q);
        penalty::exactly_one(&mut q, &vars, weight);
        q
    }
    fn decode(&self, bits: &[bool]) -> Decoded {
        let chosen: Vec<usize> =
            bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
        Decoded {
            feasible: chosen.len() == 1,
            objective: chosen.iter().map(|&i| self.costs[i]).sum(),
            summary: format!("chose {chosen:?}"),
        }
    }
}

fn pick(n: usize) -> SharedProblem {
    Arc::new(PickOne { costs: (0..n).map(|i| ((i * 7) % 13) as f64 + 0.25).collect() })
}

/// A manually opened latch: `block()` parks the calling thread until some
/// other thread calls `open()`.
struct Gate {
    release: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Arc<Self> {
        Arc::new(Self { release: Mutex::new(false), cv: Condvar::new() })
    }
    fn open(&self) {
        *self.release.lock().unwrap() = true;
        self.cv.notify_all();
    }
    fn block(&self) {
        let mut open = self.release.lock().unwrap();
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
    }
}

/// Pick-one whose `decode` blocks on a gate: pins the single worker inside
/// a job (pre-serve) so the test controls exactly what is in the queue
/// when the crash hits.
struct GatedPick {
    costs: Vec<f64>,
    gate: Arc<Gate>,
    /// Opened by `decode` on entry, so tests can wait until the worker is
    /// provably pinned inside this job before acting.
    entered: Arc<Gate>,
}

impl DmProblem for GatedPick {
    fn name(&self) -> String {
        format!("recovery-gated-{}", self.costs.len())
    }
    fn n_vars(&self) -> usize {
        self.costs.len()
    }
    fn to_qubo(&self) -> QuboModel {
        let mut q = QuboModel::new(self.costs.len());
        for (i, &c) in self.costs.iter().enumerate() {
            q.add_linear(i, c);
        }
        let vars: Vec<usize> = (0..self.costs.len()).collect();
        let weight = penalty::penalty_weight(&q);
        penalty::exactly_one(&mut q, &vars, weight);
        q
    }
    fn decode(&self, bits: &[bool]) -> Decoded {
        self.entered.open();
        self.gate.block();
        let chosen: Vec<usize> =
            bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
        Decoded {
            feasible: chosen.len() == 1,
            objective: chosen.iter().map(|&i| self.costs[i]).sum(),
            summary: format!("chose {chosen:?}"),
        }
    }
}

/// Zero-sleep retry policy for single-attempt crash tests.
fn no_retries() -> RetryPolicy {
    RetryPolicy { max_retries: 0, backoff_base: Duration::ZERO, backoff_cap: Duration::ZERO }
}

/// The ledger must balance no matter where the crash hit.
fn assert_balanced(report: &RuntimeReport) {
    assert_eq!(
        report.jobs_submitted,
        report.jobs_completed + report.jobs_failed + report.jobs_cancelled,
        "ledger out of balance: {report}"
    );
    assert_eq!(report.queue_depth, 0, "no job may be left behind in a queue: {report}");
}

fn bits_energy_backend(outcome: &JobOutcome) -> (Vec<bool>, f64, String) {
    let result = outcome.as_ref().expect("job must resolve successfully");
    (result.report.bits.clone(), result.report.energy, result.backend.clone())
}

// ---------------------------------------------------------------------------
// Crash-site matrix, single service: die mid-compile / mid-solve /
// pre-serve, recover from the journal, replay bit-identically.
// ---------------------------------------------------------------------------

#[test]
fn crash_at_each_site_replays_bit_identically() {
    for site in [FaultSite::Compile, FaultSite::Solve, FaultSite::Serve] {
        let label = format!("site={}", site.name());
        let spec = || JobSpec::new(pick(6), 42);

        // Clean baseline: what the job produces when nothing crashes.
        let baseline = SolverService::new(ServiceConfig {
            workers: 1,
            cache_capacity: 16,
            ..Default::default()
        })
        .run(spec());
        let expected = bits_energy_backend(&baseline);

        // Doomed run: the fault kills the one allowed attempt at `site`,
        // so the job dies with a `Submitted` record and no terminal one —
        // exactly what a process crash at that stage leaves behind.
        let journal = Arc::new(MemoryJournal::new());
        let plan = Arc::new(FaultPlan::new().fail_at(
            site,
            FaultWhen::Nth(1),
            FaultAction::Panic("crash-site matrix".into()),
        ));
        let doomed = SolverService::new(ServiceConfig {
            workers: 1,
            cache_capacity: 16,
            injector: Some(Arc::clone(&plan) as _),
            retry: no_retries(),
            journal: Some(Arc::clone(&journal) as _),
            ..Default::default()
        });
        let outcome = doomed.run(spec());
        assert!(outcome.is_err(), "{label}: the injected crash must kill the job");
        assert_eq!(plan.fired(), 1, "{label}: the armed fault must actually fire");
        drop(doomed);

        let open = unfinished(&journal.events());
        assert_eq!(open.len(), 1, "{label}: the dead job must be journaled as unfinished");
        assert_eq!(open[0].seed, 42, "{label}: the journal must capture the seed verbatim");

        // Recovery: a fresh service over the same journal replays the job
        // from its journaled QUBO + seed and converges the journal.
        let recovered = SolverService::new(ServiceConfig {
            workers: 1,
            cache_capacity: 16,
            journal: Some(Arc::clone(&journal) as _),
            ..Default::default()
        });
        let handles = recovered.recover(journal.as_ref());
        assert_eq!(handles.len(), 1, "{label}");
        let replayed = handles[0].wait();
        assert_eq!(
            bits_energy_backend(&replayed),
            expected,
            "{label}: replay must be bit-identical"
        );

        let report = recovered.report();
        assert_eq!(report.jobs_recovered, 1, "{label}");
        assert_eq!(report.jobs_completed, 1, "{label}");
        assert_balanced(&report);
        drop(recovered);
        assert!(
            unfinished(&journal.events()).is_empty(),
            "{label}: the replayed completion must converge the journal"
        );
    }
}

// ---------------------------------------------------------------------------
// Post-submit crash: the job is accepted and journaled but no worker ever
// picks it up before the process dies.
// ---------------------------------------------------------------------------

#[test]
fn post_submit_crash_recovers_queued_job() {
    let journal = Arc::new(MemoryJournal::new());
    let service = SolverService::new(ServiceConfig {
        workers: 1,
        cache_capacity: 16,
        journal: Some(Arc::clone(&journal) as _),
        ..Default::default()
    });

    // Pin the single worker inside the blocker's decode (pre-serve), then
    // queue the target behind it: the target is journaled but unpicked.
    let gate = Gate::new();
    let entered = Gate::new();
    let blocker: SharedProblem = Arc::new(GatedPick {
        costs: vec![1.0, 0.5, 2.0],
        gate: Arc::clone(&gate),
        entered: Arc::clone(&entered),
    });
    let target_problem = pick(7);
    let session = service.session(SessionConfig::default());
    let _blocker_handle = session.submit(JobSpec::new(blocker, 5));
    let target_handle = session.submit(JobSpec::new(Arc::clone(&target_problem), 43));
    let target_id = target_handle.id();
    drop(session);
    // Only crash once the worker is provably pinned inside the blocker —
    // otherwise the drain could empty the queue before anything ran.
    entered.block();

    // Crash on a helper thread: `simulate_crash` marks the service dying
    // and drains the queue (dropping the target's spec — observable as the
    // problem Arc's strong count falling back to ours) but cannot join the
    // gated worker until we open the gate.
    let crasher = std::thread::spawn(move || service.simulate_crash());
    while Arc::strong_count(&target_problem) != 1 {
        std::thread::yield_now();
    }
    gate.open();
    crasher.join().expect("crash simulation must not panic");
    assert!(
        target_handle.try_result().is_none(),
        "a crashed-away job resolves on nobody's handle, like a real dead process"
    );

    // The blocker finished (journal converged); only the target is open.
    let open = unfinished(&journal.events());
    assert_eq!(open.len(), 1, "exactly the queued-but-unpicked job is unfinished");
    assert_eq!(open[0].job_id, target_id);

    // Baseline for the target, then recover and compare.
    let expected = bits_energy_backend(
        &SolverService::new(ServiceConfig { workers: 1, cache_capacity: 16, ..Default::default() })
            .run(JobSpec::new(pick(7), 43)),
    );
    let recovered = SolverService::new(ServiceConfig {
        workers: 1,
        cache_capacity: 16,
        journal: Some(Arc::clone(&journal) as _),
        ..Default::default()
    });
    let handles = recovered.recover(journal.as_ref());
    assert_eq!(handles.len(), 1);
    assert_eq!(handles[0].id(), target_id, "recovery must reuse the journaled job id");
    assert_eq!(bits_energy_backend(&handles[0].wait()), expected);
    assert_balanced(&recovered.report());
    drop(recovered);
    assert!(unfinished(&journal.events()).is_empty());
}

// ---------------------------------------------------------------------------
// Mid-solve crash between checkpoints: the solver has emitted resumable
// checkpoints when the process dies; replay still reproduces the original
// trajectory exactly because the journal pins QUBO + seed + backend.
// ---------------------------------------------------------------------------

/// Checkpoint-subscribed probe that kills the attempt at the `limit`-th
/// checkpoint — a crash *between* restart boundaries of a live solve.
struct CheckpointCrash {
    seen: AtomicUsize,
    limit: usize,
    saw_rng_state: AtomicBool,
}

impl StageProbe for CheckpointCrash {
    fn wants_checkpoints(&self) -> bool {
        true
    }
    fn on_checkpoint(&self, checkpoint: &SolverCheckpoint) {
        if checkpoint.rng_state.is_some() {
            self.saw_rng_state.store(true, Ordering::SeqCst);
        }
        let n = self.seen.fetch_add(1, Ordering::SeqCst) + 1;
        if n == self.limit {
            panic!("injected crash at solver checkpoint {n}");
        }
    }
}

#[test]
fn mid_solve_crash_between_checkpoints_replays_bit_identically() {
    let spec = |probe: Option<Arc<dyn StageProbe>>| {
        let options = PipelineOptions { probe, ..Default::default() };
        let mut spec = JobSpec::new(pick(9), 77).with_options(options);
        spec.backend = BackendChoice::Named("simulated-annealing".into());
        spec
    };

    let baseline =
        SolverService::new(ServiceConfig { workers: 1, cache_capacity: 16, ..Default::default() })
            .run(spec(None));
    let expected = bits_energy_backend(&baseline);

    // Doomed run: the probe panics at the second checkpoint, i.e. after
    // the solver has already made resumable progress.
    let journal = Arc::new(MemoryJournal::new());
    let probe = Arc::new(CheckpointCrash {
        seen: AtomicUsize::new(0),
        limit: 2,
        saw_rng_state: AtomicBool::new(false),
    });
    let doomed = SolverService::new(ServiceConfig {
        workers: 1,
        cache_capacity: 16,
        retry: no_retries(),
        journal: Some(Arc::clone(&journal) as _),
        ..Default::default()
    });
    let outcome = doomed.run(spec(Some(Arc::clone(&probe) as _)));
    assert!(outcome.is_err(), "the mid-solve crash must kill the job");
    assert_eq!(
        probe.seen.load(Ordering::SeqCst),
        2,
        "the crash must land at the second checkpoint, after real progress"
    );
    assert!(
        probe.saw_rng_state.load(Ordering::SeqCst),
        "sequential SA checkpoints must carry resumable RNG state"
    );
    drop(doomed);

    // Probes are observation-only and deliberately not journaled: the
    // replay runs the identical solve trajectory from scratch, clean.
    let open = unfinished(&journal.events());
    assert_eq!(open.len(), 1);
    assert_eq!(open[0].backend, BackendChoice::Named("simulated-annealing".into()));

    let recovered = SolverService::new(ServiceConfig {
        workers: 1,
        cache_capacity: 16,
        journal: Some(Arc::clone(&journal) as _),
        ..Default::default()
    });
    let handles = recovered.recover(journal.as_ref());
    assert_eq!(handles.len(), 1);
    assert_eq!(bits_energy_backend(&handles[0].wait()), expected);
    assert_balanced(&recovered.report());
    // Join the workers before inspecting the journal: the terminal record
    // lands right after the waiter wakes, not before.
    drop(recovered);
    assert!(unfinished(&journal.events()).is_empty());
}

// ---------------------------------------------------------------------------
// Cancelled jobs are terminal: recovery must not resurrect them.
// ---------------------------------------------------------------------------

#[test]
fn cancelled_jobs_are_not_resurrected() {
    let journal = Arc::new(MemoryJournal::new());
    let service = SolverService::new(ServiceConfig {
        workers: 1,
        cache_capacity: 16,
        journal: Some(Arc::clone(&journal) as _),
        ..Default::default()
    });
    let gate = Gate::new();
    let blocker: SharedProblem = Arc::new(GatedPick {
        costs: vec![0.5, 1.5],
        gate: Arc::clone(&gate),
        entered: Gate::new(),
    });
    let session = service.session(SessionConfig::default());
    let _blocker_handle = session.submit(JobSpec::new(blocker, 1));
    let victim = session.submit(JobSpec::new(pick(5), 2));
    assert_eq!(victim.cancel(), CancelStatus::Cancelled, "still queued, so removable");
    gate.open();
    drop(session);
    drop(service);

    assert!(
        unfinished(&journal.events()).is_empty(),
        "a queue-cancelled job has a terminal journal record and must not replay"
    );
    let recovered = SolverService::new(ServiceConfig::default());
    assert!(recovered.recover(journal.as_ref()).is_empty());
}

// ---------------------------------------------------------------------------
// FileJournal: the same story through a real on-disk WAL reopened by a
// "new process", plus the snapshotted solution store round-tripping
// through its file format.
// ---------------------------------------------------------------------------

#[test]
fn file_journal_and_snapshot_survive_process_restart() {
    let dir = std::env::temp_dir();
    let journal_path = dir.join(format!("qdm-recovery-{}.journal", std::process::id()));
    let snapshot_path = dir.join(format!("qdm-recovery-{}.snapshot", std::process::id()));
    let _ = std::fs::remove_file(&journal_path);
    let _ = std::fs::remove_file(&snapshot_path);

    // Process 1: one job completes, a second dies mid-solve.
    let plan = Arc::new(FaultPlan::new().fail_at(
        FaultSite::Solve,
        FaultWhen::Nth(2),
        FaultAction::Panic("file-journal crash".into()),
    ));
    let journal1 = Arc::new(FileJournal::open(&journal_path).expect("open fresh journal"));
    let service1 = SolverService::new(ServiceConfig {
        workers: 1,
        cache_capacity: 16,
        injector: Some(Arc::clone(&plan) as _),
        retry: no_retries(),
        journal: Some(Arc::clone(&journal1) as _),
        ..Default::default()
    });
    let ok = service1.run(JobSpec::new(pick(5), 10));
    assert!(ok.is_ok());
    let dead = service1.run(JobSpec::new(pick(8), 11));
    assert!(dead.is_err());
    drop(service1);
    drop(journal1);

    // Process 2: reopen the WAL from disk, replay the dead job, snapshot
    // the rebuilt solution store to disk.
    let journal2 = Arc::new(FileJournal::open(&journal_path).expect("reopen journal"));
    let open = unfinished(&journal2.events());
    assert_eq!(open.len(), 1, "only the mid-solve casualty is unfinished after reopen");
    assert_eq!(open[0].seed, 11);
    let expected = bits_energy_backend(
        &SolverService::new(ServiceConfig { workers: 1, cache_capacity: 16, ..Default::default() })
            .run(JobSpec::new(pick(8), 11)),
    );
    let service2 = SolverService::new(ServiceConfig {
        workers: 1,
        cache_capacity: 16,
        journal: Some(Arc::clone(&journal2) as _),
        ..Default::default()
    });
    let handles = service2.recover(journal2.as_ref());
    assert_eq!(handles.len(), 1);
    assert_eq!(bits_energy_backend(&handles[0].wait()), expected);
    let snapshot = service2.save_snapshot();
    assert_eq!(snapshot.len(), 1, "the replayed result must be in the exported store");
    snapshot.write_to(&snapshot_path).expect("persist snapshot");
    assert_eq!(service2.report().snapshot_saved, 1);
    drop(service2);
    drop(journal2);
    assert!(unfinished(&FileJournal::open(&journal_path).unwrap().events()).is_empty());

    // Process 3: warm-start from the snapshot alone — the previously
    // solved job is served from the store, bit-identically.
    let restored = SolutionSnapshot::read_from(&snapshot_path).expect("reload snapshot");
    let service3 =
        SolverService::new(ServiceConfig { workers: 1, cache_capacity: 16, ..Default::default() });
    service3.load_snapshot(&restored);
    assert_eq!(service3.report().snapshot_loaded, 1);
    let warm = service3.run(JobSpec::new(pick(8), 11));
    let result = warm.as_ref().expect("warm run must succeed");
    assert!(result.from_cache, "a snapshotted result must be served from the store");
    assert_eq!(bits_energy_backend(&warm), expected);

    let _ = std::fs::remove_file(&journal_path);
    let _ = std::fs::remove_file(&snapshot_path);
}

// ---------------------------------------------------------------------------
// Cluster crash: every shard dies with jobs in flight; a cluster rebuilt
// over the same per-shard journals loses nothing, duplicates nothing, and
// replays every job on its original shard.
// ---------------------------------------------------------------------------

#[test]
fn cluster_crash_recovers_every_shard_bit_identically() {
    for site in [FaultSite::Compile, FaultSite::Solve, FaultSite::Serve] {
        let label = format!("site={}", site.name());
        let shard_count = 4;
        let sizes: Vec<usize> = (3..15).collect();
        let specs = |sizes: &[usize]| -> Vec<JobSpec> {
            sizes.iter().enumerate().map(|(i, &n)| JobSpec::new(pick(n), 100 + i as u64)).collect()
        };

        // Clean baseline cluster: same sharding, same per-shard arrival
        // order, no faults — the reference trajectory per seed.
        let baseline = ClusterService::new(ClusterConfig {
            shards: shard_count,
            service: ServiceConfig { workers: 1, cache_capacity: 32, ..Default::default() },
            ..Default::default()
        });
        let mut expected = std::collections::HashMap::new();
        {
            let session = baseline.session("tenant-a", SessionConfig::default());
            let handles: Vec<JobHandle> = specs(&sizes)
                .into_iter()
                .map(|spec| session.submit(spec).expect("admitted"))
                .collect();
            for (i, handle) in handles.iter().enumerate() {
                expected.insert(100 + i as u64, bits_energy_backend(&handle.wait()));
            }
        }
        drop(baseline);

        // Doomed cluster: every shard journals its own jobs; the injected
        // fault kills every single-attempt job at `site`.
        let journals: Vec<Arc<MemoryJournal>> =
            (0..shard_count).map(|_| Arc::new(MemoryJournal::new())).collect();
        let journal_dyn: Vec<Arc<dyn Journal>> =
            journals.iter().map(|j| Arc::clone(j) as _).collect();
        let plan = Arc::new(FaultPlan::new().fail_at(
            site,
            FaultWhen::Always,
            FaultAction::Panic("cluster crash".into()),
        ));
        let doomed = ClusterService::new(ClusterConfig {
            shards: shard_count,
            service: ServiceConfig {
                workers: 1,
                cache_capacity: 32,
                injector: Some(Arc::clone(&plan) as _),
                retry: no_retries(),
                ..Default::default()
            },
            journals: Some(journal_dyn.clone()),
            ..Default::default()
        });
        let submitted_ids: HashSet<u64> = {
            let session = doomed.session("tenant-a", SessionConfig::default());
            let handles: Vec<JobHandle> = specs(&sizes)
                .into_iter()
                .map(|spec| session.submit(spec).expect("admitted"))
                .collect();
            for handle in &handles {
                assert!(handle.wait().is_err(), "{label}: every job must die at the fault");
            }
            handles.iter().map(JobHandle::id).collect()
        };
        assert_eq!(plan.fired(), sizes.len() as u64, "{label}");
        doomed.simulate_crash();

        // Every journal record belongs to its shard, and the ring (a pure
        // function of the shard count) still routes its fingerprint there.
        let per_shard_open: Vec<usize> =
            journals.iter().map(|j| unfinished(&j.events()).len()).collect();
        assert_eq!(per_shard_open.iter().sum::<usize>(), sizes.len(), "{label}: no job lost");

        // Rebuilt cluster over the *same* journals, fault-free.
        let rebuilt = ClusterService::new(ClusterConfig {
            shards: shard_count,
            service: ServiceConfig { workers: 1, cache_capacity: 32, ..Default::default() },
            journals: Some(journal_dyn),
            ..Default::default()
        });
        for (shard, journal) in journals.iter().enumerate() {
            for record in unfinished(&journal.events()) {
                assert_eq!(record.shard, Some(shard as u64), "{label}");
                assert_eq!(record.tenant.as_deref(), Some("tenant-a"), "{label}");
                let (fingerprint, _) = record.qubo.canonical_form();
                assert_eq!(
                    rebuilt.shard_for_fingerprint(fingerprint),
                    shard,
                    "{label}: recovery must preserve ring affinity"
                );
            }
        }
        // Capture the id → seed map *before* recovery starts: replayed
        // completions converge the journals concurrently.
        let open_by_id: std::collections::HashMap<u64, u64> = journals
            .iter()
            .flat_map(|j| unfinished(&j.events()))
            .map(|r| (r.job_id, r.seed))
            .collect();
        let handles = rebuilt.recover();
        let recovered_ids: HashSet<u64> = handles.iter().map(JobHandle::id).collect();
        assert_eq!(
            recovered_ids, submitted_ids,
            "{label}: exactly the submitted ids replay — none lost, none duplicated"
        );
        // Bit-identity per seed: recovered outcomes must match the clean
        // cluster's trajectory for the same submission.
        for handle in &handles {
            let seed = open_by_id[&handle.id()];
            assert_eq!(
                bits_energy_backend(&handle.wait()),
                expected[&seed],
                "{label}: shard replay must be bit-identical"
            );
        }

        let merged = rebuilt.report();
        assert_eq!(merged.jobs_recovered, sizes.len() as u64, "{label}");
        assert_eq!(merged.jobs_completed, sizes.len() as u64, "{label}");
        assert_balanced(&merged);
        for (shard, report) in rebuilt.shard_reports().iter().enumerate() {
            assert_eq!(
                report.jobs_recovered as usize, per_shard_open[shard],
                "{label}: each shard replays exactly its own journal"
            );
        }
        drop(rebuilt);
        for journal in &journals {
            assert!(unfinished(&journal.events()).is_empty(), "{label}: journals converge");
        }
    }
}

// ---------------------------------------------------------------------------
// Clock-driven waits (no wall-clock sleeps): retry backoff parks the job
// and frees the worker; injected Delay faults wait on the injected clock.
// ---------------------------------------------------------------------------

#[test]
fn retry_backoff_parks_job_and_frees_worker() {
    let clock = Arc::new(ManualClock::new(1_000_000));
    let plan = Arc::new(FaultPlan::new().fail_at(
        FaultSite::Solve,
        FaultWhen::Nth(1),
        FaultAction::Panic("first attempt dies".into()),
    ));
    let service = SolverService::new(ServiceConfig {
        workers: 1,
        cache_capacity: 16,
        injector: Some(Arc::clone(&plan) as _),
        retry: RetryPolicy {
            max_retries: 1,
            backoff_base: Duration::from_secs(5),
            backoff_cap: Duration::from_secs(5),
        },
        clock: Some(Arc::clone(&clock) as _),
        ..Default::default()
    });
    let session = service.session(SessionConfig::default());

    // Job A fails its first attempt and parks for the 5s backoff. With the
    // manual clock frozen, that backoff never elapses on its own — yet job
    // B, submitted behind it, completes: the single worker was not blocked
    // sleeping out A's backoff.
    let a = session.submit(JobSpec::new(pick(5), 21));
    let b = session.submit(JobSpec::new(pick(6), 22));
    assert!(b.wait().is_ok(), "the worker must be free to run B during A's backoff");
    assert!(
        a.try_result().is_none(),
        "A must still be parked: its backoff is on the frozen manual clock"
    );
    assert_eq!(plan.fired(), 1);

    // Advancing the clock past the backoff releases A without any thread
    // ever sleeping for real.
    clock.advance(60_000_000);
    assert!(a.wait().is_ok(), "A must complete once the clock passes its backoff");

    let report = service.report();
    assert_eq!(report.jobs_retried, 1);
    assert_eq!(report.jobs_completed, 2);
    assert_balanced(&report);
}

#[test]
fn injected_delay_fault_waits_on_the_injected_clock() {
    let clock = Arc::new(ManualClock::new(0));
    let plan = Arc::new(FaultPlan::new().fail_at(
        FaultSite::Solve,
        FaultWhen::Nth(1),
        FaultAction::Delay(Duration::from_secs(10)),
    ));
    let service = SolverService::new(ServiceConfig {
        workers: 1,
        cache_capacity: 16,
        injector: Some(Arc::clone(&plan) as _),
        clock: Some(Arc::clone(&clock) as _),
        ..Default::default()
    });
    let session = service.session(SessionConfig::default());
    let handle = session.submit(JobSpec::new(pick(5), 31));

    // A 10-second injected delay would hang a wall-clock sleep; on the
    // injected clock it discharges as fast as we advance it.
    while handle.try_result().is_none() {
        clock.advance(1_000_000);
        std::thread::yield_now();
    }
    assert!(handle.wait().is_ok());
    assert_eq!(plan.fired(), 1);
    assert_balanced(&service.report());
}
