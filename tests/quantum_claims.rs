//! Integration: the paper's quantitative quantum claims, measured.

use qdm::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn chsh_numbers_match_the_paper() {
    // "The two players win optimally with score ~0.85 using an entangled
    // Bell's state, and every pair of players who do not share entangled
    // states can succeed with probability of at most 0.75."
    let quantum = chsh_quantum_value(&ChshStrategy::optimal());
    assert!((quantum - 0.8536).abs() < 5e-4, "quantum {quantum}");
    assert!((chsh_classical_optimum() - 0.75).abs() < 1e-12);
}

#[test]
fn ghz_numbers_match_the_paper() {
    // "In the GHZ game, the entangled state achieves a probability of 1,
    // while classical resources can only achieve a probability of 0.75."
    assert!((ghz_quantum_value() - 1.0).abs() < 1e-10);
    assert!((ghz_classical_optimum() - 0.75).abs() < 1e-12);
}

#[test]
fn grover_scaling_is_square_root() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut quantum = Vec::new();
    let mut classical = Vec::new();
    for n_qubits in [6usize, 8, 10] {
        let n = 1usize << n_qubits;
        let db = QuantumDatabase::from_values((0..n as i64).collect());
        let target = n - 2; // near the end: classical pays ~N
        let q = db.search_known(|r| r.id == target, 1, &mut rng);
        assert_eq!(q.found, Some(target));
        let c = db.classical_search(|r| r.id == target);
        quantum.push(q.quantum_queries as f64);
        classical.push(c.classical_probes as f64);
    }
    // Growth from N to 16N: quantum x4-ish, classical x16-ish.
    let q_growth = quantum[2] / quantum[0];
    let c_growth = classical[2] / classical[0];
    assert!(q_growth < 5.0, "quantum growth {q_growth}");
    assert!(c_growth > 14.0, "classical growth {c_growth}");
}

#[test]
fn teleportation_preserves_arbitrary_states() {
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..30 {
        let payload = random_qubit(&mut rng);
        let out = teleport(&payload, &mut rng);
        assert!((out.delivered.fidelity(&payload) - 1.0).abs() < 1e-10);
    }
}

#[test]
fn werner_teleportation_follows_two_f_plus_one_over_three() {
    let mut rng = StdRng::seed_from_u64(3);
    let pair = WernerPair::new(0.85);
    let measured = average_werner_fidelity(pair, 4000, &mut rng);
    assert!((measured - pair.teleportation_fidelity()).abs() < 0.02);
}

#[test]
fn no_cloning_is_enforced_and_reads_are_destructive() {
    let mut rng = StdRng::seed_from_u64(4);
    let record = QuantumRecord::from_classical(1, 3, 0b110);
    assert!(record.try_clone().is_err());
    let (key, value) = record.read_destructive(&mut rng);
    assert_eq!((key, value), (1, 0b110));
    // QuantumRecord: !Clone is checked by the compile_fail doctest in
    // qdm_net::data; here we check the runtime surface only.
}

#[test]
fn bb84_detects_eavesdropping_and_honest_runs_key() {
    let mut rng = StdRng::seed_from_u64(5);
    let honest = run_bb84(&Bb84Params { n_qubits: 4096, ..Default::default() }, &mut rng);
    assert!(!honest.aborted && !honest.key.is_empty());
    let tapped = run_bb84(
        &Bb84Params { n_qubits: 4096, eavesdropper: true, ..Default::default() },
        &mut rng,
    );
    assert!(tapped.aborted && tapped.key.is_empty());
    assert!((tapped.qber - 0.25).abs() < 0.04, "QBER {}", tapped.qber);
}

#[test]
fn paper_distances_are_reachable() {
    // 248 km fiber [5] and 1203 km satellite [6] deliver pairs; 1203 km
    // bare fiber cannot.
    assert!(LinkModel::fiber(248.0).pair_rate() > 1.0);
    assert!(LinkModel::satellite(1203.0).pair_rate() > 1.0);
    assert!(LinkModel::fiber(1203.0).pair_rate() < 1e-12);
    // Repeaters rescue long-haul fiber.
    let chain = RepeaterChain::with_segments(1203.0, 16).performance();
    assert!(chain.rate_hz > LinkModel::fiber(1203.0).pair_rate() * 1e9);
}

#[test]
fn qpe_and_qft_work_end_to_end() {
    use qdm::algos::qpe::outcome_distribution;
    // A phase exactly representable on 4 counting qubits is read exactly.
    let dist = outcome_distribution(4, 5.0 / 16.0);
    assert!((dist[5] - 1.0).abs() < 1e-9);
}

#[test]
fn quantum_counting_estimates_selectivity() {
    let mut rng = StdRng::seed_from_u64(7);
    let db = QuantumDatabase::from_values((0..512).map(|v| v % 8).collect());
    let truth = db.matching_ids(|r| r.fields[0] == 0).len() as f64;
    let est = db.estimate_cardinality(|r| r.fields[0] == 0, 8, 5, &mut rng);
    assert!((est.cardinality - truth).abs() <= 6.0, "est {} vs {truth}", est.cardinality);
    assert!((est.selectivity - 0.125).abs() < 0.02);
}

#[test]
fn e91_links_nonlocality_to_security() {
    let mut rng = StdRng::seed_from_u64(8);
    let honest = run_e91(&E91Params { rounds: 6000, ..Default::default() }, &mut rng);
    assert!(honest.chsh_s > 2.5 && !honest.aborted && !honest.key.is_empty());
    let tapped =
        run_e91(&E91Params { rounds: 6000, eavesdropper: true, ..Default::default() }, &mut rng);
    assert!(tapped.chsh_s < 2.0 && tapped.aborted && tapped.key.is_empty());
}

#[test]
fn adiabatic_route_solves_a_table_one_problem() {
    use qdm::core::solver::AdiabaticSolver;
    let mut rng = StdRng::seed_from_u64(9);
    let inst = MqoInstance::generate(3, 2, 0.3, &mut rng);
    let (_, optimum) = inst.exhaustive_optimum();
    let problem = MqoProblem::new(inst);
    let report = run_pipeline(
        &problem,
        &AdiabaticSolver::default(),
        &PipelineOptions { repair: true, ..Default::default() },
        &mut rng,
    );
    assert!(report.decoded.feasible);
    assert!((report.decoded.objective - optimum).abs() < 1e-6);
}

#[test]
fn gate_level_grover_respects_device_budgets() {
    use qdm::algos::grover::grover_circuit;
    // The Fig. 1b 5-qubit chip: one Grover iteration over 5 qubits.
    let c = grover_circuit(5, 17, 1);
    assert_eq!(c.n_qubits(), 5);
    assert!(c.depth() > 0 && c.gate_count() < 60);
    // Probability already amplified above uniform after one iteration.
    let s = c.run();
    assert!(s.probability(17) > 1.0 / 32.0 * 4.0);
}

#[test]
fn entangled_measurement_correlations_are_instantaneous() {
    // Sec. II-A's Amsterdam/San Francisco anecdote: outcomes always agree.
    let mut rng = StdRng::seed_from_u64(6);
    for _ in 0..200 {
        let mut pair = bell_state(BellState::PhiPlus);
        let a = pair.measure_qubit(0, &mut rng);
        let b = pair.measure_qubit(1, &mut rng);
        assert_eq!(a, b);
    }
}
