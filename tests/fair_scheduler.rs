//! Integration regression tests for the fair scheduler
//! (`qdm_runtime::scheduler`): priority aging must bound how long sustained
//! High-priority traffic can delay a Low job, and per-session
//! deficit-round-robin must stop one deep session from monopolizing the
//! worker pool. Both schedules are deterministic (the aging clock is pops,
//! not wall time), so the tests assert exact completion orders, observed
//! through each problem's `decode` call on a single-worker service.

use qdm::prelude::*;
use std::sync::{Arc, Condvar, Mutex};

/// A signalling gate: `block()` (called from the worker) reports that the
/// job started and parks until the test calls `open()`.
#[derive(Default)]
struct Gate {
    started: (Mutex<bool>, Condvar),
    release: (Mutex<bool>, Condvar),
}

impl Gate {
    fn block(&self) {
        {
            let (lock, cond) = &self.started;
            *lock.lock().unwrap() = true;
            cond.notify_all();
        }
        let (lock, cond) = &self.release;
        let mut open = lock.lock().unwrap();
        while !*open {
            open = cond.wait(open).unwrap();
        }
    }

    fn wait_started(&self) {
        let (lock, cond) = &self.started;
        let mut started = lock.lock().unwrap();
        while !*started {
            started = cond.wait(started).unwrap();
        }
    }

    fn open(&self) {
        let (lock, cond) = &self.release;
        *lock.lock().unwrap() = true;
        cond.notify_all();
    }
}

/// Parks the single worker inside `to_qubo` so the test can queue a full
/// backlog behind it before any scheduling decision is made.
struct Blocker {
    gate: Arc<Gate>,
}

impl DmProblem for Blocker {
    fn name(&self) -> String {
        "blocker".into()
    }
    fn n_vars(&self) -> usize {
        2
    }
    fn to_qubo(&self) -> QuboModel {
        self.gate.block();
        let mut q = QuboModel::new(2);
        q.add_linear(0, 1.0).add_linear(1, 2.0);
        q
    }
    fn decode(&self, bits: &[bool]) -> Decoded {
        Decoded { feasible: true, objective: 0.0, summary: format!("{bits:?}") }
    }
}

/// A pick-one problem that records its tag into a shared log when decoded —
/// i.e. in the order the single worker actually served the jobs.
struct Tagged {
    tag: &'static str,
    n: usize,
    log: Arc<Mutex<Vec<&'static str>>>,
}

impl DmProblem for Tagged {
    fn name(&self) -> String {
        "tagged-pick".into()
    }
    fn n_vars(&self) -> usize {
        self.n
    }
    fn to_qubo(&self) -> QuboModel {
        let mut q = QuboModel::new(self.n);
        for i in 0..self.n {
            q.add_linear(i, ((i * 7) % 5) as f64 + 1.0);
        }
        let vars: Vec<usize> = (0..self.n).collect();
        penalty::exactly_one(&mut q, &vars, 50.0);
        q
    }
    fn decode(&self, bits: &[bool]) -> Decoded {
        self.log.lock().unwrap().push(self.tag);
        let chosen = bits.iter().filter(|&&b| b).count();
        Decoded { feasible: chosen == 1, objective: 0.0, summary: format!("{bits:?}") }
    }
}

fn tagged(
    tag: &'static str,
    n: usize,
    log: &Arc<Mutex<Vec<&'static str>>>,
    seed: u64,
    priority: JobPriority,
) -> JobSpec {
    let problem: SharedProblem = Arc::new(Tagged { tag, n, log: Arc::clone(log) });
    // Distinct seeds keep every job a distinct work identity: no cache hits
    // and no single-flight coalescing can hide the scheduling order.
    JobSpec::new(problem, seed).with_priority(priority)
}

#[test]
fn low_priority_job_completes_within_the_aging_bound_under_sustained_high_traffic() {
    let service =
        SolverService::new(ServiceConfig { workers: 1, cache_capacity: 256, ..Default::default() });
    let session = service.session(SessionConfig { queue_capacity: 64, ..Default::default() });
    let gate = Arc::new(Gate::default());
    let log: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));

    // Park the only worker, then queue a sustained High backlog with one
    // Low job drowning in it.
    let blocker = session.submit(JobSpec::new(Arc::new(Blocker { gate: Arc::clone(&gate) }), 1));
    gate.wait_started();
    for seed in 0..40 {
        session.submit(tagged("high", 4, &log, 100 + seed, JobPriority::High));
    }
    session.submit(tagged("low", 4, &log, 999, JobPriority::Low));
    gate.open();
    session.drain();
    assert!(blocker.wait().is_ok());

    // The concrete starvation bound: exactly AGE_AFTER_POPS High pops may
    // bypass the waiting Low lane, then its job is served — under the old
    // strict-priority drain it would have been dead last (position 40).
    let order = log.lock().unwrap().clone();
    assert_eq!(order.len(), 41);
    assert_eq!(order[AGE_AFTER_POPS as usize], "low", "order: {order:?}");
    assert!(order[..AGE_AFTER_POPS as usize].iter().all(|&t| t == "high"));
    assert!(order[AGE_AFTER_POPS as usize + 1..].iter().all(|&t| t == "high"));
}

#[test]
fn a_deep_session_cannot_monopolize_the_pool_against_a_light_one() {
    let service =
        SolverService::new(ServiceConfig { workers: 1, cache_capacity: 256, ..Default::default() });
    let deep = service.session(SessionConfig { queue_capacity: 32, ..Default::default() });
    let light = service.session(SessionConfig { queue_capacity: 8, ..Default::default() });
    let gate = Arc::new(Gate::default());
    let log: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));

    // The deep session queues ten 6-var jobs before the light session
    // submits its two; all in the same (Normal) lane. The worker is parked
    // inside the blocker's `to_qubo`, so every submission is costed by the
    // *cold* calibration model: the cheapest eligible backend for 6
    // variables is the exact enumerator (dispatch overhead + 2^6 states),
    // 5.48 µs — a deterministic DRR cost of 5 per job.
    let blocker = deep.submit(JobSpec::new(Arc::new(Blocker { gate: Arc::clone(&gate) }), 1));
    gate.wait_started();
    for seed in 0..10 {
        deep.submit(tagged("deep", 6, &log, 200 + seed, JobPriority::Normal));
    }
    for seed in 0..2 {
        light.submit(tagged("light", 6, &log, 300 + seed, JobPriority::Normal));
    }
    gate.open();
    deep.drain();
    light.drain();
    assert!(blocker.wait().is_ok());

    // Deficit round robin with DRR_QUANTUM = 16 credit and 5-cost
    // (predicted-microsecond) jobs: the deep session serves three jobs per
    // turn, then the light session drains completely — it is finished by
    // the fifth completion instead of waiting out the entire ten-deep
    // backlog.
    let order = log.lock().unwrap().clone();
    let expected: Vec<&str> = ["deep", "deep", "deep", "light", "light"]
        .into_iter()
        .chain(std::iter::repeat_n("deep", 7))
        .collect();
    assert_eq!(order, expected, "DRR must interleave the sessions deterministically");
}

#[test]
fn strict_priority_policy_preserves_the_legacy_drain_order() {
    let service = SolverService::new(ServiceConfig {
        workers: 1,
        cache_capacity: 256,
        scheduling: SchedulerPolicy::StrictPriority,
        ..Default::default()
    });
    let deep = service.session(SessionConfig { queue_capacity: 32, ..Default::default() });
    let light = service.session(SessionConfig { queue_capacity: 8, ..Default::default() });
    let gate = Arc::new(Gate::default());
    let log: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));

    let blocker = deep.submit(JobSpec::new(Arc::new(Blocker { gate: Arc::clone(&gate) }), 1));
    gate.wait_started();
    for seed in 0..4 {
        deep.submit(tagged("deep", 6, &log, 400 + seed, JobPriority::Normal));
    }
    light.submit(tagged("light", 6, &log, 500, JobPriority::Normal));
    light.submit(tagged("urgent", 6, &log, 501, JobPriority::High));
    gate.open();
    deep.drain();
    light.drain();
    assert!(blocker.wait().is_ok());

    // Legacy semantics on request: strict lane order, FIFO within a lane,
    // no per-session interleaving — the light session's Normal job waits
    // behind the deep session's entire backlog.
    let order = log.lock().unwrap().clone();
    assert_eq!(order, vec!["urgent", "deep", "deep", "deep", "deep", "light"]);
}
