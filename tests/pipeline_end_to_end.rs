//! Integration: every Table I problem family runs end-to-end through the
//! Fig. 2 pipeline on multiple solver routes and produces feasible,
//! near-optimal solutions.

use qdm::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn opts() -> PipelineOptions {
    PipelineOptions { repair: true, ..Default::default() }
}

#[test]
fn mqo_across_annealing_and_gate_routes() {
    let mut rng = StdRng::seed_from_u64(1);
    let inst = MqoInstance::generate(3, 3, 0.3, &mut rng);
    let (_, optimum) = inst.exhaustive_optimum();
    let problem = MqoProblem::new(inst);
    for solver in [
        Box::new(SaSolver::default()) as Box<dyn QuboSolver>,
        Box::new(SqaSolver::default()),
        Box::new(TabuSolver::default()),
        Box::new(QaoaSolver::default()),
        Box::new(GroverMinSolver),
    ] {
        let mut srng = StdRng::seed_from_u64(2);
        let report = run_pipeline(&problem, solver.as_ref(), &opts(), &mut srng);
        assert!(report.decoded.feasible, "{} infeasible", solver.name());
        assert!(
            report.decoded.objective >= optimum - 1e-9,
            "{} beat the exhaustive optimum",
            solver.name()
        );
        // Strong solvers should actually reach it on 9 variables.
        if matches!(solver.name(), "simulated-annealing" | "tabu" | "grover-minimum") {
            assert!(
                (report.decoded.objective - optimum).abs() < 1e-6,
                "{}: {} vs optimum {}",
                solver.name(),
                report.decoded.objective,
                optimum
            );
        }
    }
}

#[test]
fn join_ordering_qubo_tracks_dp_optimum() {
    for (seed, shape) in [(1u64, GraphShape::Chain), (2, GraphShape::Star), (3, GraphShape::Cycle)]
    {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = QueryGraph::generate(shape, 4, &mut rng);
        let dp = optimal_left_deep(&graph);
        let problem = JoinOrderProblem::left_deep(graph);
        let report = run_pipeline(&problem, &TabuSolver::default(), &opts(), &mut rng);
        assert!(report.decoded.feasible, "{shape:?}");
        assert!(
            report.decoded.objective <= 20.0 * dp.cost,
            "{shape:?}: QUBO plan {} too far from DP {}",
            report.decoded.objective,
            dp.cost
        );
    }
}

#[test]
fn schema_matching_reaches_exact_score_on_small_instances() {
    let mut rng = StdRng::seed_from_u64(9);
    let (inst, truth) = generate_benchmark(5, 1, &mut rng);
    let (_, exact_score) = inst.exact_matching();
    let problem = SchemaMatchingProblem::new(inst);
    let report = run_pipeline(&problem, &SaSolver::default(), &opts(), &mut rng);
    assert!(report.decoded.feasible);
    let matching = problem.matching(&report.bits).expect("one-to-one");
    let (precision, recall) = precision_recall(&matching, &truth);
    assert!(-report.decoded.objective >= 0.8 * exact_score);
    assert!(precision >= 0.6 && recall >= 0.6, "p={precision} r={recall}");
}

#[test]
fn txn_scheduling_beats_serial_under_every_strong_solver() {
    // Independent transactions: massive parallelism available.
    let txns: Vec<Transaction> = (0..4)
        .map(|id| Transaction { id, reads: vec![], writes: vec![id + 10], duration: 2 })
        .collect();
    let serial = serial_schedule(&txns).makespan(&txns);
    assert_eq!(serial, 8);
    let problem = TxnScheduleProblem::new(txns, 4);
    for solver in
        [Box::new(SaSolver::default()) as Box<dyn QuboSolver>, Box::new(TabuSolver::default())]
    {
        let mut srng = StdRng::seed_from_u64(5);
        let report = run_pipeline(&problem, solver.as_ref(), &opts(), &mut srng);
        assert!(report.decoded.feasible);
        assert!(
            report.decoded.objective <= 4.0,
            "{}: makespan {}",
            solver.name(),
            report.decoded.objective
        );
    }
}

#[test]
fn decomposition_and_presolve_preserve_feasibility_and_quality() {
    let mut rng = StdRng::seed_from_u64(6);
    let inst = MqoInstance::generate(4, 2, 0.2, &mut rng);
    let (_, optimum) = inst.exhaustive_optimum();
    let problem = MqoProblem::new(inst);
    for (presolve, decompose) in [(false, false), (true, false), (false, true), (true, true)] {
        let mut srng = StdRng::seed_from_u64(7);
        let report = run_pipeline(
            &problem,
            &ExactSolver,
            &PipelineOptions { presolve, decompose, repair: true, ..Default::default() },
            &mut srng,
        );
        assert!(report.decoded.feasible, "presolve={presolve} decompose={decompose}");
        assert!(
            (report.decoded.objective - optimum).abs() < 1e-6,
            "presolve={presolve} decompose={decompose}: {} vs {}",
            report.decoded.objective,
            optimum
        );
    }
}

#[test]
fn solver_registry_is_consistent_with_roadmap() {
    let names: Vec<String> = full_registry().iter().map(|s| s.name().to_string()).collect();
    for path in roadmap_paths() {
        assert!(names.iter().any(|n| n == path.solver_name));
    }
    assert_eq!(table_one().len(), 7);
}
