//! Integration tests for the handle-based asynchronous submission API:
//! backpressure on the bounded session queue, cancellation of queued jobs,
//! streaming completions vs. handle waits, priority lanes, and bit-identical
//! equivalence between `run_batch` and session submission.

use qdm::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, Condvar, Mutex};

fn mqo(seed: u64) -> Arc<MqoProblem> {
    let mut rng = StdRng::seed_from_u64(seed);
    Arc::new(MqoProblem::new(MqoInstance::generate(3, 2, 0.3, &mut rng)))
}

fn joinorder(seed: u64) -> Arc<JoinOrderProblem> {
    let mut rng = StdRng::seed_from_u64(seed);
    Arc::new(JoinOrderProblem::left_deep(QueryGraph::generate_random(4, 0.3, &mut rng)))
}

fn repair() -> PipelineOptions {
    PipelineOptions { repair: true, ..Default::default() }
}

/// A signalling gate: `block()` (called from the worker) reports that the
/// job started and parks until the test calls `open()`.
#[derive(Default)]
struct Gate {
    started: (Mutex<bool>, Condvar),
    release: (Mutex<bool>, Condvar),
}

impl Gate {
    fn block(&self) {
        {
            let (lock, cond) = &self.started;
            *lock.lock().unwrap() = true;
            cond.notify_all();
        }
        let (lock, cond) = &self.release;
        let mut open = lock.lock().unwrap();
        while !*open {
            open = cond.wait(open).unwrap();
        }
    }

    fn wait_started(&self) {
        let (lock, cond) = &self.started;
        let mut started = lock.lock().unwrap();
        while !*started {
            started = cond.wait(started).unwrap();
        }
    }

    fn open(&self) {
        let (lock, cond) = &self.release;
        *lock.lock().unwrap() = true;
        cond.notify_all();
    }
}

/// A job that parks its worker on the gate inside `to_qubo`, simulating a
/// slow solver deterministically.
struct Blocker {
    gate: Arc<Gate>,
}

impl DmProblem for Blocker {
    fn name(&self) -> String {
        "blocker".into()
    }
    fn n_vars(&self) -> usize {
        2
    }
    fn to_qubo(&self) -> QuboModel {
        self.gate.block();
        let mut q = QuboModel::new(2);
        q.add_linear(0, 1.0).add_linear(1, 2.0);
        q
    }
    fn decode(&self, bits: &[bool]) -> Decoded {
        Decoded { feasible: true, objective: 0.0, summary: format!("{bits:?}") }
    }
}

fn quick(seed: u64) -> JobSpec {
    JobSpec::new(mqo(seed), seed).with_options(repair())
}

#[test]
fn handle_results_are_bit_identical_to_run_batch() {
    // Two fresh services (so no shared cache): handle-based submission must
    // reproduce run_batch bit for bit under identical (problem, options,
    // seed, backend). Backends are pinned so routing cannot differ.
    let specs = || -> Vec<JobSpec> {
        let mut specs = Vec::new();
        for (i, backend) in
            ["simulated-annealing", "tabu", "simulated-quantum-annealing"].iter().enumerate()
        {
            specs.push(
                JobSpec::new(mqo(10 + i as u64), 70 + i as u64)
                    .with_options(repair())
                    .on_backend(backend),
            );
            specs.push(
                JobSpec::new(joinorder(20 + i as u64), 80 + i as u64)
                    .with_options(repair())
                    .on_backend(backend),
            );
        }
        specs
    };

    let batch_service =
        SolverService::new(ServiceConfig { workers: 3, cache_capacity: 64, ..Default::default() });
    let batch_outcomes = batch_service.run_batch(specs());

    let session_service =
        SolverService::new(ServiceConfig { workers: 3, cache_capacity: 64, ..Default::default() });
    let session =
        session_service.session(SessionConfig { queue_capacity: 16, ..Default::default() });
    let handles: Vec<JobHandle> = specs().into_iter().map(|s| session.submit(s)).collect();

    for (handle, batch_outcome) in handles.iter().zip(&batch_outcomes) {
        let via_handle = handle.wait().expect("solvable");
        let via_batch = batch_outcome.as_ref().expect("solvable");
        assert_eq!(via_handle.report.bits, via_batch.report.bits, "bits must be identical");
        assert_eq!(via_handle.report.energy, via_batch.report.energy);
        assert_eq!(via_handle.backend, via_batch.backend);
        assert_eq!(via_handle.report.decoded.summary, via_batch.report.decoded.summary);
    }
}

#[test]
fn bounded_queue_rejects_and_blocks_under_slow_solver() {
    let service =
        SolverService::new(ServiceConfig { workers: 1, cache_capacity: 16, ..Default::default() });
    let session = service.session(SessionConfig { queue_capacity: 2, ..Default::default() });
    let gate = Arc::new(Gate::default());

    // The single worker picks the blocker up and parks; the queue is empty.
    let blocker = session.submit(JobSpec::new(Arc::new(Blocker { gate: Arc::clone(&gate) }), 1));
    gate.wait_started();

    // Fill the bounded queue, then overflow it.
    let queued_a = session.submit(quick(100));
    let queued_b = session.submit(quick(101));
    let rejected = session.try_submit(quick(102));
    let spec = match rejected {
        Err(SubmitError::QueueFull(spec)) => spec,
        Err(other) => panic!("expected QueueFull, got {other:?}"),
        Ok(_) => panic!("queue of capacity 2 with 2 queued jobs must reject"),
    };
    assert_eq!(service.report().backpressure_rejections, 1);

    std::thread::scope(|scope| {
        let waiter = scope.spawn(|| session.submit(spec).wait());
        // The blocking submit must actually sleep on the condvar before we
        // let the worker drain the queue.
        while service.report().backpressure_waits == 0 {
            std::thread::yield_now();
        }
        gate.open();
        assert!(waiter.join().expect("no panic").is_ok());
    });

    assert!(blocker.wait().is_ok());
    assert!(queued_a.wait().is_ok());
    assert!(queued_b.wait().is_ok());
    session.drain();
    let report = service.report();
    assert_eq!(report.jobs_submitted, 4);
    assert_eq!(report.jobs_completed, 4);
    assert_eq!(report.backpressure_waits, 1);
    assert_eq!(report.queue_depth, 0);
    assert!(report.queue_depth_peak >= 2);
}

#[test]
fn cancelling_a_queued_job_removes_it_before_any_worker() {
    let service =
        SolverService::new(ServiceConfig { workers: 1, cache_capacity: 16, ..Default::default() });
    let session = service.session(SessionConfig { queue_capacity: 8, ..Default::default() });
    let gate = Arc::new(Gate::default());

    let blocker = session.submit(JobSpec::new(Arc::new(Blocker { gate: Arc::clone(&gate) }), 1));
    gate.wait_started();

    let victim = session.submit(quick(200));
    assert!(victim.try_result().is_none(), "still queued behind the blocker");
    assert_eq!(victim.cancel(), CancelStatus::Cancelled);
    assert!(matches!(victim.wait(), Err(JobError::Cancelled)));
    assert_eq!(victim.cancel(), CancelStatus::Finished, "second cancel is a no-op");

    gate.open();
    session.drain();
    assert!(blocker.wait().is_ok());

    let report = service.report();
    assert_eq!(report.jobs_cancelled, 1);
    assert_eq!(report.jobs_submitted, 2);
    assert_eq!(report.jobs_completed, 1, "the cancelled job never ran");

    // The completion stream saw both jobs: the cancellation immediately,
    // the blocker when it finished.
    let completions: Vec<Completion> = session.completions().collect();
    assert_eq!(completions.len(), 2);
    assert_eq!(completions[0].id, victim.id());
    assert!(matches!(completions[0].outcome, Err(JobError::Cancelled)));
    assert_eq!(completions[1].id, blocker.id());
    assert!(completions[1].outcome.is_ok());
}

#[test]
fn completions_stream_in_finish_order_and_match_handle_waits() {
    let service =
        SolverService::new(ServiceConfig { workers: 4, cache_capacity: 64, ..Default::default() });
    let session = service.session(SessionConfig { queue_capacity: 16, ..Default::default() });
    let handles: Vec<JobHandle> = (0..8).map(|i| session.submit(quick(300 + i))).collect();

    // Stream everything currently in flight; the iterator ends on its own.
    let completions: Vec<Completion> = session.completions().collect();
    assert_eq!(completions.len(), handles.len());

    // Every submitted job appears exactly once, and the streamed outcome is
    // exactly what the handle reports.
    for handle in &handles {
        let streamed: Vec<&Completion> =
            completions.iter().filter(|c| c.id == handle.id()).collect();
        assert_eq!(streamed.len(), 1, "job {} must stream exactly once", handle.id());
        let via_stream = streamed[0].outcome.as_ref().expect("solvable");
        let via_wait = handle.wait().expect("solvable");
        assert_eq!(via_stream.report.bits, via_wait.report.bits);
        assert_eq!(via_stream.report.energy, via_wait.report.energy);
        assert_eq!(via_stream.backend, via_wait.backend);
        assert_eq!(via_stream.job_id, via_wait.job_id);
    }
}

#[test]
fn high_priority_jobs_jump_the_queue() {
    let service =
        SolverService::new(ServiceConfig { workers: 1, cache_capacity: 16, ..Default::default() });
    let session = service.session(SessionConfig { queue_capacity: 8, ..Default::default() });
    let gate = Arc::new(Gate::default());

    let blocker = session.submit(JobSpec::new(Arc::new(Blocker { gate: Arc::clone(&gate) }), 1));
    gate.wait_started();

    // Queued while the only worker is parked: low first, high second.
    let low = session.submit(quick(400).with_priority(JobPriority::Low));
    let high = session.submit(quick(401).with_priority(JobPriority::High));
    gate.open();

    let order: Vec<u64> = session.completions().map(|c| c.id).collect();
    assert_eq!(
        order,
        vec![blocker.id(), high.id(), low.id()],
        "the high-priority job must overtake the earlier low-priority one"
    );
}

#[test]
fn repeated_cancel_of_a_running_job_counts_once() {
    let service =
        SolverService::new(ServiceConfig { workers: 1, cache_capacity: 16, ..Default::default() });
    let session = service.session(SessionConfig { queue_capacity: 8, ..Default::default() });
    let gate = Arc::new(Gate::default());

    let blocker = session.submit(JobSpec::new(Arc::new(Blocker { gate: Arc::clone(&gate) }), 1));
    gate.wait_started();

    // The worker already picked the job up: cancel cannot dequeue it, but
    // marks it so late waiters see `Cancelled`. Repeats change nothing.
    assert_eq!(blocker.cancel(), CancelStatus::Running);
    assert_eq!(blocker.cancel(), CancelStatus::Running);
    assert_eq!(service.report().jobs_cancelled, 1, "one job, one effective cancellation");

    gate.open();
    assert!(matches!(blocker.wait(), Err(JobError::Cancelled)));
    assert_eq!(blocker.cancel(), CancelStatus::Finished);
    let report = service.report();
    assert_eq!(report.jobs_cancelled, 1);
    // The solve itself ran to completion (and was cached), but the job's
    // delivered outcome is `Cancelled`: it must count in exactly one ledger
    // bucket, not both (the old double-count listed it completed too).
    assert_eq!(report.jobs_completed, 0);
    assert_eq!(
        report.jobs_submitted,
        report.jobs_completed + report.jobs_failed + report.jobs_cancelled
    );
}

#[test]
fn job_cancelled_mid_run_counts_cancelled_not_completed_yet_still_caches() {
    let service =
        SolverService::new(ServiceConfig { workers: 1, cache_capacity: 16, ..Default::default() });
    let session = service.session(SessionConfig { queue_capacity: 8, ..Default::default() });
    let gate = Arc::new(Gate::default());

    let blocker = session.submit(JobSpec::new(Arc::new(Blocker { gate: Arc::clone(&gate) }), 1));
    gate.wait_started();
    assert_eq!(blocker.cancel(), CancelStatus::Running);
    gate.open();
    assert!(matches!(blocker.wait(), Err(JobError::Cancelled)));

    let report = service.report();
    assert_eq!(report.jobs_submitted, 1);
    assert_eq!(report.jobs_cancelled, 1);
    assert_eq!(report.jobs_completed, 0, "a cancelled job must not also count completed");
    assert_eq!(report.cache_misses, 1, "the solve itself really happened");

    // The finished solve populated the cache: resubmitting the identical
    // spec (the gate is open now) is served as a hit and counts completed.
    let gate2 = Arc::clone(&gate);
    let again = session.submit(JobSpec::new(Arc::new(Blocker { gate: gate2 }), 1));
    let result = again.wait().expect("uncancelled resubmission succeeds");
    assert!(result.from_cache, "the cancelled run's solve must have been cached");
    let report = service.report();
    assert_eq!(report.jobs_completed, 1);
    assert_eq!(report.cache_hits, 1);
    assert_eq!(report.jobs_cancelled, 1, "the earlier cancellation stays counted once");
}

#[test]
fn job_cancelled_mid_run_that_fails_routing_counts_cancelled_not_failed() {
    let service =
        SolverService::new(ServiceConfig { workers: 1, cache_capacity: 16, ..Default::default() });
    let session = service.session(SessionConfig { queue_capacity: 8, ..Default::default() });
    let gate = Arc::new(Gate::default());

    // The job blocks in `to_qubo`, is cancelled while running, and then
    // fails routing (unknown backend). `on_failed` fired, the cancel fired
    // — the conversion must give back the failed count so the job lands in
    // exactly one ledger bucket.
    let doomed = session.submit(
        JobSpec::new(Arc::new(Blocker { gate: Arc::clone(&gate) }), 1).on_backend("warp-drive"),
    );
    gate.wait_started();
    assert_eq!(doomed.cancel(), CancelStatus::Running);
    gate.open();
    assert!(matches!(doomed.wait(), Err(JobError::Cancelled)));

    let report = service.report();
    assert_eq!(report.jobs_submitted, 1);
    assert_eq!(report.jobs_cancelled, 1);
    assert_eq!(report.jobs_failed, 0, "the failure was superseded by the cancellation");
    assert_eq!(report.jobs_completed, 0);
    assert_eq!(
        report.jobs_submitted,
        report.jobs_completed + report.jobs_failed + report.jobs_cancelled
    );
}

#[test]
fn completions_iterator_is_fused_across_later_submissions() {
    let service =
        SolverService::new(ServiceConfig { workers: 2, cache_capacity: 64, ..Default::default() });
    let session = service.session(SessionConfig { queue_capacity: 8, ..Default::default() });
    let first = session.submit(quick(700));
    let mut stream = session.completions();
    assert_eq!(stream.next().map(|c| c.id), Some(first.id()));
    assert!(stream.next().is_none(), "all submitted work consumed: the stream ends");

    // New work after exhaustion must NOT revive a finished iterator — the
    // end state is latched, per the Iterator fusion convention.
    let second = session.submit(quick(701));
    assert!(second.wait().is_ok());
    assert!(stream.next().is_none(), "a fused iterator never yields again");
    assert!(stream.next().is_none());

    // A *fresh* iterator sees the later job.
    let ids: Vec<u64> = session.completions().map(|c| c.id).collect();
    assert_eq!(ids, vec![second.id()]);
}

#[test]
fn completion_buffer_bounds_handle_only_sessions() {
    let service =
        SolverService::new(ServiceConfig { workers: 2, cache_capacity: 64, ..Default::default() });
    let session = service.session(SessionConfig { queue_capacity: 8, completion_buffer: 2 });
    let handles: Vec<JobHandle> = (0..5).map(|i| session.submit(quick(600 + i))).collect();
    session.drain();
    // Handles are unaffected by the bounded stream buffer.
    for handle in &handles {
        assert!(handle.try_result().expect("resolved").is_ok());
    }
    assert_eq!(session.completions_dropped(), 3);
    let retained: Vec<Completion> = session.completions().collect();
    assert_eq!(retained.len(), 2, "only the newest completions are retained");
}

#[test]
fn drain_and_shutdown_resolve_all_in_flight_handles() {
    let service =
        SolverService::new(ServiceConfig { workers: 2, cache_capacity: 64, ..Default::default() });
    let session = service.session(SessionConfig { queue_capacity: 16, ..Default::default() });
    let handles: Vec<JobHandle> = (0..6).map(|i| session.submit(quick(500 + i))).collect();
    assert!(session.in_flight() <= 6);
    session.drain();
    assert_eq!(session.in_flight(), 0);
    for handle in &handles {
        assert!(handle.is_finished(), "drain must resolve every handle");
        assert!(handle.try_result().expect("resolved").is_ok());
    }
    // Nothing was consumed from the stream: shutdown hands the full
    // finish-order backlog back.
    let leftovers = session.shutdown();
    assert_eq!(leftovers.len(), 6);
    assert!(leftovers.iter().all(|c| c.outcome.is_ok()));
}

/// A pick-one problem whose variable order is the label order of `costs`;
/// two instances with permuted costs encode permuted-but-identical QUBOs
/// under the same problem name.
struct Menu {
    costs: Vec<f64>,
}

impl DmProblem for Menu {
    fn name(&self) -> String {
        "menu".into()
    }
    fn n_vars(&self) -> usize {
        self.costs.len()
    }
    fn to_qubo(&self) -> QuboModel {
        let mut q = QuboModel::new(self.costs.len());
        for (i, &c) in self.costs.iter().enumerate() {
            q.add_linear(i, c);
        }
        let vars: Vec<usize> = (0..self.costs.len()).collect();
        penalty::exactly_one(&mut q, &vars, 50.0);
        q
    }
    fn decode(&self, bits: &[bool]) -> Decoded {
        let chosen: Vec<usize> =
            bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
        Decoded {
            feasible: chosen.len() == 1,
            objective: chosen.iter().map(|&i| self.costs[i]).sum(),
            summary: format!("chose {chosen:?}"),
        }
    }
}

#[test]
fn permuted_encoding_is_served_from_cache_with_translated_bits() {
    let service =
        SolverService::new(ServiceConfig { workers: 1, cache_capacity: 16, ..Default::default() });
    let costs = vec![5.0, 1.0, 3.0, 4.0];
    let reversed: Vec<f64> = costs.iter().rev().copied().collect();
    let first = service
        .run(JobSpec::new(Arc::new(Menu { costs }), 9).on_backend("tabu"))
        .expect("solvable");
    let second = service
        .run(JobSpec::new(Arc::new(Menu { costs: reversed }), 9).on_backend("tabu"))
        .expect("solvable");

    assert!(!first.from_cache);
    assert!(second.from_cache, "permuted-but-identical encoding must hit the cache");
    // The cached canonical assignment, translated into the reversed
    // labeling, is exactly the first result's bits reversed.
    let mut expected = first.report.bits.clone();
    expected.reverse();
    assert_eq!(second.report.bits, expected);
    assert!(second.report.decoded.feasible);
    assert_eq!(second.report.decoded.objective, first.report.decoded.objective);
    assert!((second.report.energy - first.report.energy).abs() < 1e-9);
    assert_eq!(service.report().cache_hits, 1);
}
