//! Cache affinity across the cluster, proven with the process-wide
//! compilation counter: concurrent *permuted* duplicates of one hot QUBO
//! all route to the shard that holds its cached/in-flight result and
//! compile **once cluster-wide** — routing itself is compile-free (the
//! canonical fingerprint comes from the uncompiled model), so N shards see
//! one compilation for N duplicates instead of N.
//!
//! Everything runs inside a single `#[test]` because the counter is global
//! to the process: this file is its own test binary, and one test body is
//! the only way to keep unrelated compilations out of the measured deltas
//! (see `tests/compile_once.rs`).

use qdm::prelude::*;
use qdm::qubo::compiled::compilation_count;
use qdm::qubo::model::QuboModel;
use qdm::qubo::penalty;
use std::sync::Arc;

/// Pick-one-of-n whose per-option costs can be rotated: every rotation is
/// a relabeling of the same instance (identical canonical fingerprint,
/// different variable order), published under one problem name so all
/// rotations share a work identity.
struct RotatedPick {
    costs: Vec<f64>,
}

impl DmProblem for RotatedPick {
    fn name(&self) -> String {
        "rotated-pick".into()
    }
    fn n_vars(&self) -> usize {
        self.costs.len()
    }
    fn to_qubo(&self) -> QuboModel {
        let mut q = QuboModel::new(self.costs.len());
        for (i, &c) in self.costs.iter().enumerate() {
            q.add_linear(i, c);
        }
        let vars: Vec<usize> = (0..self.costs.len()).collect();
        let weight = penalty::penalty_weight(&q);
        penalty::exactly_one(&mut q, &vars, weight);
        q
    }
    fn decode(&self, bits: &[bool]) -> Decoded {
        let chosen: Vec<usize> =
            bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
        Decoded {
            feasible: chosen.len() == 1,
            objective: chosen.iter().map(|&i| self.costs[i]).sum(),
            summary: format!("chose {chosen:?}"),
        }
    }
}

/// The base instance rotated by `k`: distinct costs, so the canonical
/// signature refinement separates every variable and all rotations
/// canonicalize identically.
fn rotated(k: usize) -> SharedProblem {
    let base = [0.5, 3.5, 6.5, 2.5, 5.5, 1.5];
    let costs = (0..base.len()).map(|i| base[(i + k) % base.len()]).collect();
    Arc::new(RotatedPick { costs })
}

#[test]
fn hot_fingerprint_compiles_once_cluster_wide() {
    const DUPLICATES: usize = 8;
    let cluster = ClusterService::new(ClusterConfig {
        shards: 4,
        service: ServiceConfig { workers: 1, cache_capacity: 64, ..Default::default() },
        ..Default::default()
    });

    // Every rotation canonicalizes to the same fingerprint, so the ring
    // sends all of them to one home shard.
    let (fp, _) = rotated(0).to_qubo().canonical_form();
    let home = cluster.shard_for_fingerprint(fp);
    for k in 1..DUPLICATES {
        let (fp_k, _) = rotated(k).to_qubo().canonical_form();
        assert_eq!(fp_k, fp, "rotation {k} must canonicalize like the base instance");
    }

    let before = compilation_count();
    let session = cluster.session("t", SessionConfig { queue_capacity: 16, ..Default::default() });
    // Same seed + same pinned backend + same name → one work identity.
    // Concurrent submitters land the duplicates together: whichever
    // arrives first leads the single solve, the rest coalesce in flight or
    // hit the cache on the home shard.
    let energies: Vec<f64> = std::thread::scope(|scope| {
        let session = &session;
        let workers: Vec<_> = (0..DUPLICATES)
            .map(|k| {
                scope.spawn(move || {
                    let spec = JobSpec::new(rotated(k), 42).on_backend("simulated-annealing");
                    let result = session.submit(spec).expect("admitted").wait().expect("solvable");
                    assert!(result.report.decoded.feasible);
                    result.report.energy
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("no panic")).collect()
    });
    let compiles = compilation_count() - before;
    assert_eq!(
        compiles, 1,
        "{DUPLICATES} concurrent permuted duplicates across 4 shards must compile exactly once"
    );
    for energy in &energies {
        assert_eq!(*energy, energies[0], "every duplicate must be served the same solution");
    }

    // Affinity in the ledger: only the home shard saw submissions, and the
    // duplicates were served without extra solves (coalesced or cached).
    session.drain();
    let per_shard = cluster.shard_reports();
    for (i, report) in per_shard.iter().enumerate() {
        let expected = if i == home { DUPLICATES as u64 } else { 0 };
        assert_eq!(report.jobs_submitted, expected, "shard {i} submissions");
    }
    let merged = cluster.report();
    assert_eq!(merged.jobs_completed, DUPLICATES as u64);
    assert_eq!(
        merged.jobs_coalesced + merged.cache_hits,
        DUPLICATES as u64 - 1,
        "all but the leader must be served, not solved: {merged}"
    );
}
