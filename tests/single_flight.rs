//! The single-flight (thundering-herd) invariant, asserted via the
//! process-wide compilation counter: two concurrent submissions of the same
//! work identity must produce **one** compilation, **one** cache miss, and
//! **one** solve — the duplicate parks on the leader's in-flight entry and
//! is served its published result bit-identically. Also covered: cancelling
//! one of the coalesced pair never disturbs the other, and
//! permuted-but-identical concurrent encodings coalesce at the canonical
//! level with the follower's bits translated through its own permutation.
//!
//! Everything runs inside a single `#[test]` because the compilation
//! counter is global to the process: this file is its own test binary, and
//! one test body keeps unrelated compilations out of the measured deltas.
//!
//! Determinism of the concurrency: each scenario's problems share a
//! rendezvous in `to_qubo` (both jobs must be picked up before either
//! proceeds) and a release gate in `decode` (the leader cannot finish its
//! solve before the test observed `jobs_coalesced == 1`), so the
//! leader/follower overlap is forced, not timing-dependent. Which of the
//! two handles leads is the one scheduling-dependent bit, and the
//! assertions hold under either assignment.

use qdm::prelude::*;
use qdm::qubo::compiled::compilation_count;
use qdm::qubo::model::QuboModel;
use qdm::qubo::penalty;
use std::sync::{Arc, Condvar, Mutex};

/// Blocks the first `expected` callers until all have arrived; anyone
/// arriving later (e.g. a post-scenario resubmission) passes straight
/// through — unlike `std::sync::Barrier`, which would re-arm and park them.
struct Rendezvous {
    expected: usize,
    arrived: Mutex<usize>,
    all_here: Condvar,
}

impl Rendezvous {
    fn new(expected: usize) -> Self {
        Self { expected, arrived: Mutex::new(0), all_here: Condvar::new() }
    }

    fn wait(&self) {
        let mut arrived = self.arrived.lock().unwrap();
        *arrived += 1;
        if *arrived >= self.expected {
            self.all_here.notify_all();
        }
        while *arrived < self.expected {
            arrived = self.all_here.wait(arrived).unwrap();
        }
    }
}

/// A latch the test opens once it has seen the follower park: `decode`
/// blocks on it, so the leader cannot publish before the duplicate
/// coalesced. Stays open forever after `open()`.
#[derive(Default)]
struct Release {
    open: Mutex<bool>,
    opened: Condvar,
}

impl Release {
    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.opened.notify_all();
    }

    fn wait_open(&self) {
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.opened.wait(open).unwrap();
        }
    }
}

/// A pick-one problem instrumented for forced-overlap coalescing tests.
struct CoalesceProbe {
    costs: Vec<f64>,
    rendezvous: Arc<Rendezvous>,
    release: Arc<Release>,
}

impl DmProblem for CoalesceProbe {
    fn name(&self) -> String {
        "coalesce-probe".into()
    }
    fn n_vars(&self) -> usize {
        self.costs.len()
    }
    fn to_qubo(&self) -> QuboModel {
        self.rendezvous.wait();
        let mut q = QuboModel::new(self.costs.len());
        for (i, &c) in self.costs.iter().enumerate() {
            q.add_linear(i, c);
        }
        let vars: Vec<usize> = (0..self.costs.len()).collect();
        penalty::exactly_one(&mut q, &vars, 50.0);
        q
    }
    fn decode(&self, bits: &[bool]) -> Decoded {
        self.release.wait_open();
        let chosen: Vec<usize> =
            bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
        Decoded {
            feasible: chosen.len() == 1,
            objective: chosen.iter().map(|&i| self.costs[i]).sum(),
            summary: format!("chose {chosen:?}"),
        }
    }
}

fn wait_for_coalesce(service: &SolverService) {
    while service.report().jobs_coalesced == 0 {
        std::thread::yield_now();
    }
}

#[test]
fn concurrent_duplicates_single_flight_with_one_compile_and_cancel_isolation() {
    // ----- Scenario 1: exact duplicates — one compile, one miss. ---------
    let service =
        SolverService::new(ServiceConfig { workers: 2, cache_capacity: 64, ..Default::default() });
    let session = service.session(SessionConfig { queue_capacity: 8, ..Default::default() });
    let rendezvous = Arc::new(Rendezvous::new(2));
    let release = Arc::new(Release::default());
    let probe: SharedProblem = Arc::new(CoalesceProbe {
        costs: vec![5.0, 1.0, 3.0, 4.0],
        rendezvous: Arc::clone(&rendezvous),
        release: Arc::clone(&release),
    });
    let spec = JobSpec::new(Arc::clone(&probe), 7).on_backend("simulated-annealing");

    let before = compilation_count();
    let first = session.submit(spec.clone());
    let second = session.submit(spec.clone());
    // Both workers are inside the job (the rendezvous saw two arrivals);
    // exactly one leads, and the gate keeps it from finishing before the
    // other has parked on its flight.
    wait_for_coalesce(&service);
    release.open();

    let a = first.wait().expect("leader or follower, the result is the same");
    let b = second.wait().expect("solvable");
    assert_eq!(
        compilation_count() - before,
        1,
        "two concurrent identical specs must compile exactly once"
    );
    assert_eq!(a.report.bits, b.report.bits, "coalesced results are bit-identical");
    assert_eq!(a.report.energy.to_bits(), b.report.energy.to_bits());
    assert_eq!(a.backend, b.backend);
    assert!(a.report.decoded.feasible);
    assert_ne!(a.coalesced, b.coalesced, "exactly one of the pair coalesced onto the other");
    assert!(!a.from_cache && !b.from_cache, "neither result came from the cache");
    let report = service.report();
    assert_eq!(report.cache_misses, 1, "one miss: the duplicate never consulted the cache");
    assert_eq!(report.cache_hits, 0);
    assert_eq!(report.jobs_coalesced, 1);
    assert_eq!(report.jobs_completed, 2, "both handles resolved successfully");

    // The flight's result was also cached: a later identical submission is
    // a plain cache hit (and compiles once, for fingerprinting only).
    let before = compilation_count();
    let again = session.submit(spec.clone()).wait().expect("cached");
    assert!(again.from_cache && !again.coalesced);
    assert_eq!(again.report.bits, a.report.bits);
    assert_eq!(compilation_count() - before, 1, "a cache hit compiles only for fingerprinting");

    // ----- Scenario 2: cancelling one of the pair never disturbs the -----
    // other (in particular, a cancelled follower never cancels its leader).
    let service =
        SolverService::new(ServiceConfig { workers: 2, cache_capacity: 64, ..Default::default() });
    let session = service.session(SessionConfig { queue_capacity: 8, ..Default::default() });
    let rendezvous = Arc::new(Rendezvous::new(2));
    let release = Arc::new(Release::default());
    let probe: SharedProblem = Arc::new(CoalesceProbe {
        costs: vec![5.0, 1.0, 3.0, 4.0],
        rendezvous: Arc::clone(&rendezvous),
        release: Arc::clone(&release),
    });
    let spec = JobSpec::new(Arc::clone(&probe), 8).on_backend("simulated-annealing");
    let kept = session.submit(spec.clone());
    let cancelled = session.submit(spec.clone());
    wait_for_coalesce(&service);
    assert_eq!(cancelled.cancel(), CancelStatus::Running, "both jobs are already running");
    release.open();

    assert!(matches!(cancelled.wait(), Err(JobError::Cancelled)));
    let kept_result = kept.wait().expect("the uncancelled half of the pair must succeed");
    assert!(kept_result.report.decoded.feasible);
    let report = service.report();
    assert_eq!(report.jobs_cancelled, 1);
    assert_eq!(report.jobs_completed, 1, "the cancelled job counts cancelled, not completed");
    assert_eq!(report.cache_misses, 1, "the single shared solve still happened exactly once");
    assert_eq!(report.jobs_coalesced, 1);

    // ----- Scenario 3: permuted-but-identical concurrent encodings -------
    // coalesce at the canonical level; the follower's bits are translated
    // through its *own* permutation (the serve_cached machinery).
    let service =
        SolverService::new(ServiceConfig { workers: 2, cache_capacity: 64, ..Default::default() });
    let session = service.session(SessionConfig { queue_capacity: 8, ..Default::default() });
    let rendezvous = Arc::new(Rendezvous::new(2));
    let release = Arc::new(Release::default());
    let costs = vec![5.0, 1.0, 3.0, 4.0];
    let reversed: Vec<f64> = costs.iter().rev().copied().collect();
    let forward: SharedProblem = Arc::new(CoalesceProbe {
        costs,
        rendezvous: Arc::clone(&rendezvous),
        release: Arc::clone(&release),
    });
    let backward: SharedProblem = Arc::new(CoalesceProbe {
        costs: reversed,
        rendezvous: Arc::clone(&rendezvous),
        release: Arc::clone(&release),
    });

    let before = compilation_count();
    let fwd = session.submit(JobSpec::new(forward, 9).on_backend("tabu"));
    let bwd = session.submit(JobSpec::new(backward, 9).on_backend("tabu"));
    wait_for_coalesce(&service);
    release.open();

    let f = fwd.wait().expect("solvable");
    let b = bwd.wait().expect("solvable");
    // Distinct labelings must both compile (the canonical fingerprint IS
    // the compile product) — but still only one of them may solve.
    assert_eq!(compilation_count() - before, 2, "permuted duplicates compile once each");
    let mut mirrored = f.report.bits.clone();
    mirrored.reverse();
    assert_eq!(
        b.report.bits, mirrored,
        "the follower's assignment is the leader's, translated through its own permutation"
    );
    assert!((f.report.energy - b.report.energy).abs() < 1e-9);
    assert!(f.report.decoded.feasible && b.report.decoded.feasible);
    assert_eq!(f.report.decoded.objective, b.report.decoded.objective);
    assert_ne!(f.coalesced, b.coalesced, "exactly one coalesced onto the other's flight");
    let report = service.report();
    assert_eq!(report.cache_misses, 1, "one solve served both labelings");
    assert_eq!(report.jobs_coalesced, 1);
    assert_eq!(report.jobs_completed, 2);
}
