//! Integration: plan choice changes cost, never the answer — including
//! plans chosen by the quantum routes.

use qdm::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn classical_and_quantum_plans_agree_on_results() {
    let mut rng = StdRng::seed_from_u64(11);
    for shape in [GraphShape::Chain, GraphShape::Star, GraphShape::Cycle] {
        let graph = QueryGraph::generate(shape, 4, &mut rng);
        let db = generate_database(&graph, 40, 4, &mut rng);

        // Reference: the exact bushy plan.
        let reference = execute(&optimal_bushy(&graph).tree, &db, &graph).row_multiset();

        // Classical alternatives.
        let candidates = vec![
            optimal_left_deep(&graph).tree,
            greedy_goo(&graph).tree,
            quickpick(&graph, 20, &mut rng).tree,
        ];
        for tree in candidates {
            assert_eq!(
                execute(&tree, &db, &graph).row_multiset(),
                reference,
                "{shape:?}: classical plan {tree} differs"
            );
        }

        // A plan selected by the QUBO route.
        let problem = JoinOrderProblem::left_deep(graph.clone());
        let report = run_pipeline(
            &problem,
            &SaSolver::default(),
            &PipelineOptions { repair: true, ..Default::default() },
            &mut rng,
        );
        let tree = problem.tree_from_bits(&report.bits).expect("feasible plan");
        assert_eq!(
            execute(&tree, &db, &graph).row_multiset(),
            reference,
            "{shape:?}: QUBO plan {tree} differs"
        );

        // And a bushy-template plan.
        let bushy_problem = JoinOrderProblem::bushy(graph.clone());
        let report = run_pipeline(
            &bushy_problem,
            &TabuSolver::default(),
            &PipelineOptions { repair: true, ..Default::default() },
            &mut rng,
        );
        let tree = bushy_problem.tree_from_bits(&report.bits).expect("feasible plan");
        assert_eq!(
            execute(&tree, &db, &graph).row_multiset(),
            reference,
            "{shape:?}: bushy QUBO plan {tree} differs"
        );
    }
}

#[test]
fn executor_respects_estimated_result_sanity() {
    // The cost model is an estimate, but executed row counts must be
    // finite, deterministic for a fixed seed, and plan-independent.
    let mut rng = StdRng::seed_from_u64(12);
    let graph = QueryGraph::generate(GraphShape::Chain, 5, &mut rng);
    let db = generate_database(&graph, 30, 3, &mut rng);
    let a = execute(&optimal_bushy(&graph).tree, &db, &graph).n_rows();
    let b = execute(&JoinTree::left_deep(&[4, 3, 2, 1, 0]), &db, &graph).n_rows();
    assert_eq!(a, b);
}

#[test]
fn catalog_round_trips_into_plans() {
    let catalog = star_schema_catalog(4);
    let graph = catalog.full_query_graph();
    let plan = optimal_left_deep(&graph);
    // A star query's best left-deep plan starts from a dimension joined to
    // the fact table, never a cross product.
    let cm = CostModel::new(&graph);
    assert!(cm.order_avoids_cross_products(&plan.tree.relations()));
}
