//! Cross-crate property-based tests (proptest): the structural invariants
//! DESIGN.md promises, checked on randomized inputs.

use proptest::prelude::*;
use qdm::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random QUBO over up to 8 variables.
fn arb_qubo() -> impl Strategy<Value = QuboModel> {
    (2usize..=8, proptest::collection::vec(-3.0f64..3.0, 0..20), any::<u64>()).prop_map(
        |(n, weights, seed)| {
            let mut q = QuboModel::new(n);
            let mut rng = StdRng::seed_from_u64(seed);
            use rand::RngExt;
            for w in weights {
                let i = rng.random_range(0..n);
                let j = rng.random_range(0..n);
                if i == j {
                    q.add_linear(i, w);
                } else {
                    q.add_quadratic(i, j, w);
                }
            }
            q
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn qubo_ising_roundtrip_preserves_energy(q in arb_qubo(), idx in any::<usize>()) {
        let n = q.n_vars();
        let bits = bits_from_index(idx & ((1 << n) - 1), n);
        let ising = IsingModel::from_qubo(&q);
        let spins = IsingModel::spins_from_bits(&bits);
        prop_assert!((q.energy(&bits) - ising.energy(&spins)).abs() < 1e-9);
        let back = ising.to_qubo();
        prop_assert!((q.energy(&bits) - back.energy(&bits)).abs() < 1e-9);
    }

    #[test]
    fn flip_delta_equals_energy_difference(q in arb_qubo(), idx in any::<usize>(), var in any::<usize>()) {
        let n = q.n_vars();
        let i = var % n;
        let bits = bits_from_index(idx & ((1 << n) - 1), n);
        let mut flipped = bits.clone();
        flipped[i] = !flipped[i];
        let want = q.energy(&flipped) - q.energy(&bits);
        prop_assert!((q.flip_delta(&bits, i) - want).abs() < 1e-9);
    }

    #[test]
    fn exact_solver_is_never_beaten_by_heuristics(q in arb_qubo(), seed in any::<u64>()) {
        let exact = solve_exact(&q);
        let mut rng = StdRng::seed_from_u64(seed);
        let sa = simulated_annealing(&q, &SaParams { sweeps: 30, restarts: 1, ..SaParams::scaled_to(&q) }, &mut rng);
        prop_assert!(sa.energy >= exact.energy - 1e-9);
        prop_assert!((q.energy(&sa.bits) - sa.energy).abs() < 1e-9);
    }

    #[test]
    fn connected_components_partition_energy(q in arb_qubo(), idx in any::<usize>()) {
        let n = q.n_vars();
        let bits = bits_from_index(idx & ((1 << n) - 1), n);
        let comps = q.connected_components();
        let total: f64 = comps
            .iter()
            .map(|(sub, map)| {
                let sub_bits: Vec<bool> = map.iter().map(|&g| bits[g]).collect();
                sub.energy(&sub_bits)
            })
            .sum();
        prop_assert!((total - q.energy(&bits)).abs() < 1e-9);
    }

    #[test]
    fn random_circuits_preserve_normalization(seed in any::<u64>(), n in 1usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::RngExt;
        let mut circuit = Circuit::new(n);
        for _ in 0..12 {
            let q = rng.random_range(0..n);
            match rng.random_range(0..5) {
                0 => { circuit.h(q); }
                1 => { circuit.rx(q, rng.random_range(-3.0..3.0)); }
                2 => { circuit.rz(q, rng.random_range(-3.0..3.0)); }
                3 if n > 1 => {
                    let t = (q + 1) % n;
                    circuit.cnot(q, t);
                }
                _ => { circuit.ry(q, rng.random_range(-3.0..3.0)); }
            }
        }
        let state = circuit.run();
        prop_assert!((state.norm_sqr() - 1.0).abs() < 1e-9);
        // The inverse circuit restores |0...0>.
        let mut s = state.clone();
        circuit.dagger().apply_to(&mut s);
        prop_assert!((s.probability(0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mqo_repair_always_yields_feasible(seed in any::<u64>(), idx in any::<usize>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = MqoInstance::generate(3, 2, 0.3, &mut rng);
        let problem = MqoProblem::new(inst);
        let n = problem.n_vars();
        let bits = bits_from_index(idx & ((1 << n) - 1), n);
        let repaired = problem.repair(&bits);
        prop_assert!(problem.decode(&repaired).feasible);
    }

    #[test]
    fn joinorder_repair_always_yields_permutation(seed in any::<u64>(), idx in any::<usize>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = QueryGraph::generate_random(4, 0.3, &mut rng);
        let problem = JoinOrderProblem::left_deep(graph);
        let n = problem.n_vars();
        let bits = bits_from_index(idx & ((1 << n.min(63)) - 1), n);
        let repaired = problem.repair(&bits);
        prop_assert!(problem.decode(&repaired).feasible);
    }

    #[test]
    fn teleportation_is_identity_on_random_states(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let payload = random_qubit(&mut rng);
        let out = teleport(&payload, &mut rng);
        prop_assert!((out.delivered.fidelity(&payload) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn werner_swap_never_exceeds_inputs(f1 in 0.25f64..1.0, f2 in 0.25f64..1.0) {
        let out = WernerPair::new(f1).swap(WernerPair::new(f2));
        prop_assert!(out.fidelity <= f1.max(f2) + 1e-12);
        prop_assert!(out.fidelity >= 0.25 - 1e-12);
    }

    #[test]
    fn purification_improves_iff_entangled(f in 0.55f64..0.99) {
        let p = WernerPair::new(f);
        let (succ, out) = p.purify(p);
        prop_assert!(succ > 0.0 && succ <= 1.0);
        prop_assert!(out.fidelity > f);
    }

    #[test]
    fn schedule_decode_is_sound(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let txns = random_workload(4, 3, 2, 0.5, &mut rng);
        let horizon: usize = txns.iter().map(|t| t.duration).sum();
        let problem = TxnScheduleProblem::new(txns.clone(), horizon);
        let repaired = problem.repair(&vec![false; problem.n_vars()]);
        let decoded = problem.decode(&repaired);
        prop_assert!(decoded.feasible);
        let schedule = problem.schedule(&repaired).expect("one-hot");
        prop_assert!(schedule.is_conflict_free(&txns));
        prop_assert!(schedule.makespan(&txns) <= horizon);
    }

    #[test]
    fn left_deep_dp_beats_random_orders(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = QueryGraph::generate_random(5, 0.3, &mut rng);
        let dp = optimal_left_deep(&graph);
        for _ in 0..5 {
            prop_assert!(qdm::problems::vqc_join::random_order_cost(&graph, &mut rng) >= dp.cost - 1e-6);
        }
    }

    #[test]
    fn pauli_expectations_are_bounded(seed in any::<u64>()) {
        use qdm::sim::pauli::{Pauli, PauliString};
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::RngExt;
        // Random 3-qubit state via a random circuit.
        let mut c = Circuit::new(3);
        for _ in 0..8 {
            let q = rng.random_range(0..3);
            c.ry(q, rng.random_range(-3.0..3.0));
            c.rz(q, rng.random_range(-3.0..3.0));
            c.cnot(q, (q + 1) % 3);
        }
        let state = c.run();
        for p in [Pauli::X, Pauli::Y, Pauli::Z] {
            let e = PauliString::new(1.0, &[(0, p), (2, Pauli::Z)]).expectation(&state);
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&e), "{p:?}: {e}");
        }
    }

    #[test]
    fn quantum_count_is_within_theoretical_error(seed in any::<u64>(), m in 0usize..=32) {
        use qdm::algos::counting::quantum_count_median;
        let mut rng = StdRng::seed_from_u64(seed);
        // 5-qubit universe, m marked of 32, 7-bit counting, median of 5.
        let res = quantum_count_median(5, 7, 5, |x| x < m, &mut rng);
        // Amplitude-estimation error bound: |M_hat - M| <= 2pi sqrt(M N)/2^t + pi^2 N / 4^t.
        let n = 32.0;
        let bound = 2.0 * std::f64::consts::PI * ((m as f64) * n).sqrt() / 128.0
            + std::f64::consts::PI.powi(2) * n / (128.0 * 128.0)
            + 1.0;
        prop_assert!(
            (res.estimate - m as f64).abs() <= bound,
            "estimate {} vs true {m} (bound {bound})",
            res.estimate
        );
    }

    #[test]
    fn gate_level_grover_matches_fast_grover(n in 2usize..5, t in any::<usize>()) {
        use qdm::algos::grover::{grover_circuit, grover_state, optimal_iterations, OracleCounter};
        let size = 1usize << n;
        let target = t % size;
        let k = optimal_iterations(size, 1);
        let circuit_state = grover_circuit(n, target, k).run();
        let mut oracle = OracleCounter::new(move |x| x == target);
        let fast = grover_state(n, &mut oracle, k);
        for i in 0..size {
            prop_assert!((circuit_state.probability(i) - fast.probability(i)).abs() < 1e-9);
        }
    }

    #[test]
    fn superposed_db_operations_keep_uniform_normalization(seed in any::<u64>()) {
        use qdm::qdb::manipulate::SuperposedDatabase;
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::RngExt;
        let mut db = SuperposedDatabase::new(4, &[0]);
        for _ in 0..10 {
            let id = rng.random_range(0..16);
            // Insert or delete at random; errors are fine, state must stay valid.
            if rng.random::<bool>() {
                let _ = db.insert(id);
            } else {
                let _ = db.delete(id);
            }
            prop_assert!((db.state().norm_sqr() - 1.0).abs() < 1e-9);
            let expected = 1.0 / db.len() as f64;
            for present in db.ids() {
                prop_assert!((db.probability_of(present) - expected).abs() < 1e-9);
            }
        }
    }
}
