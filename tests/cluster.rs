//! Integration tests for the sharded cluster front-end: shard-count
//! invariance of results, token-bucket shedding with a manual clock (no
//! sleeps), and cross-shard migration that never loses or duplicates a job.

use qdm::prelude::*;
use qdm::qubo::model::QuboModel;
use qdm::qubo::penalty;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

fn mqo(seed: u64) -> Arc<MqoProblem> {
    let mut rng = StdRng::seed_from_u64(seed);
    Arc::new(MqoProblem::new(MqoInstance::generate(3, 2, 0.3, &mut rng)))
}

fn joinorder(seed: u64) -> Arc<JoinOrderProblem> {
    let mut rng = StdRng::seed_from_u64(seed);
    Arc::new(JoinOrderProblem::left_deep(QueryGraph::generate_random(4, 0.3, &mut rng)))
}

fn repair() -> PipelineOptions {
    PipelineOptions { repair: true, ..Default::default() }
}

/// Backends pinned so the shard-local adaptive portfolio (whose telemetry
/// is not shared between shards) cannot influence routing: under pinned
/// backends and fixed seeds, results depend only on (problem, options,
/// seed).
fn pinned_specs() -> Vec<JobSpec> {
    let mut specs = Vec::new();
    for (i, backend) in
        ["simulated-annealing", "tabu", "simulated-quantum-annealing"].iter().enumerate()
    {
        specs.push(
            JobSpec::new(mqo(10 + i as u64), 70 + i as u64)
                .with_options(repair())
                .on_backend(backend),
        );
        specs.push(
            JobSpec::new(joinorder(20 + i as u64), 80 + i as u64)
                .with_options(repair())
                .on_backend(backend),
        );
    }
    specs
}

fn cluster_of(shards: usize) -> ClusterService {
    ClusterService::new(ClusterConfig {
        shards,
        service: ServiceConfig { workers: 1, cache_capacity: 64, ..Default::default() },
        ..Default::default()
    })
}

#[test]
fn four_shard_results_are_bit_identical_to_single_shard() {
    let run = |shards: usize| -> Vec<JobOutcome> {
        let cluster = cluster_of(shards);
        let session =
            cluster.session("t", SessionConfig { queue_capacity: 16, ..Default::default() });
        let handles: Vec<JobHandle> =
            pinned_specs().into_iter().map(|s| session.submit(s).expect("admitted")).collect();
        handles.iter().map(JobHandle::wait).collect()
    };
    let solo = run(1);
    let sharded = run(4);
    for (a, b) in solo.iter().zip(&sharded) {
        let a = a.as_ref().expect("solvable");
        let b = b.as_ref().expect("solvable");
        assert_eq!(a.report.bits, b.report.bits, "placement must not change the solution");
        assert_eq!(a.report.energy, b.report.energy);
        assert_eq!(a.backend, b.backend);
        assert_eq!(a.report.decoded.summary, b.report.decoded.summary);
    }
}

#[test]
fn shed_then_retry_resubmits_the_recovered_spec() {
    // Buckets are denominated in predicted seconds, so capacity and refill
    // are expressed in units of one job's cold cost-model quote — read off
    // the same public estimator the cluster charges with. The gate parks
    // the first admitted job in decode, so no solve observation
    // recalibrates the quote while the test is still submitting.
    let reg = SolverRegistry::standard();
    let sa = reg.find("simulated-annealing").expect("SA registered");
    let unit = analytic_seconds(&reg.get(sa).spec, CostShape::from_n_vars(4));
    let capacity = 2.5 * unit;
    let refill = 4.0 * unit;
    let gate = Arc::new(Gate::default());
    let clock = Arc::new(ManualClock::new(0));
    let cluster = ClusterService::new(ClusterConfig {
        shards: 2,
        service: ServiceConfig { workers: 1, cache_capacity: 16, ..Default::default() },
        admission: AdmissionConfig::default()
            .with_tenant("burst", TokenBucketConfig { capacity, refill_per_second: refill }),
        clock: Some(clock.clone()),
        ..Default::default()
    });
    let session = cluster.session("burst", SessionConfig::default());
    let spec = |seed| {
        let problem =
            Arc::new(GatedPick { costs: vec![2.5, 0.5, 1.5, 3.5], gate: Arc::clone(&gate) });
        JobSpec::new(problem, seed).on_backend("simulated-annealing")
    };

    let a = session.submit(spec(1)).expect("burst covers job 1");
    let b = session.submit(spec(2)).expect("burst covers job 2");
    let err = session.submit(spec(3)).unwrap_err();
    let hint = err.retry_after_hint().expect("overloaded carries a retry hint");
    // The hint covers *this job's* deficit, replicated here with the
    // bucket's own arithmetic: 0.5 units short at 4 units/s ≈ 125ms.
    let remaining = capacity - unit - unit;
    assert_eq!(hint, Duration::from_secs_f64((unit - remaining) / refill));

    // No sleeping: advance the injected clock past the hint (one extra
    // microsecond absorbs the hint's sub-microsecond truncation) and
    // resubmit the spec recovered from the error.
    clock.advance(hint.as_micros() as u64 + 1);
    let c = session.submit(err.into_spec()).expect("bucket refilled");

    gate.open();
    for handle in [&a, &b, &c] {
        assert!(handle.wait().is_ok());
    }
    session.drain();
    let report = cluster.report();
    assert_eq!(report.jobs_admitted, 3);
    assert_eq!(report.jobs_shed, 1);
    assert_eq!(report.jobs_completed, 3);
}

/// A pick-one problem whose `decode` parks the worker until the gate
/// opens. Unlike the `to_qubo` blocker in the session tests, the cluster
/// routes (and therefore encodes) on the *submitting* thread, so the park
/// must sit in a stage only workers run — decode — to build a backlog
/// deterministically.
struct GatedPick {
    costs: Vec<f64>,
    gate: Arc<Gate>,
}

#[derive(Default)]
struct Gate {
    release: (Mutex<bool>, Condvar),
}

impl Gate {
    fn block(&self) {
        let (lock, cond) = &self.release;
        let mut open = lock.lock().unwrap();
        while !*open {
            open = cond.wait(open).unwrap();
        }
    }

    fn open(&self) {
        let (lock, cond) = &self.release;
        *lock.lock().unwrap() = true;
        cond.notify_all();
    }
}

impl DmProblem for GatedPick {
    fn name(&self) -> String {
        "gated-pick".into()
    }
    fn n_vars(&self) -> usize {
        self.costs.len()
    }
    fn to_qubo(&self) -> QuboModel {
        let mut q = QuboModel::new(self.costs.len());
        for (i, &c) in self.costs.iter().enumerate() {
            q.add_linear(i, c);
        }
        let vars: Vec<usize> = (0..self.costs.len()).collect();
        let weight = penalty::penalty_weight(&q);
        penalty::exactly_one(&mut q, &vars, weight);
        q
    }
    fn decode(&self, bits: &[bool]) -> Decoded {
        self.gate.block();
        let chosen: Vec<usize> =
            bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
        Decoded {
            feasible: chosen.len() == 1,
            objective: chosen.iter().map(|&i| self.costs[i]).sum(),
            summary: format!("chose {chosen:?}"),
        }
    }
}

#[test]
fn migration_never_loses_or_duplicates_a_job() {
    const JOBS: u64 = 8;
    let cluster = ClusterService::new(ClusterConfig {
        shards: 2,
        service: ServiceConfig { workers: 1, cache_capacity: 16, ..Default::default() },
        migration_threshold: Some(0),
        ..Default::default()
    });
    let gate = Arc::new(Gate::default());
    let session = cluster.session("t", SessionConfig { queue_capacity: 32, ..Default::default() });

    // Every job shares one canonical fingerprint, so all of them route to
    // the same home shard while its single worker is parked on the gate —
    // a guaranteed backlog. With a migration threshold of 0, the submit
    // path must rebalance that backlog onto the idle shard.
    let handles: Vec<JobHandle> = (0..JOBS)
        .map(|seed| {
            let problem =
                Arc::new(GatedPick { costs: vec![2.5, 0.5, 1.5, 3.5], gate: Arc::clone(&gate) });
            session.submit(JobSpec::new(problem, seed)).expect("admitted")
        })
        .collect();

    gate.open();
    for handle in &handles {
        assert!(handle.wait().is_ok(), "a migrated job must still resolve its handle");
    }
    let ids: HashSet<u64> = session.completions().map(|c| c.id).collect();
    assert_eq!(ids.len(), JOBS as usize, "every job completes exactly once");

    let merged = cluster.report();
    assert!(merged.migrations >= 1, "a depth spread of {JOBS} vs 0 must migrate: {merged}");
    assert_eq!(merged.jobs_submitted, JOBS);
    assert_eq!(merged.jobs_completed, JOBS);
    assert_eq!(merged.jobs_failed, 0);
    assert_eq!(merged.jobs_cancelled, 0);

    // Migration moves a job's execution, not its ledger entry: the donor
    // counted the submit, the recipient counts the completion, so only the
    // *merged* ledger balances — and completions spread across both shards.
    let per_shard = cluster.shard_reports();
    assert_eq!(per_shard.iter().map(|r| r.jobs_submitted).sum::<u64>(), JOBS);
    assert_eq!(per_shard.iter().map(|r| r.jobs_completed).sum::<u64>(), JOBS);
    assert!(
        per_shard.iter().all(|r| r.jobs_completed >= 1),
        "both shards should execute part of the backlog: {per_shard:?}"
    );
}

#[test]
fn admission_meters_predicted_seconds_not_job_count() {
    // Two tenants with *identical* seconds budgets and a frozen clock (no
    // refill): one submits big 64-variable jobs, the other a flood of
    // 4-variable jobs. If admission metered job count they would be cut
    // off at the same number of jobs; metering predicted seconds cuts
    // both off within one job's cost of the same work budget. The gate
    // wedges the single worker in decode so every quote in the test is
    // the frozen cold calibration.
    let reg = SolverRegistry::standard();
    let sa = reg.find("simulated-annealing").expect("SA registered");
    let heavy_unit = analytic_seconds(&reg.get(sa).spec, CostShape::from_n_vars(64));
    let cheap_unit = analytic_seconds(&reg.get(sa).spec, CostShape::from_n_vars(4));
    let capacity = 2.5 * heavy_unit;
    let gate = Arc::new(Gate::default());
    let clock = Arc::new(ManualClock::new(0));
    let cluster = ClusterService::new(ClusterConfig {
        shards: 1,
        service: ServiceConfig { workers: 1, cache_capacity: 512, ..Default::default() },
        admission: AdmissionConfig::default()
            .with_default_bucket(TokenBucketConfig { capacity, refill_per_second: 0.0 }),
        clock: Some(clock.clone()),
        ..Default::default()
    });

    let heavy = cluster.session("heavy", SessionConfig::default());
    let heavy_spec = |seed| {
        let problem = Arc::new(GatedPick {
            costs: (0..64).map(|i| (i % 5) as f64 + 0.5).collect(),
            gate: Arc::clone(&gate),
        });
        JobSpec::new(problem, seed).on_backend("simulated-annealing")
    };
    let h1 = heavy.submit(heavy_spec(1)).expect("first heavy job fits the burst");
    let h2 = heavy.submit(heavy_spec(2)).expect("second heavy job fits the burst");
    assert!(heavy.submit(heavy_spec(3)).is_err(), "2.5 units of burst cannot cover a third");

    // Replicate the bucket's own draining arithmetic (sequential
    // subtraction, same f64 ops) to learn how many cheap jobs the
    // identical budget covers, instead of hardcoding estimator constants.
    let mut tokens = capacity;
    let mut fits = 0u64;
    while tokens >= cheap_unit {
        tokens -= cheap_unit;
        fits += 1;
    }
    assert!(fits > 50, "many cheap jobs should fit where two heavy ones did: {fits}");

    let bulk = cluster.session("bulk", SessionConfig { queue_capacity: 256, ..Default::default() });
    let bulk_spec = |seed| {
        let problem =
            Arc::new(GatedPick { costs: vec![2.5, 0.5, 1.5, 3.5], gate: Arc::clone(&gate) });
        JobSpec::new(problem, seed).on_backend("simulated-annealing")
    };
    let mut bulk_handles = Vec::new();
    for seed in 0..fits {
        bulk_handles.push(bulk.submit(bulk_spec(seed)).expect("within the seconds budget"));
    }
    assert!(bulk.submit(bulk_spec(fits)).is_err(), "the budget is seconds, not a job count");

    // Both tenants were stopped within one of their own jobs of the SAME
    // seconds budget — comparable throttling despite a 50×+ job-count gap.
    assert!(2.0 * heavy_unit <= capacity && 3.0 * heavy_unit > capacity);
    assert!(fits as f64 * cheap_unit <= capacity && (fits + 1) as f64 * cheap_unit > capacity);

    gate.open();
    assert!(h1.wait().is_ok());
    assert!(h2.wait().is_ok());
    for handle in &bulk_handles {
        assert!(handle.wait().is_ok());
    }
    heavy.drain();
    bulk.drain();
    let report = cluster.report();
    assert_eq!(report.jobs_shed, 2, "one refusal per tenant");
    assert_eq!(report.jobs_admitted, 2 + fits);
    assert_eq!(report.jobs_completed, 2 + fits);
}

#[test]
fn watermark_shedding_uses_the_injected_depth_probe() {
    struct Flooded;
    impl DepthProbe for Flooded {
        fn queue_depth(&self, _shard: usize) -> usize {
            100
        }
    }
    let cluster = ClusterService::new(ClusterConfig {
        shards: 2,
        service: ServiceConfig { workers: 1, cache_capacity: 16, ..Default::default() },
        shed_watermark: Some(10),
        shed_retry_hint: Duration::from_millis(125),
        depth_probe: Some(Arc::new(Flooded)),
        ..Default::default()
    });
    let session = cluster.session("t", SessionConfig::default());
    let err = session.submit(JobSpec::new(mqo(1), 1)).unwrap_err();
    assert_eq!(err.retry_after_hint(), Some(Duration::from_millis(125)));
    drop(session);
    let merged = cluster.report();
    assert_eq!(merged.jobs_shed, 1);
    assert_eq!(merged.jobs_submitted, 0, "a shed job never occupies a queue");
}
