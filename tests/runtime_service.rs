//! Cross-crate integration tests for the `qdm-runtime` solver service:
//! cache determinism, batch ordering, portfolio capacity routing, and the
//! presolve+decompose pipeline regression the runtime relies on.

use qdm::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn mqo(seed: u64) -> Arc<MqoProblem> {
    let mut rng = StdRng::seed_from_u64(seed);
    Arc::new(MqoProblem::new(MqoInstance::generate(3, 2, 0.3, &mut rng)))
}

fn joinorder(seed: u64) -> Arc<JoinOrderProblem> {
    let mut rng = StdRng::seed_from_u64(seed);
    Arc::new(JoinOrderProblem::left_deep(QueryGraph::generate_random(4, 0.3, &mut rng)))
}

fn txn_schedule(seed: u64) -> Arc<TxnScheduleProblem> {
    let mut rng = StdRng::seed_from_u64(seed);
    let txns = random_workload(4, 3, 2, 0.5, &mut rng);
    let horizon = txns.iter().map(|t| t.duration).sum();
    Arc::new(TxnScheduleProblem::new(txns, horizon))
}

fn repair() -> PipelineOptions {
    PipelineOptions { repair: true, ..Default::default() }
}

#[test]
fn repeated_batch_is_served_from_cache_bit_identically() {
    let service =
        SolverService::new(ServiceConfig { workers: 3, cache_capacity: 256, ..Default::default() });
    let batch: Vec<JobSpec> = vec![
        JobSpec::new(mqo(1), 11).with_options(repair()),
        JobSpec::new(joinorder(2), 12).with_options(repair()),
        JobSpec::new(txn_schedule(3), 13).with_options(repair()),
    ];
    let first = service.run_batch(batch.clone());
    let second = service.run_batch(batch);
    assert_eq!(first.len(), second.len());
    for (a, b) in first.iter().zip(&second) {
        let a = a.as_ref().expect("solvable");
        let b = b.as_ref().expect("solvable");
        assert!(!a.from_cache, "first pass must solve");
        assert!(b.from_cache, "second pass must hit the cache");
        assert_eq!(a.report.bits, b.report.bits, "cached bits must be identical");
        assert_eq!(a.report.energy, b.report.energy, "cached energy must be identical");
        assert_eq!(a.backend, b.backend);
    }
    let report = service.report();
    assert_eq!(report.cache_hits, 3);
    assert_eq!(report.cache_misses, 3);
    assert!((report.cache_hit_rate() - 0.5).abs() < 1e-12);
}

#[test]
fn same_seed_same_job_is_deterministic_even_without_cache() {
    // Two *separate services* (so no shared cache): fixed seeds alone must
    // reproduce bits and energy exactly.
    let run = || {
        let service = SolverService::new(ServiceConfig {
            workers: 2,
            cache_capacity: 16,
            ..Default::default()
        });
        let out = service
            .run(JobSpec::new(mqo(5), 77).with_options(repair()).on_backend("simulated-annealing"))
            .expect("solvable");
        (out.report.bits.clone(), out.report.energy)
    };
    let (bits_a, energy_a) = run();
    let (bits_b, energy_b) = run();
    assert_eq!(bits_a, bits_b);
    assert_eq!(energy_a, energy_b);
}

#[test]
fn mixed_batch_preserves_submission_order_across_workers() {
    let service =
        SolverService::new(ServiceConfig { workers: 4, cache_capacity: 256, ..Default::default() });
    // Interleave the three problem families; seeds make each job unique.
    let mut batch = Vec::new();
    let mut expected_names = Vec::new();
    for i in 0..4u64 {
        batch.push(JobSpec::new(mqo(10 + i), 100 + i).with_options(repair()));
        expected_names.push(mqo(10 + i).name());
        batch.push(JobSpec::new(joinorder(20 + i), 200 + i).with_options(repair()));
        expected_names.push(joinorder(20 + i).name());
        batch.push(JobSpec::new(txn_schedule(30 + i), 300 + i).with_options(repair()));
        expected_names.push(txn_schedule(30 + i).name());
    }
    let outcomes = service.run_batch(batch);
    assert_eq!(outcomes.len(), 12);
    for (k, (outcome, want)) in outcomes.iter().zip(&expected_names).enumerate() {
        let result = outcome.as_ref().expect("solvable");
        assert_eq!(&result.report.problem, want, "slot {k} out of order");
        assert!(result.report.decoded.feasible, "slot {k} infeasible");
    }
    // Job ids are the submission order.
    for (k, outcome) in outcomes.iter().enumerate() {
        assert_eq!(outcome.as_ref().unwrap().job_id, k as u64);
    }
}

#[test]
fn portfolio_routing_respects_backend_capacity() {
    let service =
        SolverService::new(ServiceConfig { workers: 2, cache_capacity: 64, ..Default::default() });
    // A 5-table left-deep join-order encoding is 25 variables: beyond every
    // gate-based route (<= 20 qubits) but fine for annealing/classical.
    let mut rng = StdRng::seed_from_u64(41);
    let big = Arc::new(JoinOrderProblem::left_deep(QueryGraph::generate_random(5, 0.4, &mut rng)));
    let n_vars = big.n_vars();
    assert!(n_vars > 20, "intended to exceed gate-based capacity, got {n_vars}");
    let result = service.run(JobSpec::new(big, 7).with_options(repair())).expect("routable");
    let idx = service.registry().find(&result.backend).expect("known backend");
    assert!(
        service.registry().get(idx).spec.max_vars >= n_vars,
        "portfolio must never route past a backend's max_vars"
    );
    // Pinning the same job to an undersized backend fails loudly instead.
    let mut rng = StdRng::seed_from_u64(41);
    let big = Arc::new(JoinOrderProblem::left_deep(QueryGraph::generate_random(5, 0.4, &mut rng)));
    let err = service.run(JobSpec::new(big, 7).on_backend("qaoa")).unwrap_err();
    assert!(matches!(err, JobError::BackendTooSmall { .. }));
}

#[test]
fn presolve_and_decompose_match_undecomposed_energy_on_mqo() {
    // Regression for the hybrid stages of Sec. III-C.2: with a certified
    // exact solver, presolve + connected-component decomposition must reach
    // exactly the energy of the undecomposed solve.
    for seed in [1u64, 2, 3, 4, 5] {
        let problem = mqo(seed);
        let mut rng = StdRng::seed_from_u64(900 + seed);
        let plain =
            run_pipeline(problem.as_ref(), &ExactSolver, &PipelineOptions::default(), &mut rng);
        let hybrid = run_pipeline(
            problem.as_ref(),
            &ExactSolver,
            &PipelineOptions { presolve: true, decompose: true, ..Default::default() },
            &mut rng,
        );
        assert!(
            (plain.energy - hybrid.energy).abs() < 1e-9,
            "seed {seed}: undecomposed {} vs presolve+decompose {}",
            plain.energy,
            hybrid.energy
        );
        assert!(hybrid.max_subproblem_vars <= plain.max_subproblem_vars);
    }
}

#[test]
fn runtime_report_accounts_for_every_job() {
    let service =
        SolverService::new(ServiceConfig { workers: 2, cache_capacity: 64, ..Default::default() });
    let batch: Vec<JobSpec> =
        (0..6).map(|i| JobSpec::new(mqo(60 + i), 600 + i).with_options(repair())).collect();
    let outcomes = service.run_batch(batch);
    assert!(outcomes.iter().all(|o| o.is_ok()));
    let report = service.report();
    assert_eq!(report.jobs_submitted, 6);
    assert_eq!(report.jobs_completed, 6);
    assert_eq!(report.jobs_failed, 0);
    assert_eq!(report.cache_hits + report.cache_misses, 6);
    let routed: u64 = report.per_backend.iter().map(|(_, n)| n).sum();
    assert_eq!(routed, report.cache_misses, "every miss is attributed to a backend");
    assert!(report.solve_seconds_total >= 0.0);
    assert!(!report.to_string().is_empty());
}
