//! Portfolio-race determinism: a `BackendChoice::Race { k }` job returns a
//! bit-identical winner — same backend, same assignment, same energy — at
//! every worker-pool size and every admissible `k`, and that winner is
//! exactly what the deterministic prediction says: solve the top-k ranked
//! backends independently, pick the lowest energy, break ties toward the
//! higher-ranked participant.

use qdm::prelude::*;
use qdm::qubo::model::QuboModel;
use qdm::qubo::penalty;
use std::sync::Arc;

/// A knapsack-flavoured pick-some problem: enough structure that different
/// backends can genuinely disagree on the best assignment.
struct PickSome {
    costs: Vec<f64>,
}

impl DmProblem for PickSome {
    fn name(&self) -> String {
        format!("race-pick-some-{}", self.costs.len())
    }
    fn n_vars(&self) -> usize {
        self.costs.len()
    }
    fn to_qubo(&self) -> QuboModel {
        let n = self.costs.len();
        let mut q = QuboModel::new(n);
        for (i, &c) in self.costs.iter().enumerate() {
            q.add_linear(i, c);
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if (i + j) % 3 == 0 {
                    q.add_quadratic(i, j, ((i * 5 + j) % 4) as f64 - 1.5);
                }
            }
        }
        let weight = penalty::penalty_weight(&q);
        penalty::at_most_one(&mut q, &[0, 1, 2], weight);
        q
    }
    fn decode(&self, bits: &[bool]) -> Decoded {
        let head = bits[..3].iter().filter(|&&b| b).count();
        let chosen = bits.iter().filter(|&&b| b).count();
        Decoded {
            feasible: head <= 1,
            objective: bits.iter().zip(&self.costs).filter(|(&b, _)| b).map(|(_, &c)| c).sum(),
            summary: format!("{chosen} picked"),
        }
    }
}

fn problem(n: usize) -> SharedProblem {
    Arc::new(PickSome { costs: (0..n).map(|i| ((i * 7) % 11) as f64 - 5.0).collect() })
}

fn fresh_service(workers: usize) -> SolverService {
    SolverService::new(ServiceConfig { workers, cache_capacity: 64, ..Default::default() })
}

#[test]
fn race_winner_is_bit_identical_across_worker_counts_and_k() {
    for k in 1..=4usize {
        let reference =
            fresh_service(1).run(JobSpec::new(problem(12), 42).racing(k)).expect("solvable");
        for workers in [2usize, 4] {
            let other = fresh_service(workers)
                .run(JobSpec::new(problem(12), 42).racing(k))
                .expect("solvable");
            assert_eq!(reference.backend, other.backend, "k={k}, workers={workers}");
            assert_eq!(reference.report.bits, other.report.bits, "k={k}, workers={workers}");
            assert_eq!(
                reference.report.energy.to_bits(),
                other.report.energy.to_bits(),
                "k={k}, workers={workers}"
            );
        }
    }
}

#[test]
fn race_winner_matches_the_solo_run_prediction() {
    let n = 12usize;
    let seed = 9u64;
    // Rank exactly as a fresh service's scheduler would (static priors, no
    // telemetry yet).
    let probe = fresh_service(1);
    let ranking = PortfolioScheduler::new(probe.registry().len()).rank(probe.registry(), n);
    let k = ranking.len().min(4);

    // Solo-solve each participant on its own pinned job (cache keys are
    // per-backend, so one service is fine) and predict the winner:
    // index-ordered scan, strict `<` — energy first, rank as tiebreak.
    let mut expected_backend = String::new();
    let mut expected_energy = f64::INFINITY;
    let mut expected_bits = Vec::new();
    for &idx in &ranking[..k] {
        let name = probe.registry().get(idx).spec.name.clone();
        let solo = probe
            .run(JobSpec::new(problem(n), seed).on_backend(&name))
            .expect("every ranked backend admits the model");
        if solo.report.energy < expected_energy {
            expected_energy = solo.report.energy;
            expected_backend = name;
            expected_bits = solo.report.bits.clone();
        }
    }

    let raced = fresh_service(1).run(JobSpec::new(problem(n), seed).racing(k)).expect("solvable");
    assert_eq!(raced.backend, expected_backend);
    assert_eq!(raced.report.bits, expected_bits);
    assert_eq!(raced.report.energy.to_bits(), expected_energy.to_bits());
}

#[test]
fn race_resubmission_is_served_from_cache_bit_identically() {
    let service = fresh_service(2);
    let first = service.run(JobSpec::new(problem(10), 5).racing(3)).expect("solvable");
    let second = service.run(JobSpec::new(problem(10), 5).racing(3)).expect("solvable");
    assert!(!first.from_cache);
    assert!(second.from_cache);
    assert_eq!(first.report.bits, second.report.bits);
    assert_eq!(first.backend, second.backend);
    assert_eq!(service.report().race_jobs, 1, "the cache hit runs no second race");
}
