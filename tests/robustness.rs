//! Fault-tolerance integration tests: deterministic fault injection at
//! every processing seam, retry with backend fallback, per-job deadlines,
//! circuit-breaker state transitions on a manual clock, and cluster shard
//! failover — all without a single nondeterministic sleep-and-hope.
//!
//! The through-line of every test is the ledger: whatever is injected —
//! panics, typed errors, delays, a dead shard — every submitted job
//! resolves exactly once and `submitted == completed + failed + cancelled`
//! on the (merged) report.

use qdm::prelude::*;
use qdm::qubo::model::QuboModel;
use qdm::qubo::penalty;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Minimal pick-one problem: `n` binary choices, exactly one must be set.
struct PickOne {
    costs: Vec<f64>,
}

impl DmProblem for PickOne {
    fn name(&self) -> String {
        format!("robust-pick-{}", self.costs.len())
    }
    fn n_vars(&self) -> usize {
        self.costs.len()
    }
    fn to_qubo(&self) -> QuboModel {
        let mut q = QuboModel::new(self.costs.len());
        for (i, &c) in self.costs.iter().enumerate() {
            q.add_linear(i, c);
        }
        let vars: Vec<usize> = (0..self.costs.len()).collect();
        let weight = penalty::penalty_weight(&q);
        penalty::exactly_one(&mut q, &vars, weight);
        q
    }
    fn decode(&self, bits: &[bool]) -> Decoded {
        let chosen: Vec<usize> =
            bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
        Decoded {
            feasible: chosen.len() == 1,
            objective: chosen.iter().map(|&i| self.costs[i]).sum(),
            summary: format!("chose {chosen:?}"),
        }
    }
}

fn pick(n: usize) -> SharedProblem {
    Arc::new(PickOne { costs: (0..n).map(|i| ((i * 5) % 11) as f64 + 0.5).collect() })
}

/// Zero-sleep retry policy: deterministic tests never wait on backoff.
fn instant_retries(max_retries: u32) -> RetryPolicy {
    RetryPolicy { max_retries, backoff_base: Duration::ZERO, backoff_cap: Duration::ZERO }
}

fn faulted_service(plan: Arc<FaultPlan>, retries: u32) -> SolverService {
    SolverService::new(ServiceConfig {
        workers: 1,
        cache_capacity: 16,
        injector: Some(plan),
        retry: instant_retries(retries),
        ..Default::default()
    })
}

/// The ledger must balance no matter what was injected.
fn assert_balanced(report: &RuntimeReport) {
    assert_eq!(
        report.jobs_submitted,
        report.jobs_completed + report.jobs_failed + report.jobs_cancelled,
        "ledger out of balance: {report}"
    );
    assert_eq!(report.queue_depth, 0, "no job may be left behind in a queue: {report}");
}

// ---------------------------------------------------------------------------
// Fault matrix: every action at every seam, racing and non-racing, with
// retry enabled — every job must still resolve successfully.
// ---------------------------------------------------------------------------

#[test]
fn fault_matrix_every_site_and_action_resolves_with_retry() {
    let sites = [FaultSite::Compile, FaultSite::Presolve, FaultSite::Solve, FaultSite::Serve];
    let actions = [
        FaultAction::Panic("matrix panic".into()),
        FaultAction::Error("matrix error".into()),
        FaultAction::Delay(Duration::from_millis(2)),
    ];
    for racing in [false, true] {
        for site in sites {
            for action in &actions {
                let plan =
                    Arc::new(FaultPlan::new().fail_at(site, FaultWhen::Nth(1), action.clone()));
                let service = faulted_service(Arc::clone(&plan), 2);
                let mut spec = JobSpec::new(pick(5), 11);
                if racing {
                    spec = spec.racing(2);
                }
                let label = format!("site={} action={action:?} racing={racing}", site.name());
                let outcome = service.run(spec);
                assert!(outcome.is_ok(), "{label}: job must survive the fault: {outcome:?}");
                assert_eq!(plan.fired(), 1, "{label}: the armed fault must actually fire");
                let report = service.report();
                assert_eq!(report.jobs_completed, 1, "{label}");
                assert_eq!(report.jobs_failed, 0, "{label}");
                assert_balanced(&report);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Retry, fallback, and exhaustion.
// ---------------------------------------------------------------------------

#[test]
fn injected_backend_failure_falls_back_to_the_next_ranked_backend() {
    // "exact" has the cheapest prior for a 5-variable model, so the first
    // attempt always dispatches there; the plan kills it permanently.
    let plan = Arc::new(FaultPlan::new().fail_backend(
        "exact",
        FaultWhen::Always,
        FaultAction::Error("exact is down".into()),
    ));
    let service = faulted_service(Arc::clone(&plan), 2);
    let result = service.run(JobSpec::new(pick(5), 3)).expect("fallback serves the job");
    assert_ne!(result.backend, "exact", "the failed backend cannot have produced the result");
    let report = service.report();
    assert_eq!(report.jobs_retried, 1, "one retry: the fallback succeeded first try");
    assert_eq!(report.retries_exhausted, 0);
    assert_eq!(report.jobs_failed, 0);
    assert_balanced(&report);
    // The retry is visible in the trace as its own span.
    let traces = service.traces();
    assert!(
        traces.iter().any(|t| t.spans.iter().any(|s| s.stage == Stage::Retry)),
        "the retry must appear as a child span in the job trace"
    );
}

#[test]
fn retries_exhaust_and_surface_the_injected_error() {
    // Every solve on every backend fails: the retry budget must run out
    // and the job must fail with the injected error, counted exactly once.
    let plan = Arc::new(FaultPlan::new().fail_at(
        FaultSite::Solve,
        FaultWhen::Always,
        FaultAction::Error("all backends down".into()),
    ));
    let service = faulted_service(plan, 2);
    let err = service.run(JobSpec::new(pick(5), 4)).unwrap_err();
    assert_eq!(err, JobError::Injected("all backends down".into()));
    let report = service.report();
    assert_eq!(report.jobs_retried, 2, "the full retry budget was spent");
    assert_eq!(report.retries_exhausted, 1);
    assert_eq!(report.jobs_failed, 1);
    assert_eq!(report.jobs_completed, 0);
    assert_balanced(&report);
}

#[test]
fn panic_payloads_survive_into_the_job_error() {
    // No retries: the catch_unwind path must surface the panic message.
    let plan = Arc::new(FaultPlan::new().fail_at(
        FaultSite::Solve,
        FaultWhen::Nth(1),
        FaultAction::Panic("kaboom at the solve seam".into()),
    ));
    let service = faulted_service(plan, 0);
    let err = service.run(JobSpec::new(pick(5), 5)).unwrap_err();
    match err {
        JobError::Panicked(msg) => {
            assert!(msg.contains("kaboom at the solve seam"), "payload lost: {msg:?}")
        }
        other => panic!("expected Panicked, got {other:?}"),
    }
    let report = service.report();
    assert_eq!(report.jobs_failed, 1);
    assert_eq!(report.jobs_retried, 0, "a zero-retry policy never retries");
    assert_balanced(&report);
}

#[test]
fn faulted_portfolio_result_is_bit_identical_to_pinning_the_fallback() {
    // Acceptance criterion: with one backend permanently failing, the
    // degraded portfolio's answer must be exactly what a run that never
    // ranks the failed backend produces. Fresh services per job keep
    // telemetry out of the comparison.
    for seed in [1u64, 2, 3] {
        let plan = Arc::new(FaultPlan::new().fail_backend(
            "exact",
            FaultWhen::Always,
            FaultAction::Error("permanently dark".into()),
        ));
        let degraded = faulted_service(plan, 2);
        let a = degraded.run(JobSpec::new(pick(6), seed)).expect("fallback serves");
        assert_ne!(a.backend, "exact");

        let clean = SolverService::new(ServiceConfig {
            workers: 1,
            cache_capacity: 16,
            ..Default::default()
        });
        let b = clean
            .run(JobSpec::new(pick(6), seed).on_backend(&a.backend))
            .expect("the fallback backend solves directly");
        assert_eq!(a.report.bits, b.report.bits, "degraded result must be bit-identical");
        assert_eq!(a.report.energy.to_bits(), b.report.energy.to_bits());
        assert_eq!(a.backend, b.backend);
    }
}

// ---------------------------------------------------------------------------
// Deadlines.
// ---------------------------------------------------------------------------

#[test]
fn zero_deadline_fails_fast_with_no_partial_solution() {
    let service =
        SolverService::new(ServiceConfig { workers: 1, cache_capacity: 16, ..Default::default() });
    let err = service.run(JobSpec::new(pick(5), 6).deadline(Duration::ZERO)).unwrap_err();
    assert_eq!(
        err,
        JobError::DeadlineExceeded { partial: None },
        "an already-expired deadline fails at pickup, before anything ran"
    );
    let report = service.report();
    assert_eq!(report.deadlines_exceeded, 1);
    assert_eq!(report.jobs_failed, 1);
    assert_balanced(&report);
}

#[test]
fn mid_solve_deadline_stops_the_search_and_carries_the_partial_best() {
    // A 500ms injected stall at the presolve seam burns the job's 250ms
    // budget before the solver starts; the cooperative checkpoint stops
    // the annealer at its first restart boundary and the best-so-far
    // assignment rides out in the error.
    let plan = Arc::new(FaultPlan::new().fail_at(
        FaultSite::Presolve,
        FaultWhen::Nth(1),
        FaultAction::Delay(Duration::from_millis(500)),
    ));
    let service = faulted_service(plan, 0);
    let spec = JobSpec::new(pick(6), 7)
        .on_backend("simulated-annealing")
        .deadline(Duration::from_millis(250));
    let err = service.run(spec).unwrap_err();
    match err {
        JobError::DeadlineExceeded { partial: Some(partial) } => {
            assert_eq!(partial.bits.len(), 6, "the partial covers every variable");
            assert!(partial.energy.is_finite());
        }
        other => panic!("expected a mid-solve deadline with a partial, got {other:?}"),
    }
    let report = service.report();
    assert_eq!(report.deadlines_exceeded, 1);
    assert_balanced(&report);
}

#[test]
fn generous_deadline_is_bit_identical_to_no_deadline() {
    // The deadline checkpoint consumes no randomness, so a deadline that
    // never fires must not perturb the result in any way.
    let run = |deadline: Option<Duration>| {
        let service = SolverService::new(ServiceConfig {
            workers: 1,
            cache_capacity: 16,
            ..Default::default()
        });
        let mut spec = JobSpec::new(pick(6), 8).on_backend("simulated-annealing");
        if let Some(d) = deadline {
            spec = spec.deadline(d);
        }
        service.run(spec).expect("solvable")
    };
    let plain = run(None);
    let guarded = run(Some(Duration::from_secs(3600)));
    assert_eq!(plain.report.bits, guarded.report.bits);
    assert_eq!(plain.report.energy.to_bits(), guarded.report.energy.to_bits());
    assert_eq!(plain.backend, guarded.backend);
}

// ---------------------------------------------------------------------------
// Circuit breakers.
// ---------------------------------------------------------------------------

#[test]
fn breaker_opens_excludes_the_backend_half_opens_and_recloses() {
    let clock = Arc::new(ManualClock::new(0));
    // "exact" fails its first two solve attempts only: a firing rule stops
    // the scan before later rules count, so the second one-shot rule sees
    // (and kills) exactly the next occurrence after the first rule fired.
    let plan = Arc::new(
        FaultPlan::new()
            .fail_backend("exact", FaultWhen::Nth(1), FaultAction::Error("flaky".into()))
            .fail_backend("exact", FaultWhen::Nth(1), FaultAction::Error("flaky".into())),
    );
    let cooldown = Duration::from_secs(5);
    let service = SolverService::new(ServiceConfig {
        workers: 1,
        cache_capacity: 16,
        injector: Some(Arc::clone(&plan) as Arc<dyn FaultInjector>),
        retry: instant_retries(2),
        breaker: Some(BreakerConfig { failure_threshold: 1, cooldown, clock: Some(clock.clone()) }),
        ..Default::default()
    });

    // Job 1: exact fails, trips the breaker open, the retry falls back.
    let first = service.run(JobSpec::new(pick(5), 10)).expect("fallback serves");
    assert_ne!(first.backend, "exact");
    assert_eq!(service.report().breaker_opened, 1);

    // Job 2: the open breaker excludes exact at routing time — no fault
    // fires, no retry happens, the fallback serves directly.
    let retried_before = service.report().jobs_retried;
    let second = service.run(JobSpec::new(pick(5), 11)).expect("routed around the breaker");
    assert_ne!(second.backend, "exact");
    assert_eq!(service.report().jobs_retried, retried_before, "an open breaker avoids retries");

    // Cooldown elapses on the manual clock: the next ranking half-opens
    // the breaker, the probe attempt fails again, and it re-opens.
    clock.advance(cooldown.as_micros() as u64);
    let third = service.run(JobSpec::new(pick(5), 12)).expect("probe failure falls back");
    assert_ne!(third.backend, "exact");
    let report = service.report();
    assert_eq!(report.breaker_half_opened, 1);
    assert_eq!(report.breaker_opened, 2, "the failed half-open probe re-opened the breaker");

    // Second cooldown: this probe succeeds (the plan is exhausted) and the
    // breaker re-closes — exact is back in service.
    clock.advance(cooldown.as_micros() as u64);
    let fourth = service.run(JobSpec::new(pick(5), 13)).expect("recovered backend serves");
    assert_eq!(fourth.backend, "exact", "a successful probe restores the backend");
    let report = service.report();
    assert_eq!(report.breaker_half_opened, 2);
    assert_eq!(report.breaker_closed, 1);
    assert_eq!(report.jobs_failed, 0, "every job was served despite the flaky backend");
    assert_balanced(&report);

    // The transitions are visible on the metrics endpoint.
    let prom = report.render_prometheus();
    for line in [
        "qdm_breaker_opened_total 2",
        "qdm_breaker_half_opened_total 2",
        "qdm_breaker_closed_total 1",
    ] {
        assert!(prom.contains(line), "missing {line:?} in:\n{prom}");
    }
}

// ---------------------------------------------------------------------------
// Single-flight under injected leader failure.
// ---------------------------------------------------------------------------

/// Blocks the first `expected` callers until all have arrived; later
/// callers (retry attempts) pass straight through.
struct Rendezvous {
    expected: usize,
    arrived: Mutex<usize>,
    all_here: Condvar,
}

impl Rendezvous {
    fn new(expected: usize) -> Self {
        Self { expected, arrived: Mutex::new(0), all_here: Condvar::new() }
    }

    fn wait(&self) {
        let mut arrived = self.arrived.lock().unwrap();
        *arrived += 1;
        if *arrived >= self.expected {
            self.all_here.notify_all();
        }
        while *arrived < self.expected {
            arrived = self.all_here.wait(arrived).unwrap();
        }
    }
}

/// A latch opened once by the test; stays open forever after.
#[derive(Default)]
struct Release {
    open: Mutex<bool>,
    opened: Condvar,
}

impl Release {
    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.opened.notify_all();
    }

    fn wait_open(&self) {
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.opened.wait(open).unwrap();
        }
    }
}

/// Pick-one problem with a rendezvous in `to_qubo` (forces overlap) and a
/// release latch in `decode` (keeps the leader from finishing early).
struct GatedPick {
    costs: Vec<f64>,
    rendezvous: Arc<Rendezvous>,
    release: Arc<Release>,
}

impl DmProblem for GatedPick {
    fn name(&self) -> String {
        "robust-gated-pick".into()
    }
    fn n_vars(&self) -> usize {
        self.costs.len()
    }
    fn to_qubo(&self) -> QuboModel {
        self.rendezvous.wait();
        let mut q = QuboModel::new(self.costs.len());
        for (i, &c) in self.costs.iter().enumerate() {
            q.add_linear(i, c);
        }
        let vars: Vec<usize> = (0..self.costs.len()).collect();
        penalty::exactly_one(&mut q, &vars, 50.0);
        q
    }
    fn decode(&self, bits: &[bool]) -> Decoded {
        self.release.wait_open();
        let chosen: Vec<usize> =
            bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
        Decoded {
            feasible: chosen.len() == 1,
            objective: chosen.iter().map(|&i| self.costs[i]).sum(),
            summary: format!("chose {chosen:?}"),
        }
    }
}

#[test]
fn leader_panic_abandons_the_flight_and_parked_permuted_followers_recover() {
    // Three concurrent submissions of the same canonical QUBO — one of
    // them relabeled — coalesce into one flight. The plan panics the first
    // serve, i.e. *after* the leader solved and decoded: the lease drops
    // unpublished, the parked followers are abandoned, and between the
    // leader's retry and the re-led flight every handle must still
    // resolve with consistent bits.
    let plan = Arc::new(FaultPlan::new().fail_at(
        FaultSite::Serve,
        FaultWhen::Nth(1),
        FaultAction::Panic("serve seam panic".into()),
    ));
    let service = SolverService::new(ServiceConfig {
        workers: 3,
        cache_capacity: 16,
        injector: Some(Arc::clone(&plan) as Arc<dyn FaultInjector>),
        retry: instant_retries(2),
        ..Default::default()
    });
    let session = service.session(SessionConfig { queue_capacity: 8, ..Default::default() });
    let rendezvous = Arc::new(Rendezvous::new(3));
    let release = Arc::new(Release::default());
    let costs = vec![5.0, 1.0, 3.0, 4.0];
    let reversed: Vec<f64> = costs.iter().rev().copied().collect();
    let make = |costs: Vec<f64>| -> SharedProblem {
        Arc::new(GatedPick {
            costs,
            rendezvous: Arc::clone(&rendezvous),
            release: Arc::clone(&release),
        })
    };

    let lead = session.submit(JobSpec::new(make(costs.clone()), 21).on_backend("tabu"));
    let twin = session.submit(JobSpec::new(make(costs), 21).on_backend("tabu"));
    let permuted = session.submit(JobSpec::new(make(reversed), 21).on_backend("tabu"));
    // Both duplicates must be parked on the leader's flight before the
    // leader is allowed to reach the panicking serve seam.
    while service.report().jobs_coalesced < 2 {
        std::thread::yield_now();
    }
    release.open();

    let a = lead.wait().expect("leader or re-led follower, the job resolves");
    let b = twin.wait().expect("abandoned follower retries and resolves");
    let c = permuted.wait().expect("permuted follower resolves through its own permutation");
    assert_eq!(plan.fired(), 1, "the serve panic fired exactly once");
    assert_eq!(a.report.bits, b.report.bits, "duplicates agree bit-for-bit");
    let mut mirrored = a.report.bits.clone();
    mirrored.reverse();
    assert_eq!(c.report.bits, mirrored, "the permuted follower sees the translated assignment");
    session.drain();
    let report = service.report();
    assert_eq!(report.jobs_completed, 3);
    assert_eq!(report.jobs_failed, 0);
    assert!(report.jobs_retried >= 1, "the panicked leader retried: {report}");
    assert_balanced(&report);
}

// ---------------------------------------------------------------------------
// Cluster shard failover.
// ---------------------------------------------------------------------------

/// Flip-a-switch health probe: one `AtomicBool` per shard.
struct HealthFlags(Vec<AtomicBool>);

impl HealthFlags {
    fn all_healthy(n: usize) -> Arc<Self> {
        Arc::new(Self((0..n).map(|_| AtomicBool::new(true)).collect()))
    }

    fn kill(&self, shard: usize) {
        self.0[shard].store(false, Ordering::SeqCst);
    }
}

impl HealthProbe for HealthFlags {
    fn is_healthy(&self, shard: usize) -> bool {
        self.0[shard].load(Ordering::SeqCst)
    }
}

/// Pick-one problem whose `decode` parks the worker until the latch opens
/// and reports each arrival — the deterministic way to wedge a shard's
/// only worker and build a queue behind it.
struct ParkedPick {
    costs: Vec<f64>,
    release: Arc<Release>,
    arrivals: Arc<AtomicUsize>,
}

impl DmProblem for ParkedPick {
    fn name(&self) -> String {
        "robust-parked-pick".into()
    }
    fn n_vars(&self) -> usize {
        self.costs.len()
    }
    fn to_qubo(&self) -> QuboModel {
        let mut q = QuboModel::new(self.costs.len());
        for (i, &c) in self.costs.iter().enumerate() {
            q.add_linear(i, c);
        }
        let vars: Vec<usize> = (0..self.costs.len()).collect();
        penalty::exactly_one(&mut q, &vars, 50.0);
        q
    }
    fn decode(&self, bits: &[bool]) -> Decoded {
        self.arrivals.fetch_add(1, Ordering::SeqCst);
        self.release.wait_open();
        let chosen: Vec<usize> =
            bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
        Decoded {
            feasible: chosen.len() == 1,
            objective: chosen.iter().map(|&i| self.costs[i]).sum(),
            summary: format!("chose {chosen:?}"),
        }
    }
}

#[test]
fn killing_a_shard_mid_run_drains_its_queue_and_loses_no_job() {
    const SHARDS: usize = 4;
    let flags = HealthFlags::all_healthy(SHARDS);
    let cluster = ClusterService::new(ClusterConfig {
        shards: SHARDS,
        service: ServiceConfig { workers: 1, cache_capacity: 16, ..Default::default() },
        health_probe: Some(Arc::clone(&flags) as Arc<dyn HealthProbe>),
        ..Default::default()
    });
    let release = Arc::new(Release::default());
    let arrivals = Arc::new(AtomicUsize::new(0));
    let job = |seed: u64| {
        let problem: SharedProblem = Arc::new(ParkedPick {
            costs: vec![2.5, 0.5, 1.5, 3.5],
            release: Arc::clone(&release),
            arrivals: Arc::clone(&arrivals),
        });
        JobSpec::new(problem, seed)
    };
    // Every job shares one fingerprint, so all route to one home shard.
    let home = {
        let (fp, _) = job(0).problem.to_qubo().canonical_form();
        cluster.shard_for_fingerprint(fp)
    };
    let session = cluster.session("t", SessionConfig { queue_capacity: 16, ..Default::default() });

    // Job 0 wedges the home shard's only worker in decode; jobs 1..=5
    // pile up in its queue with nobody to run them.
    let mut handles = vec![session.submit(job(0)).expect("admitted")];
    while arrivals.load(Ordering::SeqCst) == 0 {
        std::thread::yield_now();
    }
    for seed in 1..=5 {
        handles.push(session.submit(job(seed)).expect("admitted"));
    }

    // Kill the home shard mid-run and drain: the queued-not-claimed jobs
    // must move to a healthy shard through the migration accounting path.
    flags.kill(home);
    cluster.failover_drain();
    // A fresh submission while the home shard is dead re-routes on the
    // ring and counts a failover on its recipient.
    handles.push(session.submit(job(6)).expect("rerouted"));

    release.open();
    for handle in &handles {
        assert!(handle.wait().is_ok(), "no job may be lost to the dead shard");
    }
    session.drain();
    let ids: HashSet<u64> = session.completions().map(|c| c.id).collect();
    assert_eq!(ids.len(), handles.len(), "every job completed exactly once");

    let merged = cluster.report();
    assert_eq!(merged.jobs_submitted, handles.len() as u64);
    assert_eq!(merged.jobs_completed, handles.len() as u64);
    assert_eq!(merged.jobs_failed, 0);
    assert!(merged.failovers >= 6, "5 drained + 1 rerouted: {merged}");
    assert!(merged.migrations >= 5, "drained jobs ride the migration ledger: {merged}");
    assert_balanced(&merged);
    // The wedged job itself completed on the (now dead) home shard; every
    // drained job completed elsewhere.
    let per_shard = cluster.shard_reports();
    assert_eq!(per_shard[home].jobs_completed, 1, "only the already-claimed job ran at home");
}

#[test]
fn results_with_a_dead_shard_are_bit_identical_to_a_healthy_cluster() {
    const SHARDS: usize = 4;
    // Distinct sizes give distinct fingerprints spread across the ring;
    // pinned backends keep shard-local portfolio telemetry out of play.
    let specs = || -> Vec<JobSpec> {
        (0..6u64)
            .map(|i| {
                JobSpec::new(pick(4 + i as usize), 40 + i)
                    .on_backend(["simulated-annealing", "tabu"][i as usize % 2])
            })
            .collect()
    };
    let run = |probe: Option<Arc<dyn HealthProbe>>| -> (Vec<JobOutcome>, RuntimeReport) {
        let cluster = ClusterService::new(ClusterConfig {
            shards: SHARDS,
            service: ServiceConfig { workers: 1, cache_capacity: 16, ..Default::default() },
            health_probe: probe,
            ..Default::default()
        });
        let session = cluster.session("t", SessionConfig::default());
        let handles: Vec<JobHandle> =
            specs().into_iter().map(|s| session.submit(s).expect("admitted")).collect();
        let outcomes = handles.iter().map(JobHandle::wait).collect();
        session.drain();
        (outcomes, cluster.report())
    };

    let (healthy, _) = run(None);

    // Kill the home shard of the first spec from the start.
    let probe_cluster = ClusterService::new(ClusterConfig {
        shards: SHARDS,
        service: ServiceConfig { workers: 1, cache_capacity: 16, ..Default::default() },
        ..Default::default()
    });
    let (fp, _) = pick(4).to_qubo().canonical_form();
    let dead = probe_cluster.shard_for_fingerprint(fp);
    drop(probe_cluster);
    let flags = HealthFlags::all_healthy(SHARDS);
    flags.kill(dead);
    let (degraded, report) = run(Some(flags as Arc<dyn HealthProbe>));

    for (h, d) in healthy.iter().zip(&degraded) {
        let h = h.as_ref().expect("solvable");
        let d = d.as_ref().expect("solvable despite the dead shard");
        assert_eq!(h.report.bits, d.report.bits, "failover must not change the answer");
        assert_eq!(h.report.energy.to_bits(), d.report.energy.to_bits());
        assert_eq!(h.backend, d.backend);
    }
    assert!(report.failovers >= 1, "at least the first spec re-routed: {report}");
    assert_eq!(report.jobs_failed, 0);
    assert_balanced(&report);
}
