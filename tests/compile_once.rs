//! The compile-once invariant, asserted via the process-wide compilation
//! counter (`qdm_qubo::compiled::compilation_count`): a job on the service
//! path compiles its QUBO **exactly once**, no matter how many stages and
//! backends consume the compilation — fingerprinting, the solver hot loop,
//! and all k participants of a portfolio race share one `Arc<CompiledQubo>`.
//!
//! Everything runs inside a single `#[test]` because the counter is global
//! to the process: this file is its own test binary, and one test body is
//! the only way to keep unrelated compilations out of the measured deltas.

use qdm::prelude::*;
use qdm::qubo::compiled::compilation_count;
use qdm::qubo::model::QuboModel;
use qdm::qubo::penalty;
use std::sync::Arc;

/// Pick-one-of-n with per-option costs (same shape as the service tests).
struct PickOne {
    costs: Vec<f64>,
}

impl DmProblem for PickOne {
    fn name(&self) -> String {
        format!("compile-once-pick-{}", self.costs.len())
    }
    fn n_vars(&self) -> usize {
        self.costs.len()
    }
    fn to_qubo(&self) -> QuboModel {
        let mut q = QuboModel::new(self.costs.len());
        for (i, &c) in self.costs.iter().enumerate() {
            q.add_linear(i, c);
        }
        let vars: Vec<usize> = (0..self.costs.len()).collect();
        let weight = penalty::penalty_weight(&q);
        penalty::exactly_one(&mut q, &vars, weight);
        q
    }
    fn decode(&self, bits: &[bool]) -> Decoded {
        let chosen: Vec<usize> =
            bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
        Decoded {
            feasible: chosen.len() == 1,
            objective: chosen.iter().map(|&i| self.costs[i]).sum(),
            summary: format!("chose {chosen:?}"),
        }
    }
}

fn pick(n: usize) -> SharedProblem {
    Arc::new(PickOne { costs: (0..n).map(|i| ((i * 3) % 7) as f64 + 0.5).collect() })
}

#[test]
fn service_path_compiles_each_job_exactly_once() {
    let service =
        SolverService::new(ServiceConfig { workers: 2, cache_capacity: 64, ..Default::default() });

    // Cache miss, pinned single backend: one compile, shared by the
    // canonical fingerprint and the SA hot loop.
    let before = compilation_count();
    let first =
        service.run(JobSpec::new(pick(10), 7).on_backend("simulated-annealing")).expect("solvable");
    assert!(!first.from_cache);
    assert_eq!(
        compilation_count() - before,
        1,
        "a pinned cache-miss job must compile exactly once"
    );

    // Cache miss, 4-backend race: still one compile — all participants
    // solve the same shared compilation.
    let before = compilation_count();
    let raced = service.run(JobSpec::new(pick(11), 8).racing(4)).expect("solvable");
    assert!(!raced.from_cache);
    assert_eq!(
        compilation_count() - before,
        1,
        "a 4-backend race must share one compilation, not compile per backend"
    );

    // Cache hit: the fingerprint still needs the (single) compilation, and
    // nothing else compiles.
    let before = compilation_count();
    let again =
        service.run(JobSpec::new(pick(10), 7).on_backend("simulated-annealing")).expect("solvable");
    assert!(again.from_cache);
    assert_eq!(compilation_count() - before, 1, "a cache hit compiles only for fingerprinting");
    assert_eq!(again.report.bits, first.report.bits);

    // The shared compilation shows up in the ledger as compile time saved:
    // the race amortized one compile across 5 consumers (fingerprint + 4
    // backends).
    let report = service.report();
    assert!(report.compile_seconds_saved > 0.0, "sharing must be accounted: {report}");
    assert_eq!(report.race_jobs, 1);
}
