//! Data management via quantum internet (Sec. IV): entanglement
//! distribution at the paper's demonstrated distances, nonlocal games,
//! teleport-moved records under no-cloning, BB84 keys, and a
//! quantum-authenticated two-phase commit between "cloud data centers".
//!
//! ```text
//! cargo run --example quantum_internet --release
//! ```

use qdm::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(4);

    // ------------------------------------------------------------------
    // 1. Entanglement distribution: fiber vs satellite vs repeaters.
    // ------------------------------------------------------------------
    println!("## Entanglement distribution (refs [5], [6])");
    for d in [100.0, 248.0, 600.0, 1203.0] {
        let fiber = LinkModel::fiber(d).pair_rate();
        let sat = LinkModel::satellite(d).pair_rate();
        let (chain, perf) = best_chain(d, 32);
        println!(
            "  {d:>6} km: fiber {fiber:>12.3e} pairs/s | satellite {sat:>10.3e} | best chain ({} segs) {:>12.3e} @ F={:.3}",
            chain.segments, perf.rate_hz, perf.fidelity
        );
    }
    println!("  fiber/satellite crossover: ~{:.0} km\n", fiber_satellite_crossover_km());

    // ------------------------------------------------------------------
    // 2. Nonlocality: the CHSH and GHZ games (Sec. IV-A).
    // ------------------------------------------------------------------
    println!("## Nonlocal games");
    println!(
        "  CHSH: quantum {:.4} vs classical {:.2} (paper: ~0.85 vs 0.75)",
        chsh_quantum_value(&ChshStrategy::optimal()),
        chsh_classical_optimum()
    );
    println!(
        "  GHZ:  quantum {:.4} vs classical {:.2} (paper: 1 vs 0.75)\n",
        ghz_quantum_value(),
        ghz_classical_optimum()
    );

    // ------------------------------------------------------------------
    // 3. A two-node network: keys, entanglement, record teleportation, 2PC.
    // ------------------------------------------------------------------
    println!("## Amsterdam <-> Delft quantum network");
    let mut net = QuantumNetwork::new();
    net.add_node("amsterdam");
    net.add_node("delft");
    net.add_link("amsterdam", "delft", LinkModel::fiber(60.0));

    let key_bits = net.establish_key("amsterdam", "delft", 128, &mut rng).expect("qkd");
    println!("  BB84 provisioned {key_bits} key bits");

    let attempts = net
        .generate_entanglement("amsterdam", "delft", 4, 1_000_000, &mut rng)
        .expect("entanglement");
    println!(
        "  generated 4 Bell pairs in {attempts} attempts (bank: {})",
        net.entanglement_available("amsterdam", "delft")
    );

    // Store a quantum record and move it — the original must vanish.
    let payload = random_qubit(&mut rng);
    net.store("amsterdam", QuantumRecord::new(42, payload)).expect("store");
    let fidelity = net.teleport_record("amsterdam", "delft", 42, &mut rng).expect("teleport");
    println!("  teleported record 42 with fidelity {fidelity:.4}");
    println!(
        "  amsterdam now holds {} records, delft holds {:?}",
        net.node_mut("amsterdam").expect("node").table.len(),
        net.node_mut("delft").expect("node").table.keys()
    );

    // No-cloning in action.
    let record = QuantumRecord::from_classical(7, 2, 0b01);
    println!("  cloning attempt: {:?}", record.try_clone().expect_err("refused"));

    // Quantum-authenticated 2PC with 20% message loss.
    net.message_loss = 0.2;
    net.max_retries = 20;
    let outcome =
        net.two_phase_commit("amsterdam", &["delft"], 1.0, &mut rng).expect("protocol runs");
    println!("  2PC under 20% message loss: {outcome:?}");
    println!("  key material left: {} bits", net.key_available("amsterdam", "delft"));

    // ------------------------------------------------------------------
    // 4. Eavesdropping is detected.
    // ------------------------------------------------------------------
    println!("\n## BB84 with an intercept-resend eavesdropper");
    let out = run_bb84(
        &Bb84Params { n_qubits: 2048, eavesdropper: true, ..Default::default() },
        &mut rng,
    );
    println!("  QBER {:.3} (expected ~0.25) -> aborted: {} (no key leaked)", out.qber, out.aborted);
}
