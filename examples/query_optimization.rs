//! Join ordering end-to-end (Sec. III-B): classical optimizers vs the
//! QUBO routes, with the chosen plans *executed* on the in-memory engine
//! to prove every order returns the same answer.
//!
//! ```text
//! cargo run --example query_optimization --release
//! ```

use qdm::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let graph = QueryGraph::generate(GraphShape::Chain, 5, &mut rng);
    println!("## A 5-relation chain query");
    for (i, c) in graph.cardinalities.iter().enumerate() {
        println!("  R{i}: |R| = {c}");
    }
    for e in &graph.edges {
        println!("  R{} ⋈ R{} (selectivity {:.4})", e.a, e.b, e.selectivity);
    }

    // ------------------------------------------------------------------
    // Classical optimizers.
    // ------------------------------------------------------------------
    println!("\n## Classical optimizers (C_out cost)");
    let dp_ld = optimal_left_deep(&graph);
    let dp_bushy = optimal_bushy(&graph);
    let goo = greedy_goo(&graph);
    let qp = quickpick(&graph, 100, &mut rng);
    println!("  exact left-deep DP: {:>14.1}   {}", dp_ld.cost, dp_ld.tree);
    println!("  exact bushy DP:     {:>14.1}   {}", dp_bushy.cost, dp_bushy.tree);
    println!("  greedy GOO:         {:>14.1}   {}", goo.cost, goo.tree);
    println!("  QuickPick (100):    {:>14.1}   {}", qp.cost, qp.tree);

    // ------------------------------------------------------------------
    // Quantum routes: QUBO via annealing and QAOA (left-deep template).
    // ------------------------------------------------------------------
    println!("\n## QUBO routes (Fig. 2)");
    let problem = JoinOrderProblem::left_deep(graph.clone());
    let opts = PipelineOptions { repair: true, ..Default::default() };
    for solver in [
        Box::new(SaSolver::default()) as Box<dyn QuboSolver>,
        Box::new(SqaSolver::default()),
        Box::new(TabuSolver::default()),
    ] {
        let report = run_pipeline(&problem, solver.as_ref(), &opts, &mut rng);
        println!(
            "  {:<28} cost {:>14.1}   {}  (feasible: {})",
            solver.name(),
            report.decoded.objective,
            report.decoded.summary,
            report.decoded.feasible
        );
    }

    // Bushy template.
    let bushy_problem = JoinOrderProblem::bushy(graph.clone());
    let report = run_pipeline(&bushy_problem, &TabuSolver::default(), &opts, &mut rng);
    println!(
        "  {:<28} cost {:>14.1}   {}",
        "bushy template + tabu", report.decoded.objective, report.decoded.summary
    );

    // ------------------------------------------------------------------
    // Execute several plans on real data: identical answers, different work.
    // ------------------------------------------------------------------
    println!("\n## Plan equivalence on materialized data");
    let db = generate_database(&graph, 50, 4, &mut rng);
    let plans = vec![
        ("optimal bushy", dp_bushy.tree.clone()),
        ("optimal left-deep", dp_ld.tree.clone()),
        ("worst-ish left-deep", JoinTree::left_deep(&[4, 0, 2, 1, 3])),
    ];
    let mut reference: Option<Vec<Vec<Value>>> = None;
    for (name, plan) in plans {
        let result = execute(&plan, &db, &graph);
        let multiset = result.row_multiset();
        match &reference {
            None => {
                println!("  {name}: {} result rows", result.n_rows());
                reference = Some(multiset);
            }
            Some(r) => {
                println!(
                    "  {name}: {} result rows — identical to reference: {}",
                    result.n_rows(),
                    *r == multiset
                );
            }
        }
    }
}
