//! Calibration probe for the runtime cost model: measures actual solve
//! seconds against [`qdm::prelude::analytic_seconds`] for every backend
//! across a sweep of problem sizes, printing the actual/analytic ratio.
//!
//! Run it in release mode (`cargo run --release --example
//! cost_calibration`) when retuning the per-state constants in
//! `qdm_runtime::cost` (`EXACT_STATE_SECONDS`, `GATE_STATE_SECONDS`, …):
//! a healthy constant keeps the ratio near 1 at large `n`, where per-state
//! work dominates dispatch overhead. Debug builds run the solvers several
//! times slower uniformly — that common-mode factor is exactly what the
//! routing channel's fleet-relative quantization cancels, so only release
//! numbers should feed the constants.

use qdm::prelude::*;
use std::sync::Arc;

struct Pick(usize);
impl DmProblem for Pick {
    fn name(&self) -> String {
        format!("pick-{}", self.0)
    }
    fn n_vars(&self) -> usize {
        self.0
    }
    fn to_qubo(&self) -> QuboModel {
        let mut q = QuboModel::new(self.0);
        for i in 0..self.0 {
            q.add_linear(i, ((i * 7) % 5) as f64 + 1.0);
        }
        let vars: Vec<usize> = (0..self.0).collect();
        penalty::exactly_one(&mut q, &vars, 50.0);
        q
    }
    fn decode(&self, _bits: &[bool]) -> Decoded {
        Decoded { feasible: true, objective: 0.0, summary: String::new() }
    }
}

fn main() {
    let backends = [
        "exact",
        "simulated-annealing",
        "parallel-tempering-sa",
        "tabu-search",
        "random-sampling",
        "adiabatic-evolution",
    ];
    let reg = SolverRegistry::standard();
    for n in [3usize, 6, 10, 14, 18, 22] {
        for name in backends {
            let Some(idx) = reg.find(name) else { continue };
            if reg.get(idx).spec.max_vars < n {
                continue;
            }
            let service = SolverService::new(ServiceConfig {
                workers: 1,
                cache_capacity: 4,
                ..Default::default()
            });
            let mut total = 0.0;
            let reps = 5;
            for seed in 0..reps {
                let spec = JobSpec::new(Arc::new(Pick(n)), seed).on_backend(name);
                let out = service.run(spec).expect("solve");
                total += out.report.seconds;
            }
            let actual = total / reps as f64;
            let shape = CostShape::from_n_vars(n);
            let analytic = analytic_seconds(&reg.get(idx).spec, shape);
            println!(
                "n={n:2} {name:22} actual={actual:>12.3e} analytic={analytic:>12.3e} ratio={:>10.2}",
                actual / analytic
            );
        }
    }
}
