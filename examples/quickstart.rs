//! Quickstart: the paper's core ideas in five minutes.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Walks through (1) Example II.1's superposition, (2) Example IV.1's Bell
//! state and the "spooky" correlation, (3) Grover search of an unsorted
//! database (Sec. III-A), and (4) the Fig. 2 roadmap solving a small MQO
//! instance on the simulated annealer.

use qdm::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);

    // ------------------------------------------------------------------
    // 1. Example II.1: |psi> = (|0> + |1>)/sqrt(2).
    // ------------------------------------------------------------------
    println!("## Example II.1 — superposition");
    let mut psi = StateVector::new(1);
    psi.apply_single(0, &gates::hadamard());
    println!("P(0) = {:.4}, P(1) = {:.4}", psi.probability(0), psi.probability(1));
    let shots = 10_000;
    let ones: usize = psi.sample(shots, &mut rng).into_iter().sum();
    println!("{shots} shots: {} zeros, {ones} ones\n", shots - ones);

    // ------------------------------------------------------------------
    // 2. Example IV.1: the Bell state, and entangled correlations.
    // ------------------------------------------------------------------
    println!("## Example IV.1 — Bell state (|00> + |11>)/sqrt(2)");
    let mut agreements = 0;
    for _ in 0..1000 {
        let mut pair = bell_state(BellState::PhiPlus);
        let amsterdam = pair.measure_qubit(0, &mut rng);
        let san_francisco = pair.measure_qubit(1, &mut rng);
        if amsterdam == san_francisco {
            agreements += 1;
        }
    }
    println!("measuring both halves 1000 times: {agreements} agreements (always correlated)\n");

    // ------------------------------------------------------------------
    // 3. Sec. III-A: Grover search of an unsorted 256-record database.
    // ------------------------------------------------------------------
    println!("## Grover database search (Sec. III-A)");
    let db = QuantumDatabase::from_values((0..256).map(|v| (v * 37) % 251).collect());
    let target_value = db.record(200).fields[0];
    let quantum = db.search_known(|r| r.id == 200, 1, &mut rng);
    let classical = db.classical_search(|r| r.id == 200);
    println!(
        "256 records, find the one with value {target_value}: quantum used {} oracle queries, classical scan {} probes",
        quantum.quantum_queries, classical.classical_probes
    );
    println!("found: quantum -> {:?}, classical -> {:?}\n", quantum.found, classical.found);

    // ------------------------------------------------------------------
    // 4. Fig. 2: MQO -> QUBO -> simulated quantum annealer.
    // ------------------------------------------------------------------
    println!("## Fig. 2 roadmap — MQO on the (simulated) annealer");
    let instance = MqoInstance::generate(4, 3, 0.3, &mut rng);
    let (_, exhaustive) = instance.exhaustive_optimum();
    let problem = MqoProblem::new(instance);
    let report = run_pipeline(
        &problem,
        &SqaSolver::default(),
        &PipelineOptions { repair: true, ..Default::default() },
        &mut rng,
    );
    println!("QUBO variables: {}", report.n_vars);
    println!("annealer objective:   {:.4}", report.decoded.objective);
    println!("exhaustive optimum:   {exhaustive:.4}");
    println!("feasible: {} ({})", report.decoded.feasible, report.decoded.summary);
}
