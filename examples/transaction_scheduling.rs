//! Transaction scheduling under two-phase locking (Table I, [29]–[31]):
//! a workload scheduled serially, by greedy list scheduling, by the QUBO
//! annealing route, and by Grover minimum finding.
//!
//! ```text
//! cargo run --example transaction_scheduling --release
//! ```

use qdm::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(31);
    let txns = random_workload(5, 4, 3, 0.5, &mut rng);
    println!("## Workload ({} transactions over 4 data items)", txns.len());
    for t in &txns {
        println!(
            "  T{}: reads {:?}, writes {:?}, duration {}",
            t.id, t.reads, t.writes, t.duration
        );
    }
    println!("\n## Conflicts (must not overlap under conservative 2PL)");
    for (i, a) in txns.iter().enumerate() {
        for b in txns.iter().skip(i + 1) {
            if a.conflicts_with(b) {
                println!("  T{} x T{}", a.id, b.id);
            }
        }
    }

    // Baselines.
    let serial = serial_schedule(&txns);
    let order: Vec<usize> = (0..txns.len()).collect();
    let greedy = greedy_schedule(&txns, &order);
    let (cons_2pl, blocked) = simulate_conservative_2pl(&txns, &order);
    println!("\n## Schedules");
    println!("  serial:           makespan {}", serial.makespan(&txns));
    println!("  greedy list:      makespan {}", greedy.makespan(&txns));
    println!(
        "  conservative 2PL: makespan {} ({} blocked slots)",
        cons_2pl.makespan(&txns),
        blocked
    );

    // QUBO route.
    let horizon: usize = txns.iter().map(|t| t.duration).sum();
    let problem = TxnScheduleProblem::new(txns.clone(), horizon);
    let report = run_pipeline(
        &problem,
        &SqaSolver::default(),
        &PipelineOptions { repair: true, ..Default::default() },
        &mut rng,
    );
    println!(
        "  QUBO + annealer:  makespan {} (feasible {}, {} vars) — {}",
        report.decoded.objective, report.decoded.feasible, report.n_vars, report.decoded.summary
    );

    // Grover route on the first four transactions.
    let mut small: Vec<Transaction> = txns.iter().take(4).cloned().collect();
    for (i, t) in small.iter_mut().enumerate() {
        t.id = i;
    }
    let grover = grover_schedule_search(&small, 3, &mut rng);
    println!(
        "  Grover ([31], 4 txns, 12 qubits): makespan {} using {} quantum oracle queries",
        grover.makespan, grover.quantum_queries
    );

    // Serializability check of the chosen schedule's induced history.
    let schedule = problem.schedule(&report.bits).expect("feasible schedule decodes");
    let history = history_from_schedule(&txns, &schedule);
    println!(
        "\n## The chosen schedule's history is conflict-serializable: {}",
        history.is_conflict_serializable()
    );
}
