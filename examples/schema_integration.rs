//! Data integration: schema matching as a QUBO (Table I, [28]) — two
//! messy schemas matched by the quantum route, the exact matcher, and a
//! greedy baseline, scored against ground truth.
//!
//! ```text
//! cargo run --example schema_integration --release
//! ```

use qdm::prelude::*;
use qdm::problems::schema::{MatchingInstance, Schema as DbSchema};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(28);

    // A hand-written pair of schemas with the usual naming drift.
    let crm = DbSchema::new(&[
        ("customer_id", DataType::Number),
        ("email_address", DataType::Text),
        ("phone_number", DataType::Text),
        ("created_at", DataType::Date),
        ("total_amount", DataType::Number),
    ]);
    let warehouse = DbSchema::new(&[
        ("t_created_at", DataType::Date),
        ("customerid", DataType::Number),
        ("phonenumber", DataType::Text),
        ("emailaddr", DataType::Text),
        ("amount_total", DataType::Number),
        ("loading_batch", DataType::Text),
    ]);
    println!("## Schemas");
    println!("  CRM:       {:?}", crm.attributes.iter().map(|a| &a.name).collect::<Vec<_>>());
    println!("  Warehouse: {:?}", warehouse.attributes.iter().map(|a| &a.name).collect::<Vec<_>>());

    let inst = MatchingInstance::new(crm, warehouse);
    println!("\n## Similarity matrix (— marks type-incompatible pairs)");
    for (i, row) in inst.similarity.iter().enumerate() {
        let cells: Vec<String> =
            row.iter().map(|s| s.map_or("  —  ".to_string(), |v| format!("{v:.3}"))).collect();
        println!("  {} | {}", inst.source.attributes[i].name, cells.join("  "));
    }

    // Exact and greedy baselines.
    let (exact, exact_score) = inst.exact_matching();
    let (greedy, greedy_score) = inst.greedy_matching(0.25);
    println!("\n## Matchings");
    let render = |m: &[Option<usize>]| -> Vec<String> {
        m.iter()
            .enumerate()
            .map(|(i, j)| match j {
                Some(j) => format!(
                    "{} -> {}",
                    inst.source.attributes[i].name, inst.target.attributes[*j].name
                ),
                None => format!("{} -> (unmatched)", inst.source.attributes[i].name),
            })
            .collect()
    };
    println!("  exact   (score {exact_score:.3}): {:?}", render(&exact));
    println!("  greedy  (score {greedy_score:.3}): {:?}", render(&greedy));

    // The quantum route.
    let problem = SchemaMatchingProblem::new(inst.clone());
    let report = run_pipeline(
        &problem,
        &SaSolver::default(),
        &PipelineOptions { repair: true, ..Default::default() },
        &mut rng,
    );
    let matching = problem.matching(&report.bits).expect("feasible");
    println!("  QUBO+SA (score {:.3}): {:?}", -report.decoded.objective, render(&matching));

    // Synthetic benchmark with known ground truth.
    println!("\n## Seeded benchmark (8 attributes + 3 noise columns)");
    let (bench, truth) = generate_benchmark(8, 3, &mut rng);
    let bench_problem = SchemaMatchingProblem::new(bench);
    let report = run_pipeline(
        &bench_problem,
        &TabuSolver::default(),
        &PipelineOptions { repair: true, ..Default::default() },
        &mut rng,
    );
    let predicted = bench_problem.matching(&report.bits).expect("feasible");
    let (precision, recall) = precision_recall(&predicted, &truth);
    println!("  QUBO+tabu precision {precision:.2}, recall {recall:.2} ({} vars)", report.n_vars);
}
