//! The concurrent solver service end to end: a mixed batch of Table I
//! problems — MQO, join ordering, transaction scheduling — fanned out over
//! several Fig. 2 backends by the worker pool, resubmitted to show the
//! result cache serving repeats bit-identically, then driven through the
//! asynchronous session API (bounded-queue submission, per-job handles,
//! streaming completions in finish order). A later pass reads the
//! always-on tracing substrate back out: a per-stage time breakdown
//! aggregated from the span timelines, latency quantiles from the report
//! histograms, a `trace.json` Chrome trace-event export, and a sample of
//! the Prometheus text exposition.
//!
//! The final chaos pass arms a scripted `FaultPlan` — the `exact` backend
//! down for good, a presolve panic, an already-expired deadline — plus a
//! health probe reporting one cluster shard dead, and shows the runtime
//! absorbing all of it: retries with jittered backoff fall back to the
//! next-ranked backend, the circuit breaker stops re-probing the dead
//! one, the dead shard's keys fail over to healthy ring successors, and
//! the merged report prints the retry/breaker/failover counters.
//!
//! Run with: `cargo run --release --example solver_service`

use qdm::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

/// Health probe reporting one shard permanently dead.
struct DeadShard(usize);

impl HealthProbe for DeadShard {
    fn is_healthy(&self, shard: usize) -> bool {
        shard != self.0
    }
}

fn main() {
    let service = SolverService::new(ServiceConfig {
        workers: 4,
        cache_capacity: 1024,
        ..Default::default()
    });
    println!("solver service up: {} workers over {} backends\n", 4, service.registry().len());

    // --- Build the mixed workload: three problem families, seeded. -------
    let mut problems: Vec<(String, SharedProblem)> = Vec::new();
    for seed in 0..2u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = MqoInstance::generate(3, 2, 0.3, &mut rng);
        problems.push((format!("mqo-{seed}"), Arc::new(MqoProblem::new(inst))));

        let mut rng = StdRng::seed_from_u64(100 + seed);
        let graph = QueryGraph::generate_random(4, 0.3, &mut rng);
        problems.push((format!("join-{seed}"), Arc::new(JoinOrderProblem::left_deep(graph))));

        let mut rng = StdRng::seed_from_u64(200 + seed);
        let txns = random_workload(4, 3, 2, 0.5, &mut rng);
        let horizon = txns.iter().map(|t| t.duration).sum();
        problems.push((format!("txn-{seed}"), Arc::new(TxnScheduleProblem::new(txns, horizon))));
    }

    // Fan each problem out across three annealing/classical backends, plus
    // one auto-routed job that lets the portfolio scheduler decide.
    let backends = ["simulated-annealing", "simulated-quantum-annealing", "tabu"];
    let options = PipelineOptions { repair: true, ..Default::default() };
    let mut batch: Vec<JobSpec> = Vec::new();
    let mut labels: Vec<String> = Vec::new();
    for (i, (label, problem)) in problems.iter().enumerate() {
        for backend in backends {
            batch.push(
                JobSpec::new(Arc::clone(problem), 1000 + i as u64)
                    .with_options(options.clone())
                    .on_backend(backend),
            );
            labels.push(label.clone());
        }
        batch
            .push(JobSpec::new(Arc::clone(problem), 1000 + i as u64).with_options(options.clone()));
        labels.push(format!("{label} (auto)"));
    }

    // --- First pass: everything is a cache miss and actually solves. -----
    println!(
        "submitting {} jobs ({} problems x {} routes)...",
        batch.len(),
        problems.len(),
        backends.len() + 1
    );
    let first = service.run_batch(batch.clone());
    println!("{:<14} {:<28} {:>9} {:>10}  summary", "job", "backend", "energy", "feasible");
    for (label, outcome) in labels.iter().zip(&first) {
        let r = outcome.as_ref().expect("every job routes");
        let summary: String = r.report.decoded.summary.chars().take(34).collect();
        println!(
            "{:<14} {:<28} {:>9.3} {:>10}  {}",
            label, r.backend, r.report.energy, r.report.decoded.feasible, summary
        );
        assert!(!r.from_cache, "first pass must solve, not hit the cache");
    }

    // --- Second pass: the identical batch is served from the cache. ------
    println!("\nresubmitting the same batch...");
    let second = service.run_batch(batch);
    let mut hits = 0;
    for (a, b) in first.iter().zip(&second) {
        let a = a.as_ref().unwrap();
        let b = b.as_ref().unwrap();
        assert!(b.from_cache, "repeat submission must be a cache hit");
        assert_eq!(a.report.bits, b.report.bits, "cached result must be bit-identical");
        assert_eq!(a.report.energy, b.report.energy);
        hits += 1;
    }
    println!("{hits}/{} repeats served from cache, all bit-identical", second.len());

    // --- Third pass: compile-once portfolio races. ------------------------
    // Each job compiles its QUBO exactly once; the portfolio's top-3
    // backends race that single shared compilation on scoped threads, and
    // the deterministic winner (best energy, ties to the higher-ranked
    // backend) is returned, cached, and fed back into the scheduler.
    println!("\nracing the portfolio's top 3 backends on each problem...");
    let race_batch: Vec<JobSpec> = problems
        .iter()
        .enumerate()
        .map(|(i, (_, problem))| {
            JobSpec::new(Arc::clone(problem), 2000 + i as u64)
                .with_options(options.clone())
                .racing(3)
        })
        .collect();
    let raced = service.run_batch(race_batch.clone());
    for ((label, _), outcome) in problems.iter().zip(&raced) {
        let r = outcome.as_ref().expect("every race routes");
        assert!(!r.from_cache, "first race of each job must actually solve");
        println!("  {label:<10} won by {:<28} energy {:>9.3}", r.backend, r.report.energy);
    }
    let raced_again = service.run_batch(race_batch);
    for (a, b) in raced.iter().zip(&raced_again) {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        assert!(b.from_cache, "identical race jobs are cache hits");
        assert_eq!(a.report.bits, b.report.bits, "cached race result must be bit-identical");
    }
    println!(
        "  repeats: {}/{} served from cache, all bit-identical",
        raced_again.len(),
        raced.len()
    );

    // --- Fourth pass: the asynchronous session API. -----------------------
    // A bounded session queue (4 slots): `submit` blocks under backpressure
    // instead of buffering without limit, each job returns a handle, and
    // `completions()` streams results in finish order so decode work can
    // pipeline with solving.
    println!("\nasync session: resubmitting {} auto-routed jobs...", problems.len());
    let session = service.session(SessionConfig { queue_capacity: 4, ..Default::default() });
    let mut handles = Vec::new();
    for (i, (label, problem)) in problems.iter().enumerate() {
        let spec = JobSpec::new(Arc::clone(problem), 1000 + i as u64).with_options(options.clone());
        handles.push((label.clone(), session.submit(spec)));
    }
    let mut streamed = 0;
    for completion in session.completions() {
        let r = completion.outcome.expect("every job routes");
        streamed += 1;
        println!(
            "  finished #{streamed}: job {:>2} on {:<28} energy {:>9.3} (cache hit: {})",
            completion.id, r.backend, r.report.energy, r.from_cache
        );
    }
    assert_eq!(streamed, problems.len(), "the stream covers every submitted job");
    for (label, handle) in &handles {
        let r = handle.wait().expect("solvable");
        assert!(r.from_cache, "{label}: auto-routed resubmission must hit the cache");
    }

    // --- Fifth pass: thundering-herd suppression. -------------------------
    // Four copies of one brand-new job submitted at once: all four miss the
    // cache, but the single-flight table guarantees exactly one actually
    // compiles and solves — the duplicates either coalesce onto the leader
    // in flight or (if they arrive after it finished) hit the fresh cache
    // entry. Either way: one solve, four bit-identical answers.
    println!("\nsubmitting 4 concurrent copies of one new job...");
    let misses_before = service.report().cache_misses;
    let herd_problem = Arc::clone(&problems[0].1);
    let herd = service.session(SessionConfig { queue_capacity: 4, ..Default::default() });
    let herd_handles: Vec<_> = (0..4)
        .map(|_| {
            herd.submit(JobSpec::new(Arc::clone(&herd_problem), 9000).with_options(options.clone()))
        })
        .collect();
    let herd_results: Vec<_> =
        herd_handles.iter().map(|h| h.wait().expect("every copy resolves")).collect();
    for pair in herd_results.windows(2) {
        assert_eq!(pair[0].report.bits, pair[1].report.bits, "herd answers must be bit-identical");
    }
    let solves = service.report().cache_misses - misses_before;
    assert_eq!(solves, 1, "4 concurrent identical submissions, exactly 1 solve");
    println!(
        "  4 copies -> {} solve, {} coalesced in flight, {} served from cache, all bit-identical",
        solves,
        herd_results.iter().filter(|r| r.coalesced).count(),
        herd_results.iter().filter(|r| r.from_cache).count(),
    );

    // --- Telemetry. ------------------------------------------------------
    let report = service.report();
    println!("\n{report}");
    assert!(report.cache_hit_rate() > 0.0, "repeat batch must produce cache hits");
    assert!(report.per_backend.len() >= 3, "work must have been spread across at least 3 backends");
    assert_eq!(report.queue_depth, 0, "graceful teardown leaves no queued work");
    assert_eq!(report.race_jobs as usize, problems.len(), "one race per problem actually solved");
    assert!(!report.race_wins.is_empty(), "race wins are attributed per backend");
    assert!(
        report.compile_seconds_saved > 0.0,
        "compile-once sharing must be visible in the ledger"
    );

    // --- Observability: stage breakdown, quantiles, trace export. ---------
    // Tracing is on by default: every job above left a span timeline in the
    // service's ring buffer. Aggregate them into a per-stage time breakdown,
    // pull tail latencies straight from the report's histograms, and export
    // the whole timeline as Chrome trace-event JSON for about:tracing or
    // https://ui.perfetto.dev.
    let traces = service.traces();
    assert!(!traces.is_empty(), "default tracing must have recorded the jobs above");
    assert_eq!(report.traces_dropped, 0, "the default ring holds this workload without drops");
    let mut stage_ns: Vec<(&str, u64, u64)> = Vec::new();
    for trace in &traces {
        for span in &trace.spans {
            match stage_ns.iter_mut().find(|(name, ..)| *name == span.stage.name()) {
                Some((_, total, count)) => {
                    *total += span.duration_ns();
                    *count += 1;
                }
                None => stage_ns.push((span.stage.name(), span.duration_ns(), 1)),
            }
        }
    }
    println!("per-stage time across {} traced jobs:", traces.len());
    println!("  {:<10} {:>6} {:>12} {:>12}", "stage", "spans", "total ms", "mean µs");
    for (name, total, count) in &stage_ns {
        println!(
            "  {:<10} {:>6} {:>12.3} {:>12.1}",
            name,
            count,
            *total as f64 / 1e6,
            *total as f64 / 1e3 / *count as f64
        );
    }
    if let (Some(p50), Some(p99)) = (report.latency_quantile(0.5), report.latency_quantile(0.99)) {
        println!("solve latency: p50 <= {:.1} µs, p99 <= {:.1} µs", p50 * 1e6, p99 * 1e6);
    }
    if let Some(p99) = report.served_latency_quantile(0.99) {
        println!("served latency (incl. cache hits): p99 <= {:.1} µs", p99 * 1e6);
    }

    let trace_json = service.export_traces();
    // Build products belong under target/, not the repo root.
    let trace_path = std::path::Path::new("target").join("trace.json");
    std::fs::create_dir_all("target").expect("create target dir");
    std::fs::write(&trace_path, &trace_json).expect("write trace.json");
    println!(
        "wrote {} ({} events, {} bytes) - load it in about:tracing or ui.perfetto.dev",
        trace_path.display(),
        trace_json.matches("\"ph\":\"X\"").count(),
        trace_json.len()
    );

    let exposition = service.report().render_prometheus();
    let series = exposition.lines().filter(|l| !l.starts_with('#') && !l.is_empty()).count();
    println!("prometheus exposition: {series} samples, e.g.:");
    for line in exposition.lines().filter(|l| l.starts_with("qdm_jobs_")).take(3) {
        println!("  {line}");
    }

    // --- Cluster pass: sharded front-end with admission control. ----------
    // Four single-worker shards behind one session API. Jobs route by their
    // canonical QUBO fingerprint (duplicates stay cache-affine to one
    // shard), tenant "burst" is throttled by a token bucket while tenant
    // "steady" runs unlimited, and the merged report sums every shard's
    // ledger.
    // Admission buckets are denominated in *predicted seconds* of backend
    // time (the cost model's quote per job), not jobs: budget the 'burst'
    // tenant well below what its 12-job burst will be charged, quoting
    // the jobs the same way admission will (cheapest eligible backend's
    // analytic estimate — the cold-calibration quote).
    let quote_registry = SolverRegistry::standard();
    let quote = |p: &SharedProblem| {
        let n = p.n_vars();
        quote_registry
            .eligible(n)
            .into_iter()
            .map(|i| analytic_seconds(&quote_registry.get(i).spec, CostShape::from_n_vars(n)))
            .fold(f64::INFINITY, f64::min)
    };
    let burst_budget = problems.iter().cycle().take(12).map(|(_, p)| quote(p)).sum::<f64>() / 8.0;
    println!(
        "\ncluster: 4 shards, tenant 'burst' capped at {:.1} µs of predicted backend time...",
        burst_budget * 1e6
    );
    let cluster = ClusterService::new(ClusterConfig {
        shards: 4,
        service: ServiceConfig { workers: 1, cache_capacity: 256, ..Default::default() },
        admission: AdmissionConfig::default().with_tenant(
            "burst",
            TokenBucketConfig { capacity: burst_budget, refill_per_second: burst_budget / 8.0 },
        ),
        ..Default::default()
    });

    let steady =
        cluster.session("steady", SessionConfig { queue_capacity: 32, ..Default::default() });
    let mut steady_handles = Vec::new();
    for (i, (_, problem)) in problems.iter().enumerate() {
        let spec = JobSpec::new(Arc::clone(problem), 3000 + i as u64).with_options(options.clone());
        steady_handles.push(steady.submit(spec).expect("unlimited tenant is always admitted"));
    }

    let burst =
        cluster.session("burst", SessionConfig { queue_capacity: 32, ..Default::default() });
    let mut admitted = 0usize;
    let mut shed = 0usize;
    let mut first_hint = None;
    for (i, (_, problem)) in problems.iter().cycle().take(12).enumerate() {
        let spec = JobSpec::new(Arc::clone(problem), 4000 + i as u64).with_options(options.clone());
        match burst.submit(spec) {
            Ok(_) => admitted += 1,
            Err(err) => {
                shed += 1;
                first_hint.get_or_insert(err.retry_after_hint().expect("sheds carry a hint"));
            }
        }
    }
    println!(
        "  tenant 'burst': {admitted} admitted, {shed} shed (first retry hint: {:?})",
        first_hint.expect("a 12-job burst against a fractional-burst budget must shed")
    );
    // An oversized first job clamps its charge to the bucket capacity, so
    // at least one job is always admitted; the budget is an eighth of the
    // burst's total quote, so even a 4x-miscalibrated-cheap fleet still
    // overdraws it.
    assert!(admitted >= 1, "a full bucket always admits its first job");
    assert!(shed >= 1, "a 12-job burst against an eighth of its predicted cost must shed");

    for handle in &steady_handles {
        assert!(handle.wait().is_ok(), "throttling one tenant never fails another's jobs");
    }
    steady.drain();
    burst.drain();

    let merged = cluster.report();
    println!("\nmerged cluster report:\n{merged}");
    assert_eq!(merged.jobs_shed as usize, shed, "every shed is counted exactly once");
    assert_eq!(
        merged.jobs_completed as usize,
        problems.len() + admitted,
        "both tenants' admitted jobs all complete"
    );
    println!("  per-shard breakdown:");
    for report in cluster.shard_reports() {
        println!(
            "    shard {}: {} submitted, {} completed, {} admitted, {} shed",
            report.shard.expect("shard reports are tagged"),
            report.jobs_submitted,
            report.jobs_completed,
            report.jobs_admitted,
            report.jobs_shed
        );
    }
    let cluster_series = merged.render_prometheus();
    for line in cluster_series
        .lines()
        .filter(|l| l.starts_with("qdm_jobs_shed") || l.starts_with("qdm_jobs_admitted"))
    {
        println!("  {line}");
    }

    // --- Chaos pass: faults, retries, breakers, deadlines, failover. ------
    // A scripted fault plan kills the `exact` backend for good and panics
    // one presolve; retries with jittered backoff re-route every job to the
    // next-ranked backend and the circuit breaker stops re-probing the dead
    // one after its first failure. (The cost model already prices the
    // failure in — expected cost is divided by the observed success rate —
    // so routing stops *choosing* the dead backend after one failure; a
    // threshold-1 breaker turns that soft demotion into a hard exclusion.)
    // Every job still resolves.
    println!("\nchaos: 'exact' backend down, one presolve panic, retries + breaker armed...");
    let plan: Arc<dyn FaultInjector> = Arc::new(
        FaultPlan::new()
            .fail_backend(
                "exact",
                FaultWhen::Always,
                FaultAction::Error("chaos: exact down".into()),
            )
            .fail_at(
                FaultSite::Presolve,
                FaultWhen::Nth(2),
                FaultAction::Panic("chaos: presolve panic".into()),
            ),
    );
    let chaotic = SolverService::new(ServiceConfig {
        workers: 2,
        cache_capacity: 256,
        injector: Some(plan),
        retry: RetryPolicy {
            max_retries: 2,
            backoff_base: Duration::from_micros(200),
            backoff_cap: Duration::from_millis(2),
        },
        breaker: Some(BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::from_secs(60),
            ..Default::default()
        }),
        ..Default::default()
    });
    for (i, (label, problem)) in problems.iter().enumerate() {
        let r = chaotic
            .run(JobSpec::new(Arc::clone(problem), 5000 + i as u64).with_options(options.clone()))
            .expect("every job survives the chaos via retry and fallback");
        println!("  {label:<10} served by {:<28} energy {:>9.3}", r.backend, r.report.energy);
        assert_ne!(r.backend, "exact", "the dead backend can never serve a job");
    }
    let hopeless = chaotic.run(
        JobSpec::new(Arc::clone(&problems[0].1), 6000)
            .with_options(options.clone())
            .deadline(Duration::ZERO),
    );
    assert!(
        matches!(hopeless, Err(JobError::DeadlineExceeded { .. })),
        "an already-expired deadline fails fast instead of solving"
    );
    let chaos_report = chaotic.report();
    assert!(chaos_report.jobs_retried >= 1, "the dead backend must have cost at least one retry");
    assert!(chaos_report.breaker_opened >= 1, "the first failure must trip the breaker");
    assert_eq!(chaos_report.deadlines_exceeded, 1, "exactly one deadline miss was provoked");
    println!(
        "  survived: {} completed, {} retries paid ({} exhausted), breaker opened {}x, \
         {} deadline miss",
        chaos_report.jobs_completed,
        chaos_report.jobs_retried,
        chaos_report.retries_exhausted,
        chaos_report.breaker_opened,
        chaos_report.deadlines_exceeded,
    );
    for line in chaos_report.render_prometheus().lines().filter(|l| {
        l.starts_with("qdm_jobs_retried")
            || l.starts_with("qdm_breaker")
            || l.starts_with("qdm_deadlines")
    }) {
        println!("  {line}");
    }

    // Failover: kill the home shard of the first problem and push the whole
    // workload through the degraded cluster — its keys re-route to the next
    // healthy ring successor and nothing is lost.
    let (fp, _) = problems[0].1.to_qubo().canonical_form();
    let probe = ClusterService::new(ClusterConfig {
        shards: 4,
        service: ServiceConfig { workers: 1, cache_capacity: 64, ..Default::default() },
        ..Default::default()
    });
    let dead_shard = probe.shard_for_fingerprint(fp);
    drop(probe);
    println!("\nchaos: shard {dead_shard} reported dead, resubmitting the workload...");
    let degraded = ClusterService::new(ClusterConfig {
        shards: 4,
        service: ServiceConfig { workers: 1, cache_capacity: 64, ..Default::default() },
        health_probe: Some(Arc::new(DeadShard(dead_shard))),
        ..Default::default()
    });
    let chaos_session =
        degraded.session("chaos", SessionConfig { queue_capacity: 32, ..Default::default() });
    let chaos_handles: Vec<_> = problems
        .iter()
        .enumerate()
        .map(|(i, (_, problem))| {
            let spec =
                JobSpec::new(Arc::clone(problem), 7000 + i as u64).with_options(options.clone());
            chaos_session.submit(spec).expect("health routing never rejects a job")
        })
        .collect();
    for handle in &chaos_handles {
        assert!(handle.wait().is_ok(), "a dead shard loses no jobs");
    }
    chaos_session.drain();
    let degraded_report = degraded.report();
    assert_eq!(degraded_report.jobs_completed as usize, problems.len());
    assert!(degraded_report.failovers >= 1, "the dead shard's keys must have re-routed");
    println!(
        "  shard {dead_shard} dead: {}/{} jobs completed, {} submissions failed over, 0 lost",
        degraded_report.jobs_completed,
        problems.len(),
        degraded_report.failovers
    );
}
