//! The "quantum database" of Sec. III-A: Grover search, quantum set
//! operations, a quantum join, and insert/update/delete on a superposed
//! database state — each with its query-complexity accounting.
//!
//! ```text
//! cargo run --example quantum_database --release
//! ```

use qdm::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(19);

    // ------------------------------------------------------------------
    // 1. Search an unsorted 1024-record database.
    // ------------------------------------------------------------------
    println!("## Grover search, N = 1024");
    let db = QuantumDatabase::from_values((0..1024).map(|v| (v * 7919) % 1009).collect());
    let hits = db.matching_ids(|r| r.fields[0] == 500);
    println!("  records with value 500: {hits:?}");
    let report = db.search(|r| r.fields[0] == 500, &mut rng);
    println!(
        "  BBHT (unknown match count) found id {:?} with {} quantum queries",
        report.found, report.quantum_queries
    );
    let classical = db.classical_search(|r| r.fields[0] == 500);
    println!("  classical scan needed {} probes\n", classical.classical_probes);

    // ------------------------------------------------------------------
    // 2. Quantum set operations over membership oracles ([45]-[50]).
    // ------------------------------------------------------------------
    println!("## Quantum set operations over a 256-label universe");
    let in_a = |x: usize| x.is_multiple_of(17);
    let in_b = |x: usize| x.is_multiple_of(2);
    for (name, op) in [("A ∩ B", SetOp::Intersection), ("A \\ B", SetOp::Difference)] {
        let res = quantum_set_op(8, op, in_a, in_b, &mut rng);
        let (classical, probes) = classical_set_op(8, op, in_a, in_b);
        assert_eq!(res.elements, classical);
        println!(
            "  {name}: {:?} — {} quantum queries vs {} classical probes",
            res.elements, res.quantum_queries, probes
        );
    }

    // ------------------------------------------------------------------
    // 3. A quantum join ([45], [49], [50]).
    // ------------------------------------------------------------------
    println!("\n## Quantum equi-join (16 x 16 labels, sparse keys)");
    let left_key = |i: usize| if i == 11 { 77 } else { i as i64 };
    let right_key = |j: usize| if j == 3 { 77 } else { 1000 + j as i64 };
    let joined = quantum_join(4, 4, left_key, right_key, &mut rng);
    let (reference, probes) = nested_loop_join(4, 4, left_key, right_key);
    println!(
        "  matching pairs: {:?} (nested-loop agrees: {}) — {} quantum queries vs {} probes",
        joined.pairs,
        joined.pairs == reference,
        joined.quantum_queries,
        probes
    );

    // ------------------------------------------------------------------
    // 4. Manipulating a database held in superposition ([46], [49], [51]).
    // ------------------------------------------------------------------
    println!("\n## Superposed database manipulation");
    let mut sdb = SuperposedDatabase::new(4, &[2, 5, 11]);
    println!("  initial ids {:?}, P(5) = {:.4}", sdb.ids(), sdb.probability_of(5));
    sdb.insert(9).expect("insert");
    println!("  after insert(9): ids {:?}, P(9) = {:.4}", sdb.ids(), sdb.probability_of(9));
    sdb.update(5, 6).expect("update");
    println!("  after update(5 -> 6): ids {:?}", sdb.ids());
    sdb.delete(2).expect("delete");
    println!("  after delete(2): ids {:?}", sdb.ids());
    println!("  cumulative synthesis gate estimate: {}", sdb.gate_estimate);
    println!(
        "  sampling 5 retrievals: {:?}",
        (0..5).map(|_| sdb.sample(&mut rng)).collect::<Vec<_>>()
    );
    println!("  duplicate insert: {:?}", sdb.insert(9).expect_err("refused"));
}
