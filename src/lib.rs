//! # quantum-data-management (`qdm`)
//!
//! A from-scratch Rust reproduction of *"Quantum Data Management: From
//! Theory to Opportunities"* (Hai, Hung & Feld, ICDE 2024): the complete
//! stack the tutorial describes, from quantum simulators to QUBO
//! reformulations of database problems to quantum-internet data
//! management. See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! ## Crate map
//! | crate | contents |
//! |---|---|
//! | [`sim`] | gate-based state-vector simulator, noise, density matrices |
//! | [`qubo`] | QUBO/Ising models, penalties, exact solvers, presolve |
//! | [`anneal`] | simulated (quantum) annealing, tabu, Chimera embedding |
//! | [`db`] | query graphs, cost model, join optimizers, executor, transactions |
//! | [`algos`] | Grover/BBHT/Dürr–Høyer, QAOA, VQE, QFT/QPE, VQC |
//! | [`core`] | the Fig. 2 pipeline: `DmProblem` → QUBO → any solver |
//! | [`problems`] | Table I encodings: MQO, join ordering, schema matching, 2PL |
//! | [`qdb`] | Grover database search, quantum set ops/join, DB manipulation |
//! | [`net`] | quantum internet: links, repeaters, teleportation, CHSH/GHZ, BB84, no-cloning tables |
//! | [`runtime`] | concurrent solver service: job queue + worker pool, result cache, adaptive backend portfolio, telemetry |
//!
//! ## Quickstart
//! ```
//! use qdm::prelude::*;
//! use rand::SeedableRng;
//!
//! // The paper's Example II.1: a 50/50 superposition.
//! let mut psi = StateVector::new(1);
//! psi.apply_single(0, &gates::hadamard());
//! assert!((psi.probability(0) - 0.5).abs() < 1e-12);
//!
//! // The Fig. 2 roadmap: an MQO instance through the annealing route.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let instance = MqoInstance::generate(3, 2, 0.3, &mut rng);
//! let problem = MqoProblem::new(instance);
//! let report = run_pipeline(
//!     &problem,
//!     &SqaSolver::default(),
//!     &PipelineOptions { repair: true, ..Default::default() },
//!     &mut rng,
//! );
//! assert!(report.decoded.feasible);
//! ```

pub use qdm_algos as algos;
pub use qdm_anneal as anneal;
pub use qdm_core as core;
pub use qdm_db as db;
pub use qdm_net as net;
pub use qdm_problems as problems;
pub use qdm_qdb as qdb;
pub use qdm_qubo as qubo;
pub use qdm_runtime as runtime;
pub use qdm_sim as sim;

/// One-stop prelude combining the preludes of every crate in the workspace.
pub mod prelude {
    pub use qdm_algos::prelude::*;
    pub use qdm_anneal::prelude::*;
    pub use qdm_core::prelude::*;
    pub use qdm_db::prelude::*;
    pub use qdm_net::prelude::*;
    pub use qdm_problems::prelude::*;
    pub use qdm_qdb::prelude::*;
    pub use qdm_qubo::prelude::*;
    pub use qdm_runtime::prelude::*;
    pub use qdm_sim::prelude::*;
}
