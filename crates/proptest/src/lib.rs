//! # proptest (workspace shim)
//!
//! A minimal property-testing harness compatible with the subset of the
//! proptest API the workspace's tests use: the `proptest!` macro with an
//! optional `#![proptest_config(...)]` header, `prop_assert!`, `any::<T>()`,
//! range strategies, tuple strategies, `prop_map`, and
//! `proptest::collection::vec`. Differences from the real crate: cases are
//! drawn from a fixed deterministic seed sequence (so failures reproduce
//! exactly) and there is **no shrinking** — a failing case panics with its
//! case index via the standard assert message.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Random, RngExt, SampleRange, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u64,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u64) -> Self {
        Self { cases }
    }
}

/// Deterministic per-case generator: mixes the case index so every case gets
/// an independent, reproducible stream.
pub fn case_rng(case: u64) -> StdRng {
    StdRng::seed_from_u64(0x5DEE_CE66_D0C0_FFEE ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A value generator for one property argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform over the whole domain of `T`.
pub struct Any<T>(PhantomData<T>);

/// `any::<T>()`: uniform over the whole domain of `T`.
pub fn any<T: Random>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Random> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random()
    }
}

impl<T: Copy> Strategy for Range<T>
where
    Range<T>: SampleRange<T>,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.start..self.end)
    }
}

impl<T: Copy> Strategy for RangeInclusive<T>
where
    RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(*self.start()..=*self.end())
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng), self.3.generate(rng))
    }
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, len_range)`: vectors whose length is uniform in
    /// `len_range` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.start < self.size.end {
                rng.random_range(self.size.start..self.size.end)
            } else {
                self.size.start
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, case_rng, prop_assert, prop_assert_eq, proptest, Any, ProptestConfig, Strategy,
    };
}

/// Asserts inside a property; identical to `assert!` in this shim.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property; identical to `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares deterministic randomized property tests.
///
/// Supports the subset of the real macro's grammar the workspace uses:
/// an optional `#![proptest_config(expr)]` header followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: munches one test item at a time.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::case_rng(__case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                // One block per case; a panic carries the case index.
                let __run = || $body;
                __run();
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 0usize..10, y in -1.0f64..1.0, z in 2usize..=4) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y));
            prop_assert!((2..=4).contains(&z));
        }

        #[test]
        fn tuples_and_maps_compose(v in (1usize..4, 0.0f64..1.0).prop_map(|(n, w)| vec![w; n])) {
            prop_assert!(!v.is_empty() && v.len() < 4);
        }

        #[test]
        fn collection_vec_sizes(v in collection::vec(any::<u64>(), 0..8)) {
            prop_assert!(v.len() < 8);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::Strategy;
        let s = 0usize..1000;
        let a: Vec<usize> = (0..10).map(|c| s.generate(&mut crate::case_rng(c))).collect();
        let b: Vec<usize> = (0..10).map(|c| s.generate(&mut crate::case_rng(c))).collect();
        assert_eq!(a, b);
    }
}
