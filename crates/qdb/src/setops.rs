//! Quantum set operations — intersection, union, difference — over sets of
//! record labels, per the quantum-query-language line of work the paper
//! cites (\[45\]–\[50\], e.g. Salman & Baram's quantum set intersection).
//!
//! Sets are given as membership oracles; the composed predicate (AND / OR /
//! AND-NOT) is itself an oracle, so one Grover pass answers "is the result
//! non-empty?" and repeated exclusion search enumerates the result — with
//! the composed oracle still charging ONE query per iteration, which is
//! where the quantum advantage over evaluating both sets classically lives.

use qdm_algos::grover::{bbht_search, OracleCounter};
use rand::Rng;

/// Which set operation to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    /// `A ∩ B`.
    Intersection,
    /// `A ∪ B`.
    Union,
    /// `A \ B`.
    Difference,
}

/// Result of a quantum set operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetOpResult {
    /// Elements of the result set, ascending.
    pub elements: Vec<usize>,
    /// Composed-oracle queries in superposition.
    pub quantum_queries: u64,
    /// Classical verification probes.
    pub classical_probes: u64,
}

/// Evaluates a set operation over the `2^n` label universe by Grover
/// enumeration with exclusion.
pub fn quantum_set_op(
    n_qubits: usize,
    op: SetOp,
    in_a: impl Fn(usize) -> bool,
    in_b: impl Fn(usize) -> bool,
    rng: &mut impl Rng,
) -> SetOpResult {
    let composed = |x: usize| match op {
        SetOp::Intersection => in_a(x) && in_b(x),
        SetOp::Union => in_a(x) || in_b(x),
        SetOp::Difference => in_a(x) && !in_b(x),
    };
    let mut elements: Vec<usize> = Vec::new();
    let mut quantum = 0u64;
    let mut classical = 0u64;
    loop {
        let exclude = elements.clone();
        let mut oracle = OracleCounter::new(|x: usize| composed(x) && !exclude.contains(&x));
        let found = bbht_search(n_qubits, &mut oracle, rng);
        quantum += oracle.quantum_queries;
        classical += oracle.classical_queries;
        match found {
            Some(x) => elements.push(x),
            None => break,
        }
    }
    elements.sort_unstable();
    SetOpResult { elements, quantum_queries: quantum, classical_probes: classical }
}

/// Classical reference: evaluates the same operation by scanning the whole
/// label universe (`2^n` probes of each membership oracle).
pub fn classical_set_op(
    n_qubits: usize,
    op: SetOp,
    in_a: impl Fn(usize) -> bool,
    in_b: impl Fn(usize) -> bool,
) -> (Vec<usize>, u64) {
    let n = 1usize << n_qubits;
    let mut out = Vec::new();
    for x in 0..n {
        let keep = match op {
            SetOp::Intersection => in_a(x) && in_b(x),
            SetOp::Union => in_a(x) || in_b(x),
            SetOp::Difference => in_a(x) && !in_b(x),
        };
        if keep {
            out.push(x);
        }
    }
    (out, 2 * n as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const A: [usize; 5] = [1, 5, 9, 12, 30];
    const B: [usize; 4] = [5, 12, 17, 21];

    fn in_a(x: usize) -> bool {
        A.contains(&x)
    }
    fn in_b(x: usize) -> bool {
        B.contains(&x)
    }

    #[test]
    fn intersection_matches_classical() {
        let mut rng = StdRng::seed_from_u64(1);
        let q = quantum_set_op(5, SetOp::Intersection, in_a, in_b, &mut rng);
        let (c, _) = classical_set_op(5, SetOp::Intersection, in_a, in_b);
        assert_eq!(q.elements, c);
        assert_eq!(q.elements, vec![5, 12]);
    }

    #[test]
    fn union_matches_classical() {
        let mut rng = StdRng::seed_from_u64(2);
        let q = quantum_set_op(5, SetOp::Union, in_a, in_b, &mut rng);
        let (c, _) = classical_set_op(5, SetOp::Union, in_a, in_b);
        assert_eq!(q.elements, c);
        assert_eq!(q.elements.len(), 7);
    }

    #[test]
    fn difference_matches_classical() {
        let mut rng = StdRng::seed_from_u64(3);
        let q = quantum_set_op(5, SetOp::Difference, in_a, in_b, &mut rng);
        let (c, _) = classical_set_op(5, SetOp::Difference, in_a, in_b);
        assert_eq!(q.elements, c);
        assert_eq!(q.elements, vec![1, 9, 30]);
    }

    #[test]
    fn empty_intersection_terminates() {
        let mut rng = StdRng::seed_from_u64(4);
        let q = quantum_set_op(5, SetOp::Intersection, |x| x == 1, |x| x == 2, &mut rng);
        assert!(q.elements.is_empty());
        assert!(q.quantum_queries > 0);
    }

    #[test]
    fn sparse_result_uses_fewer_queries_than_classical_scan() {
        // 10-qubit universe (1024 labels), tiny result set.
        let mut rng = StdRng::seed_from_u64(5);
        let q = quantum_set_op(10, SetOp::Intersection, |x| x % 97 == 0, |x| x % 2 == 0, &mut rng);
        let (c, probes) =
            classical_set_op(10, SetOp::Intersection, |x| x % 97 == 0, |x| x % 2 == 0);
        assert_eq!(q.elements, c);
        assert!(
            q.quantum_queries < probes / 2,
            "quantum {} vs classical {probes}",
            q.quantum_queries
        );
    }
}
