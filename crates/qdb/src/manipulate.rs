//! Database manipulation operations on superposed quantum states —
//! insert / delete / update per Younes \[51\] and Gueddana et al. \[46\], \[49\].
//!
//! A [`SuperposedDatabase`] stores a set of record labels as the uniform
//! superposition `(1/sqrt(k)) sum_{id in D} |id>`. Manipulations are
//! non-unitary state *synthesis* steps (the cited works rebuild or
//! conditionally rotate the state); we track an elementary-gate estimate
//! for each operation so experiments can report manipulation costs.

use qdm_sim::complex::Complex64;
use qdm_sim::state::StateVector;
use rand::Rng;
use std::collections::BTreeSet;

/// Errors from database manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// The record is already present (insert) .
    AlreadyPresent(usize),
    /// The record is absent (delete/update).
    NotPresent(usize),
    /// Label outside the address space.
    OutOfRange(usize),
    /// Deleting the last record would leave a zero state.
    WouldBeEmpty,
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::AlreadyPresent(id) => write!(f, "record {id} already present"),
            DbError::NotPresent(id) => write!(f, "record {id} not present"),
            DbError::OutOfRange(id) => write!(f, "label {id} outside address space"),
            DbError::WouldBeEmpty => write!(f, "cannot delete the last record"),
        }
    }
}

impl std::error::Error for DbError {}

/// A database held as a uniform superposition over its record labels.
#[derive(Debug, Clone)]
pub struct SuperposedDatabase {
    n_qubits: usize,
    ids: BTreeSet<usize>,
    state: StateVector,
    /// Cumulative elementary-gate estimate of all manipulations so far.
    pub gate_estimate: u64,
}

impl SuperposedDatabase {
    /// Creates the superposition over the given (non-empty) label set.
    ///
    /// # Panics
    /// Panics if `ids` is empty or any label exceeds the address space.
    pub fn new(n_qubits: usize, ids: &[usize]) -> Self {
        assert!(!ids.is_empty(), "database must hold at least one record");
        let set: BTreeSet<usize> = ids.iter().copied().collect();
        let cap = 1usize << n_qubits;
        for &id in &set {
            assert!(id < cap, "label {id} out of range");
        }
        let mut db =
            Self { n_qubits, ids: set, state: StateVector::new(n_qubits), gate_estimate: 0 };
        db.resynthesize();
        // Initial load: one multi-controlled rotation per record (Younes-
        // style synthesis is linear in the records loaded).
        db.gate_estimate += db.ids.len() as u64 * db.rotation_cost();
        db
    }

    /// Cost model for one conditional load/unload: a multi-controlled
    /// rotation over n qubits decomposes into ~`2n` elementary gates.
    fn rotation_cost(&self) -> u64 {
        2 * self.n_qubits as u64
    }

    fn resynthesize(&mut self) {
        let len = 1usize << self.n_qubits;
        let amp = Complex64::real(1.0 / (self.ids.len() as f64).sqrt());
        let mut amps = vec![Complex64::default(); len];
        for &id in &self.ids {
            amps[id] = amp;
        }
        self.state =
            StateVector::from_amplitudes(amps).expect("uniform subset state is normalized");
    }

    /// Number of records present.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Always false (constructor requires one record, delete refuses to
    /// empty the set).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The stored labels, ascending.
    pub fn ids(&self) -> Vec<usize> {
        self.ids.iter().copied().collect()
    }

    /// Read-only view of the quantum state.
    pub fn state(&self) -> &StateVector {
        &self.state
    }

    /// Measurement probability of observing `id`.
    pub fn probability_of(&self, id: usize) -> f64 {
        self.state.probability(id)
    }

    /// Inserts a record label (Younes' insert: conditional rotation adding
    /// one branch to the superposition).
    pub fn insert(&mut self, id: usize) -> Result<(), DbError> {
        if id >= (1usize << self.n_qubits) {
            return Err(DbError::OutOfRange(id));
        }
        if !self.ids.insert(id) {
            return Err(DbError::AlreadyPresent(id));
        }
        self.gate_estimate += self.rotation_cost();
        self.resynthesize();
        Ok(())
    }

    /// Deletes a record label.
    pub fn delete(&mut self, id: usize) -> Result<(), DbError> {
        if !self.ids.contains(&id) {
            return Err(DbError::NotPresent(id));
        }
        if self.ids.len() == 1 {
            return Err(DbError::WouldBeEmpty);
        }
        self.ids.remove(&id);
        self.gate_estimate += self.rotation_cost();
        self.resynthesize();
        Ok(())
    }

    /// Updates a record label in place (a controlled permutation of basis
    /// states: X gates on differing bits, controlled on the old label).
    pub fn update(&mut self, old_id: usize, new_id: usize) -> Result<(), DbError> {
        if new_id >= (1usize << self.n_qubits) {
            return Err(DbError::OutOfRange(new_id));
        }
        if !self.ids.contains(&old_id) {
            return Err(DbError::NotPresent(old_id));
        }
        if self.ids.contains(&new_id) {
            return Err(DbError::AlreadyPresent(new_id));
        }
        self.ids.remove(&old_id);
        self.ids.insert(new_id);
        // Controlled bit-flip cost: one multi-controlled X per differing bit.
        let differing = (old_id ^ new_id).count_ones() as u64;
        self.gate_estimate += differing * self.rotation_cost();
        self.resynthesize();
        Ok(())
    }

    /// Samples one record label (the retrieval measurement).
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        self.state.sample_one(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_gives_uniform_superposition() {
        let db = SuperposedDatabase::new(4, &[1, 5, 9]);
        assert_eq!(db.len(), 3);
        for id in [1usize, 5, 9] {
            assert!((db.probability_of(id) - 1.0 / 3.0).abs() < 1e-12);
        }
        assert!(db.probability_of(0) < 1e-12);
        assert!((db.state().norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn insert_extends_superposition() {
        let mut db = SuperposedDatabase::new(3, &[0]);
        db.insert(6).expect("insert new");
        assert_eq!(db.ids(), vec![0, 6]);
        assert!((db.probability_of(6) - 0.5).abs() < 1e-12);
        assert_eq!(db.insert(6), Err(DbError::AlreadyPresent(6)));
        assert_eq!(db.insert(8), Err(DbError::OutOfRange(8)));
    }

    #[test]
    fn delete_shrinks_superposition() {
        let mut db = SuperposedDatabase::new(3, &[1, 2, 3]);
        db.delete(2).expect("delete present");
        assert_eq!(db.ids(), vec![1, 3]);
        assert!((db.probability_of(1) - 0.5).abs() < 1e-12);
        assert_eq!(db.delete(7), Err(DbError::NotPresent(7)));
        db.delete(1).expect("delete");
        assert_eq!(db.delete(3), Err(DbError::WouldBeEmpty));
    }

    #[test]
    fn update_moves_amplitude() {
        let mut db = SuperposedDatabase::new(4, &[2, 10]);
        db.update(2, 7).expect("update");
        assert_eq!(db.ids(), vec![7, 10]);
        assert!((db.probability_of(7) - 0.5).abs() < 1e-12);
        assert!(db.probability_of(2) < 1e-12);
        assert_eq!(db.update(3, 4), Err(DbError::NotPresent(3)));
        assert_eq!(db.update(7, 10), Err(DbError::AlreadyPresent(10)));
    }

    #[test]
    fn gate_estimate_grows_with_operations() {
        let mut db = SuperposedDatabase::new(4, &[0, 1]);
        let initial = db.gate_estimate;
        db.insert(9).expect("insert");
        let after_insert = db.gate_estimate;
        assert!(after_insert > initial);
        db.update(9, 12).expect("update");
        assert!(db.gate_estimate > after_insert);
    }

    #[test]
    fn sampling_returns_only_present_records() {
        let mut rng = StdRng::seed_from_u64(8);
        let db = SuperposedDatabase::new(4, &[3, 11, 14]);
        for _ in 0..50 {
            let s = db.sample(&mut rng);
            assert!([3, 11, 14].contains(&s));
        }
    }
}
