//! Quantum join: Grover search over the concatenated index registers of
//! two relations, per the quantum query-language works (\[45\], \[49\], \[50\]).
//!
//! A pair register `|j>|i>` spans `n1 + n2` qubits; the join oracle marks
//! pairs whose keys match. Grover enumeration finds all matching pairs in
//! `O(sqrt(N1*N2 / M))` oracle queries per pair — compared with the
//! `N1*N2` probes of a classical nested-loop join over opaque oracles.

use qdm_algos::grover::{bbht_search, OracleCounter};
use rand::Rng;

/// Result of a quantum join.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinResult {
    /// Matching `(left_id, right_id)` pairs, ascending.
    pub pairs: Vec<(usize, usize)>,
    /// Join-oracle queries in superposition.
    pub quantum_queries: u64,
    /// Classical verification probes.
    pub classical_probes: u64,
}

/// Equi-joins two relations given by key lookup functions over label
/// spaces `2^n1` and `2^n2`.
pub fn quantum_join(
    n1_qubits: usize,
    n2_qubits: usize,
    left_key: impl Fn(usize) -> i64,
    right_key: impl Fn(usize) -> i64,
    rng: &mut impl Rng,
) -> JoinResult {
    let n = n1_qubits + n2_qubits;
    let mask1 = (1usize << n1_qubits) - 1;
    let decode = |x: usize| (x & mask1, x >> n1_qubits);
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let mut quantum = 0u64;
    let mut classical = 0u64;
    loop {
        let exclude: Vec<usize> = pairs.iter().map(|&(i, j)| i | (j << n1_qubits)).collect();
        let mut oracle = OracleCounter::new(|x: usize| {
            let (i, j) = decode(x);
            left_key(i) == right_key(j) && !exclude.contains(&x)
        });
        let found = bbht_search(n, &mut oracle, rng);
        quantum += oracle.quantum_queries;
        classical += oracle.classical_queries;
        match found {
            Some(x) => pairs.push(decode(x)),
            None => break,
        }
    }
    pairs.sort_unstable();
    JoinResult { pairs, quantum_queries: quantum, classical_probes: classical }
}

/// Classical nested-loop join over the same oracles: `N1 * N2` key probes.
pub fn nested_loop_join(
    n1_qubits: usize,
    n2_qubits: usize,
    left_key: impl Fn(usize) -> i64,
    right_key: impl Fn(usize) -> i64,
) -> (Vec<(usize, usize)>, u64) {
    let (n1, n2) = (1usize << n1_qubits, 1usize << n2_qubits);
    let mut pairs = Vec::new();
    let mut probes = 0u64;
    for i in 0..n1 {
        for j in 0..n2 {
            probes += 2;
            if left_key(i) == right_key(j) {
                pairs.push((i, j));
            }
        }
    }
    (pairs, probes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lk(i: usize) -> i64 {
        (i % 8) as i64
    }
    fn rk(j: usize) -> i64 {
        (j % 16) as i64
    }

    #[test]
    fn quantum_join_matches_nested_loop() {
        let mut rng = StdRng::seed_from_u64(1);
        let q = quantum_join(4, 3, |i| (i % 5) as i64, |j| (j % 3) as i64, &mut rng);
        let (c, _) = nested_loop_join(4, 3, |i| (i % 5) as i64, |j| (j % 3) as i64);
        assert_eq!(q.pairs, c);
    }

    #[test]
    fn empty_join_result() {
        let mut rng = StdRng::seed_from_u64(2);
        let q = quantum_join(3, 3, |_| 1, |_| 2, &mut rng);
        assert!(q.pairs.is_empty());
    }

    #[test]
    fn selective_join_uses_fewer_oracle_queries() {
        // 5+5 qubit pair space = 1024 pairs, single match.
        let mut rng = StdRng::seed_from_u64(3);
        let q = quantum_join(
            5,
            5,
            |i| if i == 13 { 42 } else { i as i64 },
            |j| if j == 7 { 42 } else { -(j as i64) - 1 },
            &mut rng,
        );
        assert_eq!(q.pairs, vec![(13, 7)]);
        let (_, probes) = nested_loop_join(
            5,
            5,
            |i| if i == 13 { 42 } else { i as i64 },
            |j| if j == 7 { 42 } else { -(j as i64) - 1 },
        );
        assert!(
            q.quantum_queries < probes / 4,
            "quantum {} vs nested loop {probes}",
            q.quantum_queries
        );
    }

    #[test]
    fn many_to_many_join() {
        let mut rng = StdRng::seed_from_u64(4);
        let q = quantum_join(3, 4, lk, rk, &mut rng);
        let (c, _) = nested_loop_join(3, 4, lk, rk);
        assert_eq!(q.pairs, c);
        assert!(!q.pairs.is_empty());
    }
}
