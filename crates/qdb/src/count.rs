//! Quantum cardinality estimation — a "database problem reformulation"
//! opportunity in the spirit of Sec. III-C.1: the paper's Fig. 2 lists QPE
//! as an available algorithm box without a database application; quantum
//! counting (QPE over the Grover iterate) *is* one — selectivity
//! estimation, the quantity every cost-based optimizer in `qdm-db` runs on.

use crate::search::{QuantumDatabase, Record};
use qdm_algos::counting::{quantum_count_median, CountEstimate};
use rand::Rng;

/// A selectivity estimate for a predicate over a quantum database.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectivityEstimate {
    /// Estimated fraction of records satisfying the predicate, in `[0, 1]`.
    pub selectivity: f64,
    /// Estimated matching-record count.
    pub cardinality: f64,
    /// Underlying counting telemetry.
    pub counting: CountEstimate,
}

impl QuantumDatabase {
    /// Estimates the cardinality of a predicate by quantum counting with
    /// `t_bits` of precision and a median over `runs` repetitions.
    pub fn estimate_cardinality(
        &self,
        pred: impl Fn(&Record) -> bool,
        t_bits: usize,
        runs: usize,
        rng: &mut impl Rng,
    ) -> SelectivityEstimate {
        let counting =
            quantum_count_median(self.n_qubits(), t_bits, runs, |x| pred(self.record(x)), rng);
        SelectivityEstimate {
            selectivity: counting.estimate / self.len() as f64,
            cardinality: counting.estimate,
            counting,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn estimates_match_ground_truth_within_tolerance() {
        let mut rng = StdRng::seed_from_u64(1);
        let db = QuantumDatabase::from_values((0..256).map(|v| v % 10).collect());
        let truth = db.matching_ids(|r| r.fields[0] == 3).len() as f64;
        let est = db.estimate_cardinality(|r| r.fields[0] == 3, 7, 7, &mut rng);
        assert!(
            (est.cardinality - truth).abs() <= 4.0,
            "estimated {} vs true {truth}",
            est.cardinality
        );
        assert!((est.selectivity - truth / 256.0).abs() < 0.02);
    }

    #[test]
    fn estimation_is_cheaper_than_exact_scan_at_scale() {
        let mut rng = StdRng::seed_from_u64(2);
        let db = QuantumDatabase::from_values((0..4096).map(|v| v % 7).collect());
        let est = db.estimate_cardinality(|r| r.fields[0] == 0, 8, 1, &mut rng);
        assert!(est.counting.grover_applications < est.counting.classical_probes / 8);
    }

    #[test]
    fn empty_and_universal_predicates() {
        let mut rng = StdRng::seed_from_u64(3);
        let db = QuantumDatabase::from_values((0..64).collect());
        let none = db.estimate_cardinality(|_| false, 6, 3, &mut rng);
        assert!(none.cardinality.abs() < 1e-9);
        let all = db.estimate_cardinality(|_| true, 6, 3, &mut rng);
        assert!((all.selectivity - 1.0).abs() < 1e-9);
    }
}
