//! # qdm-qdb — the quantum database layer (Sec. III-A)
//!
//! "A 'quantum database' is a conceptual framework for processing and
//! searching data using quantum algorithms." This crate builds that
//! framework over `qdm-sim`/`qdm-algos`:
//!
//! - [`search`] — the N = 2^n record model with Grover / BBHT search and
//!   the oracle-query accounting behind the O(sqrt(N)) vs O(N) claim;
//! - [`setops`] — quantum set intersection / union / difference via
//!   composed membership oracles (\[45\]–\[50\]);
//! - [`join`] — equi-joins by Grover search over concatenated index
//!   registers;
//! - [`manipulate`] — insert / update / delete on superposed database
//!   states with elementary-gate cost estimates (\[46\], \[49\], \[51\]).

#![warn(missing_docs)]

pub mod count;
pub mod join;
pub mod manipulate;
pub mod search;
pub mod setops;

/// Convenient re-exports of the most used items.
pub mod prelude {
    pub use crate::count::SelectivityEstimate;
    pub use crate::join::{nested_loop_join, quantum_join, JoinResult};
    pub use crate::manipulate::{DbError, SuperposedDatabase};
    pub use crate::search::{QuantumDatabase, Record, SearchReport};
    pub use crate::setops::{classical_set_op, quantum_set_op, SetOp, SetOpResult};
}

pub use prelude::*;
