//! The "quantum database" of Sec. III-A: N = 2^n records addressed by an
//! n-bit label, searched by Grover-family algorithms with query-complexity
//! accounting against classical scans.

use qdm_algos::grover::{
    bbht_search, classical_linear_search, grover_search, optimal_iterations, OracleCounter,
};
use rand::Rng;

/// A stored record: an id (its n-bit label) plus integer fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// The record's n-bit label.
    pub id: usize,
    /// Attribute values.
    pub fields: Vec<i64>,
}

/// An unsorted database of `2^n` records, searchable in superposition.
#[derive(Debug, Clone)]
pub struct QuantumDatabase {
    n_qubits: usize,
    records: Vec<Record>,
}

/// Outcome of one search, with the query accounting of Sec. III-A.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchReport {
    /// The matching record id, if one was found.
    pub found: Option<usize>,
    /// Oracle queries made in superposition (Grover iterations).
    pub quantum_queries: u64,
    /// Classical per-record probes (verification included).
    pub classical_probes: u64,
}

impl QuantumDatabase {
    /// Builds a database; the record count must be a power of two and ids
    /// must equal positions (the n-bit label addressing of Sec. III-A).
    ///
    /// # Panics
    /// Panics if the length is not a power of two or ids are misnumbered.
    pub fn new(records: Vec<Record>) -> Self {
        assert!(
            !records.is_empty() && records.len().is_power_of_two(),
            "record count must be a power of two"
        );
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.id, i, "record ids must match their position");
        }
        Self { n_qubits: records.len().trailing_zeros() as usize, records }
    }

    /// A database of single-field records from raw values.
    pub fn from_values(values: Vec<i64>) -> Self {
        Self::new(
            values.into_iter().enumerate().map(|(id, v)| Record { id, fields: vec![v] }).collect(),
        )
    }

    /// Number of address qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of records (`2^n`).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Never true: the constructor requires at least one record.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Record access.
    pub fn record(&self, id: usize) -> &Record {
        &self.records[id]
    }

    /// All record ids satisfying a predicate (ground truth; not counted).
    pub fn matching_ids(&self, pred: impl Fn(&Record) -> bool) -> Vec<usize> {
        self.records.iter().filter(|r| pred(r)).map(|r| r.id).collect()
    }

    /// Grover search with a *known* number of matches: optimal iteration
    /// count, one measurement.
    pub fn search_known(
        &self,
        pred: impl Fn(&Record) -> bool,
        n_matches: usize,
        rng: &mut impl Rng,
    ) -> SearchReport {
        let records = &self.records;
        let mut oracle = OracleCounter::new(move |x: usize| pred(&records[x]));
        let found = grover_search(self.n_qubits, n_matches, &mut oracle, rng);
        SearchReport {
            found,
            quantum_queries: oracle.quantum_queries,
            classical_probes: oracle.classical_queries,
        }
    }

    /// BBHT search with an *unknown* number of matches.
    pub fn search(&self, pred: impl Fn(&Record) -> bool, rng: &mut impl Rng) -> SearchReport {
        let records = &self.records;
        let mut oracle = OracleCounter::new(move |x: usize| pred(&records[x]));
        let found = bbht_search(self.n_qubits, &mut oracle, rng);
        SearchReport {
            found,
            quantum_queries: oracle.quantum_queries,
            classical_probes: oracle.classical_queries,
        }
    }

    /// Enumerates *all* matches by repeated BBHT searches that exclude
    /// already-found ids — the standard "collect all solutions" loop.
    pub fn enumerate(
        &self,
        pred: impl Fn(&Record) -> bool,
        rng: &mut impl Rng,
    ) -> (Vec<usize>, SearchReport) {
        let records = &self.records;
        let mut found: Vec<usize> = Vec::new();
        let mut quantum = 0u64;
        let mut classical = 0u64;
        loop {
            let exclude = found.clone();
            let mut oracle =
                OracleCounter::new(|x: usize| pred(&records[x]) && !exclude.contains(&x));
            match bbht_search(self.n_qubits, &mut oracle, rng) {
                Some(id) => {
                    quantum += oracle.quantum_queries;
                    classical += oracle.classical_queries;
                    found.push(id);
                }
                None => {
                    quantum += oracle.quantum_queries;
                    classical += oracle.classical_queries;
                    break;
                }
            }
        }
        found.sort_unstable();
        let report = SearchReport {
            found: found.first().copied(),
            quantum_queries: quantum,
            classical_probes: classical,
        };
        (found, report)
    }

    /// Classical linear scan baseline (first match).
    pub fn classical_search(&self, pred: impl Fn(&Record) -> bool) -> SearchReport {
        let records = &self.records;
        let mut oracle = OracleCounter::new(move |x: usize| pred(&records[x]));
        let found = classical_linear_search(self.len(), &mut oracle);
        SearchReport { found, quantum_queries: 0, classical_probes: oracle.classical_queries }
    }

    /// The theoretical optimal Grover iteration count for `m` matches.
    pub fn theoretical_iterations(&self, m: usize) -> usize {
        optimal_iterations(self.len(), m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn db(n_qubits: usize) -> QuantumDatabase {
        QuantumDatabase::from_values((0..(1i64 << n_qubits)).map(|v| v * 3 % 17).collect())
    }

    #[test]
    fn construction_validates_shape() {
        assert!(std::panic::catch_unwind(|| QuantumDatabase::from_values(vec![1, 2, 3])).is_err());
        let d = db(4);
        assert_eq!(d.len(), 16);
        assert_eq!(d.n_qubits(), 4);
    }

    #[test]
    fn known_count_search_finds_unique_match() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = db(6);
        let target = d.record(37).fields[0];
        let matches = d.matching_ids(|r| r.fields[0] == target && r.id == 37);
        assert_eq!(matches, vec![37]);
        let report = d.search_known(|r| r.fields[0] == target && r.id == 37, 1, &mut rng);
        assert_eq!(report.found, Some(37));
        assert!(report.quantum_queries <= d.theoretical_iterations(1) as u64);
    }

    #[test]
    fn quantum_beats_classical_on_queries() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = db(8); // 256 records
                       // A unique late record so the classical scan pays ~N.
        let report_q = d.search_known(|r| r.id == 251, 1, &mut rng);
        let report_c = d.classical_search(|r| r.id == 251);
        assert_eq!(report_q.found, Some(251));
        assert_eq!(report_c.found, Some(251));
        assert!(
            report_q.quantum_queries < report_c.classical_probes / 4,
            "quantum {} vs classical {}",
            report_q.quantum_queries,
            report_c.classical_probes
        );
    }

    #[test]
    fn bbht_search_without_match_count() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = db(7);
        let report = d.search(|r| r.fields[0] == 5, &mut rng);
        let id = report.found.expect("matches exist");
        assert_eq!(d.record(id).fields[0], 5);
    }

    #[test]
    fn enumerate_collects_every_match() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = db(6);
        let truth = d.matching_ids(|r| r.fields[0] == 6);
        let (found, report) = d.enumerate(|r| r.fields[0] == 6, &mut rng);
        assert_eq!(found, truth);
        assert!(report.quantum_queries > 0);
    }

    #[test]
    fn search_for_nothing_returns_none() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = db(5);
        let report = d.search(|r| r.fields[0] == 999, &mut rng);
        assert_eq!(report.found, None);
    }
}
