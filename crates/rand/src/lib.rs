//! # rand (workspace shim)
//!
//! A minimal, dependency-free, fully deterministic reimplementation of the
//! `rand` API surface used by this workspace. The build environment has no
//! access to crates.io, so the workspace vendors its own generator instead:
//! [`rngs::StdRng`] is xoshiro256++ seeded via SplitMix64, which passes the
//! usual statistical smoke tests and — more importantly for this repo —
//! guarantees bit-identical streams across platforms and runs for the same
//! `seed_from_u64` seed. Every experiment and test in the workspace relies on
//! that reproducibility contract.
//!
//! Exposed surface (matching the call sites across the workspace):
//!
//! - `rand::rngs::StdRng` + [`SeedableRng::seed_from_u64`];
//! - [`RngExt::random::<T>()`](RngExt::random) for `bool`, floats, ints;
//! - [`RngExt::random_range(a..b)`](RngExt::random_range) for int and float
//!   ranges (half-open and inclusive);
//! - `Rng` as an alias of [`RngExt`] so both import styles work.

#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// A source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// The generator's resumable internal state, if it exposes one.
    /// [`rngs::StdRng`] answers its four xoshiro256++ words (see
    /// [`rngs::StdRng::state`]); the default answers `None`, which lets
    /// generic solver loops offer checkpoint/resume without constraining
    /// the RNG type they accept.
    fn checkpoint_state(&self) -> Option<[u64; 4]> {
        None
    }
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a generator.
pub trait Random: Sized {
    /// Draws a uniform value.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Convenience methods available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// Draws a uniform value of type `T`.
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random_from(self)
    }

    /// Draws a uniform value from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore> RngExt for R {}

/// The historical name for the extension trait; same trait, either import
/// style (`use rand::Rng;` or `use rand::RngExt;`) works.
pub use RngExt as Rng;

impl Random for bool {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Random for f64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! int_random {
    ($($t:ty),* $(,)?) => {$(
        impl Random for $t {
            fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_random!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! int_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                let span = (e as i128 - s as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (s as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = Random::random_from(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                let unit: $t = Random::random_from(rng);
                s + (e - s) * unit
            }
        }
    )*};
}
float_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman & Vigna),
    /// seeded through SplitMix64. Deterministic across platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut state);
            }
            // All-zero state is the one invalid xoshiro state.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl StdRng {
        /// The generator's full internal state — four xoshiro256++ words.
        /// Together with [`StdRng::from_state`] this makes the stream
        /// checkpointable: capture the state at any draw boundary, later
        /// rebuild a generator that continues the exact same stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by [`StdRng::state`].
        /// The new generator produces the identical continuation of the
        /// captured stream. An all-zero state (invalid for xoshiro) is
        /// remapped the same way seeding does.
        pub fn from_state(s: [u64; 4]) -> Self {
            let mut s = s;
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn checkpoint_state(&self) -> Option<[u64; 4]> {
            Some(self.s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = <StdRng as SeedableRng>::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn state_roundtrip_continues_the_stream() {
        let mut a = StdRng::seed_from_u64(99);
        for _ in 0..17 {
            a.random::<u64>();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        // The all-zero state (invalid for xoshiro: it would emit zeros
        // forever) is remapped, not accepted verbatim.
        let mut z = StdRng::from_state([0; 4]);
        assert!((0..4).any(|_| z.random::<u64>() != 0));
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.random::<u64>() == b.random::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_floats_are_in_range_and_cover() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            lo |= x < 0.1;
            hi |= x > 0.9;
        }
        assert!(lo && hi, "both tails should be hit in 10k draws");
    }

    #[test]
    fn int_ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let mut seen_incl = [false; 4];
        for _ in 0..1_000 {
            seen_incl[rng.random_range(0..=3usize)] = true;
        }
        assert!(seen_incl.iter().all(|&s| s));
    }

    #[test]
    fn negative_int_ranges_work() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1_000 {
            let v: i64 = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn float_ranges_scale() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..1_000 {
            let v = rng.random_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&v));
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(17);
        let heads = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_000..6_000).contains(&heads), "heads: {heads}");
    }
}
