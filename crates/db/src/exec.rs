//! A miniature in-memory execution engine.
//!
//! Join *plans* are only half the story: to validate that every join order
//! produces the same answer (and to give the examples something real to
//! run), this module provides a small row-store with hash joins, filters and
//! projections, plus a generator that materializes a database consistent
//! with a [`QueryGraph`]'s statistics.

use crate::plan::JoinTree;
use crate::query::QueryGraph;
use rand::Rng;
use std::collections::HashMap;

/// A cell value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// UTF-8 string.
    Str(String),
}

/// A named, typed-by-convention column list.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    /// Column names, qualified as `r{rel}.{col}`.
    pub columns: Vec<String>,
}

impl Schema {
    /// Index of a column by exact name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }
}

/// An in-memory table: schema plus row-major tuples.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    /// Table name.
    pub name: String,
    /// Column layout.
    pub schema: Schema,
    /// Tuples.
    pub rows: Vec<Vec<Value>>,
}

impl Table {
    /// Number of tuples.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Selection: keeps rows satisfying the predicate.
    pub fn filter(&self, pred: impl Fn(&[Value]) -> bool) -> Table {
        Table {
            name: format!("sigma({})", self.name),
            schema: self.schema.clone(),
            rows: self.rows.iter().filter(|r| pred(r)).cloned().collect(),
        }
    }

    /// Projection onto the listed column indices.
    ///
    /// # Panics
    /// Panics if an index is out of range.
    pub fn project(&self, cols: &[usize]) -> Table {
        let schema =
            Schema { columns: cols.iter().map(|&c| self.schema.columns[c].clone()).collect() };
        Table {
            name: format!("pi({})", self.name),
            schema,
            rows: self.rows.iter().map(|r| cols.iter().map(|&c| r[c].clone()).collect()).collect(),
        }
    }

    /// A canonical multiset fingerprint of the rows (sorted row list), used
    /// to check plan equivalence irrespective of column order.
    pub fn row_multiset(&self) -> Vec<Vec<Value>> {
        let mut sorted_cols: Vec<usize> = (0..self.schema.columns.len()).collect();
        sorted_cols.sort_by(|&a, &b| self.schema.columns[a].cmp(&self.schema.columns[b]));
        let mut rows: Vec<Vec<Value>> =
            self.rows.iter().map(|r| sorted_cols.iter().map(|&c| r[c].clone()).collect()).collect();
        rows.sort();
        rows
    }
}

/// Hash equi-join of two tables on `left.columns[lc] == right.columns[rc]`.
/// The output schema concatenates both inputs.
pub fn hash_join(left: &Table, right: &Table, lc: usize, rc: usize) -> Table {
    let mut index: HashMap<&Value, Vec<usize>> = HashMap::new();
    for (i, row) in left.rows.iter().enumerate() {
        index.entry(&row[lc]).or_default().push(i);
    }
    let mut rows = Vec::new();
    for rrow in &right.rows {
        if let Some(matches) = index.get(&rrow[rc]) {
            for &li in matches {
                let mut out = left.rows[li].clone();
                out.extend(rrow.iter().cloned());
                rows.push(out);
            }
        }
    }
    let mut columns = left.schema.columns.clone();
    columns.extend(right.schema.columns.iter().cloned());
    Table { name: format!("({} ⋈ {})", left.name, right.name), schema: Schema { columns }, rows }
}

/// Cross product (used when a join tree pairs disconnected subtrees).
pub fn cross_product(left: &Table, right: &Table) -> Table {
    let mut rows = Vec::with_capacity(left.n_rows() * right.n_rows());
    for lrow in &left.rows {
        for rrow in &right.rows {
            let mut out = lrow.clone();
            out.extend(rrow.iter().cloned());
            rows.push(out);
        }
    }
    let mut columns = left.schema.columns.clone();
    columns.extend(right.schema.columns.iter().cloned());
    Table { name: format!("({} × {})", left.name, right.name), schema: Schema { columns }, rows }
}

/// A database materialized for a query graph: `tables[r]` backs relation `r`.
#[derive(Debug, Clone)]
pub struct Database {
    /// One table per relation.
    pub tables: Vec<Table>,
}

/// Materializes a database consistent with the *shape* of a query graph.
///
/// Relation `r` gets `min(cardinality, max_rows)` tuples with a row id and,
/// for every incident join edge `e`, a join-key column `k{e}` drawn
/// uniformly from `0..key_domain` — so the expected selectivity of each
/// predicate is `1/key_domain`.
pub fn generate_database(
    graph: &QueryGraph,
    max_rows: usize,
    key_domain: u32,
    rng: &mut impl Rng,
) -> Database {
    let mut tables = Vec::with_capacity(graph.n_relations());
    for r in 0..graph.n_relations() {
        let n_rows = (graph.cardinalities[r] as usize).min(max_rows).max(1);
        let incident: Vec<usize> = graph
            .edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.a == r || e.b == r)
            .map(|(i, _)| i)
            .collect();
        let mut columns = vec![format!("r{r}.id")];
        columns.extend(incident.iter().map(|e| format!("r{r}.k{e}")));
        let rows = (0..n_rows)
            .map(|i| {
                let mut row = vec![Value::Int(i as i64)];
                row.extend(
                    incident.iter().map(|_| Value::Int(rng.random_range(0..key_domain) as i64)),
                );
                row
            })
            .collect();
        tables.push(Table { name: format!("R{r}"), schema: Schema { columns }, rows });
    }
    Database { tables }
}

/// Executes a join tree against a database, applying every query-graph
/// predicate whose endpoints span the join — the first as a hash join, the
/// rest as residual filters.
pub fn execute(tree: &JoinTree, db: &Database, graph: &QueryGraph) -> Table {
    match tree {
        JoinTree::Leaf(r) => db.tables[*r].clone(),
        JoinTree::Join(l, r) => {
            let lt = execute(l, db, graph);
            let rt = execute(r, db, graph);
            let (lmask, rmask) = (l.relation_mask(), r.relation_mask());
            // Predicates crossing the join frontier.
            let crossing: Vec<(usize, usize, usize)> = graph
                .edges
                .iter()
                .enumerate()
                .filter_map(|(ei, e)| {
                    let (ba, bb) = (1u64 << e.a, 1u64 << e.b);
                    if lmask & ba != 0 && rmask & bb != 0 {
                        Some((ei, e.a, e.b))
                    } else if lmask & bb != 0 && rmask & ba != 0 {
                        Some((ei, e.b, e.a))
                    } else {
                        None
                    }
                })
                .collect();
            let Some(&(e0, la, rb)) = crossing.first() else {
                return cross_product(&lt, &rt);
            };
            let lc = lt.schema.column_index(&format!("r{la}.k{e0}")).expect("left join key exists");
            let rc =
                rt.schema.column_index(&format!("r{rb}.k{e0}")).expect("right join key exists");
            let mut joined = hash_join(&lt, &rt, lc, rc);
            // Residual predicates.
            for &(ei, a, b) in &crossing[1..] {
                let ca =
                    joined.schema.column_index(&format!("r{a}.k{ei}")).expect("residual key a");
                let cb =
                    joined.schema.column_index(&format!("r{b}.k{ei}")).expect("residual key b");
                joined = joined.filter(|row| row[ca] == row[cb]);
            }
            joined
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::{greedy_goo, optimal_bushy, optimal_left_deep};
    use crate::query::{GraphShape, JoinEdge};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_tables() -> (Table, Table) {
        let a = Table {
            name: "A".into(),
            schema: Schema { columns: vec!["r0.id".into(), "r0.k0".into()] },
            rows: vec![
                vec![Value::Int(0), Value::Int(1)],
                vec![Value::Int(1), Value::Int(2)],
                vec![Value::Int(2), Value::Int(1)],
            ],
        };
        let b = Table {
            name: "B".into(),
            schema: Schema { columns: vec!["r1.id".into(), "r1.k0".into()] },
            rows: vec![vec![Value::Int(0), Value::Int(1)], vec![Value::Int(1), Value::Int(3)]],
        };
        (a, b)
    }

    #[test]
    fn hash_join_matches_nested_loop_semantics() {
        let (a, b) = toy_tables();
        let j = hash_join(&a, &b, 1, 1);
        // k=1 matches rows {0, 2} of A with row 0 of B.
        assert_eq!(j.n_rows(), 2);
        assert_eq!(j.schema.columns.len(), 4);
    }

    #[test]
    fn filter_and_project() {
        let (a, _) = toy_tables();
        let f = a.filter(|r| r[1] == Value::Int(1));
        assert_eq!(f.n_rows(), 2);
        let p = f.project(&[0]);
        assert_eq!(p.schema.columns, vec!["r0.id".to_string()]);
        assert_eq!(p.rows, vec![vec![Value::Int(0)], vec![Value::Int(2)]]);
    }

    #[test]
    fn cross_product_counts() {
        let (a, b) = toy_tables();
        assert_eq!(cross_product(&a, &b).n_rows(), 6);
    }

    #[test]
    fn all_plans_return_identical_results() {
        // The fundamental correctness property behind the whole join-order
        // business: plan choice changes cost, never the answer.
        let mut rng = StdRng::seed_from_u64(77);
        for shape in [GraphShape::Chain, GraphShape::Star, GraphShape::Cycle] {
            let graph = QueryGraph::generate(shape, 4, &mut rng);
            let db = generate_database(&graph, 30, 4, &mut rng);
            let plans = [
                optimal_bushy(&graph).tree,
                optimal_left_deep(&graph).tree,
                greedy_goo(&graph).tree,
                JoinTree::left_deep(&[3, 2, 1, 0]),
                JoinTree::left_deep(&[0, 2, 1, 3]),
            ];
            let reference = execute(&plans[0], &db, &graph).row_multiset();
            for plan in &plans[1..] {
                let got = execute(plan, &db, &graph).row_multiset();
                assert_eq!(got, reference, "{shape:?}: plan {plan} differs");
            }
        }
    }

    #[test]
    fn generated_database_respects_caps() {
        let mut rng = StdRng::seed_from_u64(5);
        let graph =
            QueryGraph::new(vec![1000.0, 5.0], vec![JoinEdge { a: 0, b: 1, selectivity: 0.25 }]);
        let db = generate_database(&graph, 50, 4, &mut rng);
        assert_eq!(db.tables[0].n_rows(), 50);
        assert_eq!(db.tables[1].n_rows(), 5);
        assert_eq!(db.tables[0].schema.columns, vec!["r0.id", "r0.k0"]);
    }

    #[test]
    fn cycle_residual_predicates_are_applied() {
        // In a 3-cycle, joining (R0 ⋈ R1) ⋈ R2 must apply BOTH the 1-2 and
        // 0-2 predicates at the top join.
        let mut rng = StdRng::seed_from_u64(9);
        let graph = QueryGraph::generate(GraphShape::Cycle, 3, &mut rng);
        let db = generate_database(&graph, 40, 3, &mut rng);
        let plan = JoinTree::left_deep(&[0, 1, 2]);
        let result = execute(&plan, &db, &graph);
        // Every output row must satisfy all three predicates.
        for (ei, e) in graph.edges.iter().enumerate() {
            let ca = result.schema.column_index(&format!("r{}.k{}", e.a, ei)).unwrap();
            let cb = result.schema.column_index(&format!("r{}.k{}", e.b, ei)).unwrap();
            for row in &result.rows {
                assert_eq!(row[ca], row[cb]);
            }
        }
    }
}
