//! Transaction substrate: workloads, conflicts, serializability, and a
//! two-phase-locking schedule simulator.
//!
//! This backs the transaction-management row of Table I (\[29\]–\[31\]):
//! Bittner & Groppe schedule transactions so that conflicting ones never
//! overlap, "avoiding blocking" under two-phase locking. We model their
//! setting: each transaction holds txn-level locks on its read/write sets
//! for its whole duration (conservative 2PL), so two transactions conflict
//! iff they touch a common item and at least one writes it.

use rand::Rng;
use std::collections::HashSet;

/// A transaction: read set, write set, and duration in time slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// Transaction id (position in the workload).
    pub id: usize,
    /// Items read.
    pub reads: Vec<usize>,
    /// Items written.
    pub writes: Vec<usize>,
    /// Execution time in discrete slots (>= 1).
    pub duration: usize,
}

impl Transaction {
    /// Returns true when the two transactions cannot overlap under 2PL:
    /// they share an item and at least one of them writes it.
    pub fn conflicts_with(&self, other: &Transaction) -> bool {
        let w1: HashSet<usize> = self.writes.iter().copied().collect();
        let w2: HashSet<usize> = other.writes.iter().copied().collect();
        if self.writes.iter().any(|i| w2.contains(i)) {
            return true;
        }
        if self.reads.iter().any(|i| w2.contains(i)) {
            return true;
        }
        if other.reads.iter().any(|i| w1.contains(i)) {
            return true;
        }
        false
    }
}

/// Generates a random transactional workload over `n_items` data items.
pub fn random_workload(
    n_txns: usize,
    n_items: usize,
    ops_per_txn: usize,
    write_fraction: f64,
    rng: &mut impl Rng,
) -> Vec<Transaction> {
    (0..n_txns)
        .map(|id| {
            let mut reads = Vec::new();
            let mut writes = Vec::new();
            for _ in 0..ops_per_txn.max(1) {
                let item = rng.random_range(0..n_items.max(1));
                if rng.random::<f64>() < write_fraction {
                    writes.push(item);
                } else {
                    reads.push(item);
                }
            }
            let duration = rng.random_range(1..=3);
            Transaction { id, reads, writes, duration }
        })
        .collect()
}

/// A schedule assigns each transaction a start slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnSchedule {
    /// `start[i]` is the start slot of transaction `i`.
    pub start: Vec<usize>,
}

impl TxnSchedule {
    /// Completion time of the whole schedule.
    pub fn makespan(&self, txns: &[Transaction]) -> usize {
        self.start.iter().zip(txns).map(|(&s, t)| s + t.duration).max().unwrap_or(0)
    }

    /// True when no pair of conflicting transactions overlaps in time —
    /// the feasibility condition of the Bittner–Groppe formulation.
    pub fn is_conflict_free(&self, txns: &[Transaction]) -> bool {
        for (i, a) in txns.iter().enumerate() {
            for b in txns.iter().skip(i + 1) {
                if a.conflicts_with(b) {
                    let (sa, ea) = (self.start[a.id], self.start[a.id] + a.duration);
                    let (sb, eb) = (self.start[b.id], self.start[b.id] + b.duration);
                    if sa < eb && sb < ea {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// Serial execution baseline: transactions one after another.
pub fn serial_schedule(txns: &[Transaction]) -> TxnSchedule {
    let mut start = vec![0; txns.len()];
    let mut t = 0;
    for txn in txns {
        start[txn.id] = t;
        t += txn.duration;
    }
    TxnSchedule { start }
}

/// Greedy list scheduling (the classical heuristic the QUBO encoding is
/// compared with): in the given priority order, each transaction starts at
/// the earliest slot where it conflicts with no already-placed overlapping
/// transaction.
pub fn greedy_schedule(txns: &[Transaction], order: &[usize]) -> TxnSchedule {
    let mut start = vec![0usize; txns.len()];
    let mut placed: Vec<usize> = Vec::new();
    for &i in order {
        let mut s = 0usize;
        loop {
            let end = s + txns[i].duration;
            let clash = placed.iter().any(|&j| {
                txns[i].conflicts_with(&txns[j])
                    && start[j] < end
                    && s < start[j] + txns[j].duration
            });
            if !clash {
                break;
            }
            // Jump to the earliest finishing conflicting transaction's end.
            s += 1;
        }
        start[i] = s;
        placed.push(i);
    }
    TxnSchedule { start }
}

/// Simulates conservative 2PL with FIFO admission for a given arrival
/// order: a transaction begins when every conflicting earlier transaction
/// has finished. Returns `(schedule, total_blocked_slots)`.
pub fn simulate_conservative_2pl(
    txns: &[Transaction],
    arrival_order: &[usize],
) -> (TxnSchedule, usize) {
    let mut start = vec![0usize; txns.len()];
    let mut blocked = 0usize;
    let mut finished: Vec<usize> = Vec::new();
    for (pos, &i) in arrival_order.iter().enumerate() {
        let arrival = pos; // one admission attempt per slot
        let earliest = finished
            .iter()
            .filter(|&&j| txns[i].conflicts_with(&txns[j]))
            .map(|&j| start[j] + txns[j].duration)
            .max()
            .unwrap_or(0)
            .max(arrival);
        blocked += earliest - arrival;
        start[i] = earliest;
        finished.push(i);
    }
    (TxnSchedule { start }, blocked)
}

// ---------------------------------------------------------------------------
// Operation-level histories and conflict serializability.
// ---------------------------------------------------------------------------

/// A single read or write operation on a data item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Read of an item.
    Read(usize),
    /// Write of an item.
    Write(usize),
}

impl Op {
    /// The item the operation touches.
    pub fn item(&self) -> usize {
        match *self {
            Op::Read(i) | Op::Write(i) => i,
        }
    }

    /// Two operations conflict when they touch the same item and at least
    /// one writes.
    pub fn conflicts_with(&self, other: &Op) -> bool {
        self.item() == other.item()
            && (matches!(self, Op::Write(_)) || matches!(other, Op::Write(_)))
    }
}

/// An interleaved execution history: `(transaction id, operation)` events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct History {
    /// Events in execution order.
    pub events: Vec<(usize, Op)>,
}

impl History {
    /// Tests conflict serializability by checking that the conflict graph
    /// (edge `t1 -> t2` when an operation of `t1` precedes and conflicts
    /// with an operation of `t2`) is acyclic.
    pub fn is_conflict_serializable(&self) -> bool {
        let txn_ids: Vec<usize> = {
            let mut v: Vec<usize> = self.events.iter().map(|&(t, _)| t).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let index_of = |t: usize| txn_ids.binary_search(&t).expect("txn id present");
        let n = txn_ids.len();
        let mut adj = vec![HashSet::new(); n];
        for (i, &(t1, op1)) in self.events.iter().enumerate() {
            for &(t2, op2) in &self.events[i + 1..] {
                if t1 != t2 && op1.conflicts_with(&op2) {
                    adj[index_of(t1)].insert(index_of(t2));
                }
            }
        }
        // Cycle detection via DFS coloring.
        let mut color = vec![0u8; n]; // 0 white, 1 gray, 2 black
        fn dfs(v: usize, adj: &[HashSet<usize>], color: &mut [u8]) -> bool {
            color[v] = 1;
            for &u in &adj[v] {
                if color[u] == 1 {
                    return false;
                }
                if color[u] == 0 && !dfs(u, adj, color) {
                    return false;
                }
            }
            color[v] = 2;
            true
        }
        (0..n).all(|v| color[v] != 0 || dfs(v, &adj, &mut color))
    }
}

/// Builds the op-level history induced by executing transactions serially in
/// the order their start slots dictate — always conflict-serializable.
pub fn history_from_schedule(txns: &[Transaction], schedule: &TxnSchedule) -> History {
    let mut order: Vec<usize> = (0..txns.len()).collect();
    order.sort_by_key(|&i| schedule.start[i]);
    let mut events = Vec::new();
    for i in order {
        for &r in &txns[i].reads {
            events.push((i, Op::Read(r)));
        }
        for &w in &txns[i].writes {
            events.push((i, Op::Write(w)));
        }
    }
    History { events }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn txn(id: usize, reads: &[usize], writes: &[usize], dur: usize) -> Transaction {
        Transaction { id, reads: reads.to_vec(), writes: writes.to_vec(), duration: dur }
    }

    #[test]
    fn conflict_rules() {
        let a = txn(0, &[1], &[2], 1);
        let b = txn(1, &[2], &[], 1);
        let c = txn(2, &[1], &[], 1);
        let d = txn(3, &[], &[1], 1);
        assert!(a.conflicts_with(&b)); // write-read on 2
        assert!(!a.conflicts_with(&c)); // read-read on 1
        assert!(a.conflicts_with(&d)); // read-write on 1
        assert!(d.conflicts_with(&c));
    }

    #[test]
    fn serial_schedule_is_always_valid() {
        let mut rng = StdRng::seed_from_u64(8);
        let txns = random_workload(10, 5, 3, 0.5, &mut rng);
        let s = serial_schedule(&txns);
        assert!(s.is_conflict_free(&txns));
        let total: usize = txns.iter().map(|t| t.duration).sum();
        assert_eq!(s.makespan(&txns), total);
    }

    #[test]
    fn greedy_beats_serial_when_txns_are_independent() {
        let txns = vec![txn(0, &[], &[0], 2), txn(1, &[], &[1], 2), txn(2, &[], &[2], 2)];
        let order = [0, 1, 2];
        let g = greedy_schedule(&txns, &order);
        assert!(g.is_conflict_free(&txns));
        assert_eq!(g.makespan(&txns), 2); // all parallel
        assert_eq!(serial_schedule(&txns).makespan(&txns), 6);
    }

    #[test]
    fn greedy_respects_conflicts() {
        let txns = vec![txn(0, &[], &[7], 2), txn(1, &[7], &[], 2), txn(2, &[], &[9], 1)];
        let g = greedy_schedule(&txns, &[0, 1, 2]);
        assert!(g.is_conflict_free(&txns));
        // 0 and 1 conflict on item 7 -> serialized; 2 is free.
        assert_eq!(g.makespan(&txns), 4);
    }

    #[test]
    fn conservative_2pl_counts_blocking() {
        let txns = vec![txn(0, &[], &[0], 3), txn(1, &[0], &[], 1)];
        let (s, blocked) = simulate_conservative_2pl(&txns, &[0, 1]);
        assert!(s.is_conflict_free(&txns));
        assert_eq!(s.start[1], 3);
        assert_eq!(blocked, 2); // txn 1 arrived at slot 1, started at 3
    }

    #[test]
    fn serializable_history_detected() {
        let h = History {
            events: vec![(0, Op::Read(1)), (0, Op::Write(1)), (1, Op::Read(1)), (1, Op::Write(2))],
        };
        assert!(h.is_conflict_serializable());
    }

    #[test]
    fn nonserializable_history_detected() {
        // Classic lost-update cycle: t0 reads x, t1 reads x, t0 writes x,
        // t1 writes x  =>  t0 -> t1 (r0 before w1) and t1 -> t0 (r1 before w0).
        let h = History {
            events: vec![(0, Op::Read(0)), (1, Op::Read(0)), (0, Op::Write(0)), (1, Op::Write(0))],
        };
        assert!(!h.is_conflict_serializable());
    }

    #[test]
    fn schedule_induced_history_is_serializable() {
        let mut rng = StdRng::seed_from_u64(12);
        let txns = random_workload(8, 4, 3, 0.6, &mut rng);
        let order: Vec<usize> = (0..8).collect();
        let g = greedy_schedule(&txns, &order);
        let h = history_from_schedule(&txns, &g);
        assert!(h.is_conflict_serializable());
    }

    #[test]
    fn workload_generator_shapes() {
        let mut rng = StdRng::seed_from_u64(3);
        let txns = random_workload(20, 10, 4, 0.5, &mut rng);
        assert_eq!(txns.len(), 20);
        for (i, t) in txns.iter().enumerate() {
            assert_eq!(t.id, i);
            assert_eq!(t.reads.len() + t.writes.len(), 4);
            assert!((1..=3).contains(&t.duration));
        }
    }
}
