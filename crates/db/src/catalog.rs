//! A tiny catalog: named tables with statistics, the glue between the
//! abstract [`crate::query::QueryGraph`] world and the executor.

use crate::query::{JoinEdge, QueryGraph};
use serde::{Deserialize, Serialize};

/// Statistics and naming for one base table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableMeta {
    /// Table name.
    pub name: String,
    /// Estimated row count.
    pub cardinality: f64,
}

/// A catalog of tables plus known join predicates between them.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    tables: Vec<TableMeta>,
    predicates: Vec<JoinEdge>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a table; returns its relation index.
    pub fn add_table(&mut self, name: impl Into<String>, cardinality: f64) -> usize {
        assert!(cardinality > 0.0, "cardinality must be positive");
        self.tables.push(TableMeta { name: name.into(), cardinality });
        self.tables.len() - 1
    }

    /// Registers a join predicate between two tables.
    ///
    /// # Panics
    /// Panics on unknown indices or a selectivity outside `(0, 1]`.
    pub fn add_predicate(&mut self, a: usize, b: usize, selectivity: f64) {
        assert!(a < self.tables.len() && b < self.tables.len() && a != b);
        assert!(selectivity > 0.0 && selectivity <= 1.0);
        self.predicates.push(JoinEdge { a, b, selectivity });
    }

    /// Number of registered tables.
    pub fn n_tables(&self) -> usize {
        self.tables.len()
    }

    /// Table metadata by index.
    pub fn table(&self, i: usize) -> &TableMeta {
        &self.tables[i]
    }

    /// Finds a table index by name.
    pub fn table_index(&self, name: &str) -> Option<usize> {
        self.tables.iter().position(|t| t.name == name)
    }

    /// Builds the query graph over a subset of tables (by index); predicate
    /// endpoints are remapped to positions within `tables`.
    pub fn query_graph(&self, tables: &[usize]) -> QueryGraph {
        let cards: Vec<f64> = tables.iter().map(|&t| self.tables[t].cardinality).collect();
        let pos_of = |t: usize| tables.iter().position(|&x| x == t);
        let edges = self
            .predicates
            .iter()
            .filter_map(|e| {
                let (pa, pb) = (pos_of(e.a)?, pos_of(e.b)?);
                Some(JoinEdge { a: pa, b: pb, selectivity: e.selectivity })
            })
            .collect();
        QueryGraph::new(cards, edges)
    }

    /// The query graph over every table in the catalog.
    pub fn full_query_graph(&self) -> QueryGraph {
        self.query_graph(&(0..self.tables.len()).collect::<Vec<_>>())
    }
}

/// A small star-schema catalog reminiscent of a decision-support workload:
/// one fact table joined to `n_dims` dimension tables.
pub fn star_schema_catalog(n_dims: usize) -> Catalog {
    let mut c = Catalog::new();
    let fact = c.add_table("fact_sales", 1_000_000.0);
    for d in 0..n_dims {
        let dim = c.add_table(format!("dim_{d}"), 1_000.0 * (d + 1) as f64);
        c.add_predicate(fact, dim, 1.0 / (1_000.0 * (d + 1) as f64));
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_roundtrip() {
        let mut c = Catalog::new();
        let a = c.add_table("orders", 1000.0);
        let b = c.add_table("lineitem", 4000.0);
        c.add_predicate(a, b, 0.001);
        assert_eq!(c.n_tables(), 2);
        assert_eq!(c.table_index("orders"), Some(a));
        assert_eq!(c.table(b).name, "lineitem");
        let g = c.full_query_graph();
        assert_eq!(g.n_relations(), 2);
        assert_eq!(g.selectivity(0, 1), 0.001);
    }

    #[test]
    fn subset_query_graph_remaps_indices() {
        let mut c = Catalog::new();
        let a = c.add_table("a", 10.0);
        let b = c.add_table("b", 20.0);
        let d = c.add_table("d", 30.0);
        c.add_predicate(a, d, 0.5);
        c.add_predicate(a, b, 0.1);
        let g = c.query_graph(&[a, d]);
        assert_eq!(g.n_relations(), 2);
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.selectivity(0, 1), 0.5);
    }

    #[test]
    fn star_schema_shape() {
        let c = star_schema_catalog(4);
        assert_eq!(c.n_tables(), 5);
        let g = c.full_query_graph();
        assert_eq!(g.edges.len(), 4);
        assert!(g.edges.iter().all(|e| e.a == 0 || e.b == 0));
    }
}
