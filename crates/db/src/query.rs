//! Join query graphs and workload generators.
//!
//! A [`QueryGraph`] is the standard abstraction for the join-ordering
//! problem (Sec. III-B): relations with cardinalities, connected by join
//! predicates with selectivities. The generators produce the canonical
//! benchmark shapes — chain, star, cycle, clique — used by the join-ordering
//! literature the paper surveys (\[23\]–\[26\], and the classics \[55\]–\[57\]).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A join predicate between two relations with estimated selectivity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JoinEdge {
    /// First relation index.
    pub a: usize,
    /// Second relation index.
    pub b: usize,
    /// Join selectivity in `(0, 1]`.
    pub selectivity: f64,
}

/// A join query: relations with cardinalities and join predicates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryGraph {
    /// Cardinality of each relation.
    pub cardinalities: Vec<f64>,
    /// Join predicates.
    pub edges: Vec<JoinEdge>,
}

/// The canonical query-graph shapes of the join-ordering literature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphShape {
    /// R0 - R1 - R2 - ... (linear).
    Chain,
    /// R0 joined to every other relation (fact table with dimensions).
    Star,
    /// A chain closed into a ring.
    Cycle,
    /// Every pair joined.
    Clique,
}

impl QueryGraph {
    /// Creates a query graph, validating edge indices and selectivities.
    ///
    /// # Panics
    /// Panics on out-of-range relation indices, self-joins, non-positive
    /// cardinalities, or selectivities outside `(0, 1]`.
    pub fn new(cardinalities: Vec<f64>, edges: Vec<JoinEdge>) -> Self {
        let n = cardinalities.len();
        for &c in &cardinalities {
            assert!(c > 0.0, "cardinalities must be positive");
        }
        for e in &edges {
            assert!(e.a < n && e.b < n && e.a != e.b, "bad edge {e:?}");
            assert!(e.selectivity > 0.0 && e.selectivity <= 1.0, "bad selectivity {e:?}");
        }
        Self { cardinalities, edges }
    }

    /// Number of relations.
    pub fn n_relations(&self) -> usize {
        self.cardinalities.len()
    }

    /// Selectivity between two relations (1.0 when no predicate exists —
    /// i.e. a cross product).
    pub fn selectivity(&self, a: usize, b: usize) -> f64 {
        self.edges
            .iter()
            .find(|e| (e.a == a && e.b == b) || (e.a == b && e.b == a))
            .map_or(1.0, |e| e.selectivity)
    }

    /// Whether a join predicate connects the two relations.
    pub fn connected(&self, a: usize, b: usize) -> bool {
        self.edges.iter().any(|e| (e.a == a && e.b == b) || (e.a == b && e.b == a))
    }

    /// Whether the subset `mask` of relations induces a connected subgraph.
    pub fn subset_connected(&self, mask: u64) -> bool {
        let n = self.n_relations();
        debug_assert!(n <= 64);
        if mask == 0 {
            return false;
        }
        let first = mask.trailing_zeros() as usize;
        let mut reached = 1u64 << first;
        let mut frontier = reached;
        while frontier != 0 {
            let mut next = 0u64;
            for e in &self.edges {
                let (ba, bb) = (1u64 << e.a, 1u64 << e.b);
                if mask & ba != 0 && mask & bb != 0 {
                    if frontier & ba != 0 && reached & bb == 0 {
                        next |= bb;
                    }
                    if frontier & bb != 0 && reached & ba == 0 {
                        next |= ba;
                    }
                }
            }
            reached |= next;
            frontier = next;
        }
        reached == mask && mask.count_ones() as usize <= n
    }

    /// Generates a query graph with the given shape. Cardinalities are drawn
    /// log-uniformly from `[100, 100_000)` and selectivities from
    /// `[0.001, 0.1)`, mirroring the setup of "How good are query
    /// optimizers, really?" \[56\].
    pub fn generate(shape: GraphShape, n: usize, rng: &mut impl Rng) -> Self {
        assert!(n >= 2, "need at least two relations");
        let cardinalities: Vec<f64> =
            (0..n).map(|_| 10f64.powf(rng.random_range(2.0..5.0)).round()).collect();
        let sel = |rng: &mut dyn FnMut() -> f64| -> f64 {
            let r = rng();
            10f64.powf(-3.0 + 2.0 * r)
        };
        let mut draw = || rng.random::<f64>();
        let pairs: Vec<(usize, usize)> = match shape {
            GraphShape::Chain => (0..n - 1).map(|i| (i, i + 1)).collect(),
            GraphShape::Star => (1..n).map(|i| (0, i)).collect(),
            GraphShape::Cycle => {
                let mut v: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
                v.push((n - 1, 0));
                v
            }
            GraphShape::Clique => {
                let mut v = Vec::new();
                for i in 0..n {
                    for j in (i + 1)..n {
                        v.push((i, j));
                    }
                }
                v
            }
        };
        let edges = pairs
            .into_iter()
            .map(|(a, b)| JoinEdge { a, b, selectivity: sel(&mut draw) })
            .collect();
        Self::new(cardinalities, edges)
    }

    /// Generates a random connected query graph: a random spanning tree plus
    /// extra edges with probability `extra_edge_prob`.
    pub fn generate_random(n: usize, extra_edge_prob: f64, rng: &mut impl Rng) -> Self {
        assert!(n >= 2);
        let cardinalities: Vec<f64> =
            (0..n).map(|_| 10f64.powf(rng.random_range(2.0..5.0)).round()).collect();
        let mut edges = Vec::new();
        // Random spanning tree: connect each new node to a random earlier one.
        for i in 1..n {
            let j = rng.random_range(0..i);
            edges.push(JoinEdge {
                a: j,
                b: i,
                selectivity: 10f64.powf(rng.random_range(-3.0..-1.0)),
            });
        }
        for i in 0..n {
            for j in (i + 1)..n {
                let exists = edges.iter().any(|e| (e.a == i && e.b == j) || (e.a == j && e.b == i));
                if !exists && rng.random::<f64>() < extra_edge_prob {
                    edges.push(JoinEdge {
                        a: i,
                        b: j,
                        selectivity: 10f64.powf(rng.random_range(-3.0..-1.0)),
                    });
                }
            }
        }
        Self::new(cardinalities, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_have_expected_edge_counts() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(QueryGraph::generate(GraphShape::Chain, 5, &mut rng).edges.len(), 4);
        assert_eq!(QueryGraph::generate(GraphShape::Star, 5, &mut rng).edges.len(), 4);
        assert_eq!(QueryGraph::generate(GraphShape::Cycle, 5, &mut rng).edges.len(), 5);
        assert_eq!(QueryGraph::generate(GraphShape::Clique, 5, &mut rng).edges.len(), 10);
    }

    #[test]
    fn selectivity_defaults_to_cross_product() {
        let g = QueryGraph::new(
            vec![10.0, 20.0, 30.0],
            vec![JoinEdge { a: 0, b: 1, selectivity: 0.1 }],
        );
        assert_eq!(g.selectivity(0, 1), 0.1);
        assert_eq!(g.selectivity(1, 0), 0.1);
        assert_eq!(g.selectivity(0, 2), 1.0);
        assert!(g.connected(0, 1));
        assert!(!g.connected(1, 2));
    }

    #[test]
    fn subset_connectivity_on_chain() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = QueryGraph::generate(GraphShape::Chain, 4, &mut rng);
        assert!(g.subset_connected(0b0011));
        assert!(g.subset_connected(0b1111));
        assert!(!g.subset_connected(0b0101)); // R0 and R2 not adjacent
        assert!(g.subset_connected(0b0100)); // singleton
        assert!(!g.subset_connected(0));
    }

    #[test]
    fn random_graph_is_connected() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10 {
            let g = QueryGraph::generate_random(8, 0.2, &mut rng);
            assert!(g.subset_connected((1u64 << 8) - 1));
        }
    }

    #[test]
    #[should_panic(expected = "bad selectivity")]
    fn rejects_zero_selectivity() {
        QueryGraph::new(vec![1.0, 2.0], vec![JoinEdge { a: 0, b: 1, selectivity: 0.0 }]);
    }

    #[test]
    fn generated_parameters_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = QueryGraph::generate(GraphShape::Clique, 6, &mut rng);
        for &c in &g.cardinalities {
            assert!((100.0..100_000.0).contains(&c));
        }
        for e in &g.edges {
            assert!(e.selectivity >= 0.001 && e.selectivity <= 0.1);
        }
    }
}
