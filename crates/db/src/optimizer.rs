//! Classical join-ordering optimizers: the baselines every quantum approach
//! in Sec. III-B is measured against.
//!
//! - [`optimal_bushy`] — dynamic programming over subsets (DPsub), the
//!   textbook exact algorithm (Selinger-style generalized to bushy trees);
//! - [`optimal_left_deep`] — exact DP restricted to left-deep trees;
//! - [`greedy_goo`] — Greedy Operator Ordering (Fegaras): repeatedly join
//!   the pair with the smallest intermediate result;
//! - [`quickpick`] — randomized sampling of edge-driven join trees.

use crate::plan::{CostModel, JoinTree};
use crate::query::QueryGraph;
use rand::Rng;

/// An optimizer outcome: the chosen tree and its `C_out` cost.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanResult {
    /// The join tree.
    pub tree: JoinTree,
    /// Its `C_out` cost.
    pub cost: f64,
}

/// Exact bushy-tree optimum via dynamic programming over subsets.
///
/// Considers all splits (cross products permitted, as in the QUBO encodings
/// it is compared with). Complexity `O(3^n)`; practical to ~16 relations.
///
/// # Panics
/// Panics if the graph has more than 24 relations or fewer than 1.
pub fn optimal_bushy(graph: &QueryGraph) -> PlanResult {
    let n = graph.n_relations();
    assert!((1..=24).contains(&n), "bushy DP supports 1..=24 relations");
    let cm = CostModel::new(graph);
    let full = (1u64 << n) - 1;
    let size = 1usize << n;
    let mut best_cost = vec![f64::INFINITY; size];
    let mut best_split: Vec<u64> = vec![0; size];
    for r in 0..n {
        best_cost[1usize << r] = 0.0;
    }
    // Iterate subsets in increasing popcount order implicitly: any proper
    // subset of S is numerically smaller than S only when iterating masks in
    // increasing order AND splits use strictly smaller masks — true since a
    // proper nonempty subset of S is < S.
    for s in 1..=full {
        if s.count_ones() < 2 {
            continue;
        }
        let s_us = s as usize;
        let card = cm.cardinality(s);
        // Enumerate proper nonempty subsets s1 of s with s1 < complement
        // partner to halve work.
        let mut s1 = (s - 1) & s;
        while s1 != 0 {
            let s2 = s & !s1;
            if s1 < s2 {
                let c = best_cost[s1 as usize] + best_cost[s2 as usize] + card;
                if c < best_cost[s_us] {
                    best_cost[s_us] = c;
                    best_split[s_us] = s1;
                }
            }
            s1 = (s1 - 1) & s;
        }
    }
    let tree = rebuild(full, &best_split);
    PlanResult { tree, cost: best_cost[full as usize] }
}

fn rebuild(mask: u64, best_split: &[u64]) -> JoinTree {
    if mask.count_ones() == 1 {
        return JoinTree::Leaf(mask.trailing_zeros() as usize);
    }
    let s1 = best_split[mask as usize];
    let s2 = mask & !s1;
    JoinTree::Join(Box::new(rebuild(s1, best_split)), Box::new(rebuild(s2, best_split)))
}

/// Exact left-deep optimum via DP with "last relation" transitions,
/// `O(2^n * n^2)`.
///
/// # Panics
/// Panics outside 1..=24 relations.
pub fn optimal_left_deep(graph: &QueryGraph) -> PlanResult {
    let n = graph.n_relations();
    assert!((1..=24).contains(&n));
    let cm = CostModel::new(graph);
    let full = (1u64 << n) - 1;
    let size = 1usize << n;
    let mut best_cost = vec![f64::INFINITY; size];
    let mut pred: Vec<usize> = vec![usize::MAX; size];
    for r in 0..n {
        best_cost[1usize << r] = 0.0;
    }
    for s in 1..=full {
        if s.count_ones() < 2 {
            continue;
        }
        let card = cm.cardinality(s);
        let s_us = s as usize;
        let mut bits = s;
        while bits != 0 {
            let r = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let prev = s & !(1u64 << r);
            let c = best_cost[prev as usize] + card;
            if c < best_cost[s_us] {
                best_cost[s_us] = c;
                pred[s_us] = r;
            }
        }
    }
    // Rebuild the order backwards.
    let mut order = Vec::with_capacity(n);
    let mut mask = full;
    while mask.count_ones() > 1 {
        let r = pred[mask as usize];
        order.push(r);
        mask &= !(1u64 << r);
    }
    order.push(mask.trailing_zeros() as usize);
    order.reverse();
    PlanResult { tree: JoinTree::left_deep(&order), cost: best_cost[full as usize] }
}

/// Greedy Operator Ordering: repeatedly joins the pair of partial trees
/// whose result has the smallest estimated cardinality. `O(n^3)`.
pub fn greedy_goo(graph: &QueryGraph) -> PlanResult {
    let n = graph.n_relations();
    assert!(n >= 1);
    let cm = CostModel::new(graph);
    let mut forest: Vec<(JoinTree, u64)> = (0..n).map(|r| (JoinTree::Leaf(r), 1u64 << r)).collect();
    let mut total = 0.0;
    while forest.len() > 1 {
        let mut best = (0usize, 1usize, f64::INFINITY);
        for i in 0..forest.len() {
            for j in (i + 1)..forest.len() {
                let card = cm.cardinality(forest[i].1 | forest[j].1);
                if card < best.2 {
                    best = (i, j, card);
                }
            }
        }
        let (i, j, card) = best;
        total += card;
        let (tj, mj) = forest.swap_remove(j);
        let (ti, mi) = forest.swap_remove(if i < forest.len() { i } else { j });
        forest.push((JoinTree::Join(Box::new(ti), Box::new(tj)), mi | mj));
    }
    let (tree, _) = forest.pop().expect("non-empty forest");
    PlanResult { cost: total, tree }
}

/// QuickPick: builds `samples` random join trees by repeatedly contracting a
/// random join edge, returning the cheapest.
pub fn quickpick(graph: &QueryGraph, samples: usize, rng: &mut impl Rng) -> PlanResult {
    let n = graph.n_relations();
    assert!(n >= 1 && !graph.edges.is_empty() || n == 1, "quickpick needs join edges");
    let cm = CostModel::new(graph);
    let mut best: Option<PlanResult> = None;
    for _ in 0..samples.max(1) {
        // Union-find over relations; trees per root.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let r = find(parent, parent[x]);
                parent[x] = r;
            }
            parent[x]
        }
        let mut trees: Vec<Option<JoinTree>> = (0..n).map(|r| Some(JoinTree::Leaf(r))).collect();
        let mut edges = graph.edges.clone();
        // Shuffle edges (Fisher–Yates).
        for i in (1..edges.len()).rev() {
            let j = rng.random_range(0..=i);
            edges.swap(i, j);
        }
        let mut merged = 1;
        for e in &edges {
            let (ra, rb) = (find(&mut parent, e.a), find(&mut parent, e.b));
            if ra != rb {
                let ta = trees[ra].take().expect("root holds a tree");
                let tb = trees[rb].take().expect("root holds a tree");
                parent[rb] = ra;
                trees[ra] = Some(JoinTree::Join(Box::new(ta), Box::new(tb)));
                merged += 1;
            }
        }
        // If the graph is disconnected, cross-join remaining roots.
        if merged < n {
            let mut roots: Vec<usize> = (0..n).filter(|&r| find(&mut parent, r) == r).collect();
            while roots.len() > 1 {
                let rb = roots.pop().expect("len > 1");
                let ra = roots[0];
                let ta = trees[ra].take().expect("root");
                let tb = trees[rb].take().expect("root");
                parent[rb] = ra;
                trees[ra] = Some(JoinTree::Join(Box::new(ta), Box::new(tb)));
            }
        }
        let root = find(&mut parent, 0);
        let tree = trees[root].take().expect("final tree");
        let cost = cm.cost(&tree);
        if best.as_ref().is_none_or(|b| cost < b.cost) {
            best = Some(PlanResult { tree, cost });
        }
    }
    best.expect("at least one sample")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{GraphShape, QueryGraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn brute_force_left_deep(graph: &QueryGraph) -> f64 {
        let n = graph.n_relations();
        let cm = CostModel::new(graph);
        let mut order: Vec<usize> = (0..n).collect();
        let mut best = f64::INFINITY;
        permute(&mut order, 0, &mut |o| {
            let c = cm.cost_left_deep(o);
            if c < best {
                best = c;
            }
        });
        best
    }

    fn permute(v: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
        if k == v.len() {
            f(v);
            return;
        }
        for i in k..v.len() {
            v.swap(k, i);
            permute(v, k + 1, f);
            v.swap(k, i);
        }
    }

    #[test]
    fn left_deep_dp_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(10);
        for shape in [GraphShape::Chain, GraphShape::Star, GraphShape::Cycle, GraphShape::Clique] {
            let g = QueryGraph::generate(shape, 6, &mut rng);
            let dp = optimal_left_deep(&g);
            let bf = brute_force_left_deep(&g);
            assert!(
                (dp.cost - bf).abs() / bf.max(1.0) < 1e-9,
                "{shape:?}: dp {} vs brute force {}",
                dp.cost,
                bf
            );
            assert!(dp.tree.is_left_deep());
        }
    }

    #[test]
    fn bushy_never_worse_than_left_deep() {
        let mut rng = StdRng::seed_from_u64(20);
        for shape in [GraphShape::Chain, GraphShape::Star, GraphShape::Cycle, GraphShape::Clique] {
            for _ in 0..3 {
                let g = QueryGraph::generate(shape, 7, &mut rng);
                let bushy = optimal_bushy(&g);
                let ld = optimal_left_deep(&g);
                assert!(
                    bushy.cost <= ld.cost + 1e-9,
                    "{shape:?}: bushy {} > left-deep {}",
                    bushy.cost,
                    ld.cost
                );
            }
        }
    }

    #[test]
    fn bushy_cost_matches_tree_evaluation() {
        let mut rng = StdRng::seed_from_u64(30);
        let g = QueryGraph::generate(GraphShape::Star, 8, &mut rng);
        let res = optimal_bushy(&g);
        let cm = CostModel::new(&g);
        assert!((cm.cost(&res.tree) - res.cost).abs() / res.cost < 1e-9);
        assert_eq!(res.tree.relation_mask(), (1 << 8) - 1);
    }

    #[test]
    fn goo_is_feasible_and_reasonable() {
        let mut rng = StdRng::seed_from_u64(40);
        let g = QueryGraph::generate(GraphShape::Chain, 10, &mut rng);
        let goo = greedy_goo(&g);
        let cm = CostModel::new(&g);
        assert!((cm.cost(&goo.tree) - goo.cost).abs() / goo.cost.max(1.0) < 1e-9);
        let opt = optimal_bushy(&g);
        assert!(goo.cost >= opt.cost - 1e-9);
        // GOO should be within a couple orders of magnitude on chains.
        assert!(goo.cost <= opt.cost * 1e4);
    }

    #[test]
    fn quickpick_improves_with_samples() {
        let mut rng1 = StdRng::seed_from_u64(50);
        let mut rng2 = StdRng::seed_from_u64(50);
        let g = QueryGraph::generate(GraphShape::Clique, 8, &mut StdRng::seed_from_u64(51));
        let few = quickpick(&g, 1, &mut rng1);
        let many = quickpick(&g, 200, &mut rng2);
        assert!(many.cost <= few.cost);
        assert_eq!(many.tree.relation_mask(), (1 << 8) - 1);
    }

    #[test]
    fn single_relation_plans() {
        let g = QueryGraph::new(vec![42.0], vec![]);
        assert_eq!(optimal_bushy(&g).cost, 0.0);
        assert_eq!(optimal_left_deep(&g).cost, 0.0);
        assert_eq!(greedy_goo(&g).cost, 0.0);
    }
}
