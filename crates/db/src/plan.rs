//! Join plans: bushy join trees and left-deep orders, with the `C_out`
//! cost model (sum of intermediate result cardinalities) used throughout
//! the join-ordering literature surveyed in Sec. III-B.

use crate::query::QueryGraph;
use std::fmt;

/// A (possibly bushy) join tree over relation indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinTree {
    /// A base relation.
    Leaf(usize),
    /// A join of two subtrees.
    Join(Box<JoinTree>, Box<JoinTree>),
}

impl JoinTree {
    /// Builds a left-deep tree from a relation order.
    ///
    /// # Panics
    /// Panics if `order` is empty.
    pub fn left_deep(order: &[usize]) -> Self {
        assert!(!order.is_empty());
        let mut tree = JoinTree::Leaf(order[0]);
        for &r in &order[1..] {
            tree = JoinTree::Join(Box::new(tree), Box::new(JoinTree::Leaf(r)));
        }
        tree
    }

    /// Bitmask of relations in this subtree.
    pub fn relation_mask(&self) -> u64 {
        match self {
            JoinTree::Leaf(r) => 1u64 << r,
            JoinTree::Join(l, r) => l.relation_mask() | r.relation_mask(),
        }
    }

    /// Relations in this subtree, in left-to-right leaf order.
    pub fn relations(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_relations(&mut out);
        out
    }

    fn collect_relations(&self, out: &mut Vec<usize>) {
        match self {
            JoinTree::Leaf(r) => out.push(*r),
            JoinTree::Join(l, r) => {
                l.collect_relations(out);
                r.collect_relations(out);
            }
        }
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        match self {
            JoinTree::Leaf(_) => 1,
            JoinTree::Join(l, r) => l.n_leaves() + r.n_leaves(),
        }
    }

    /// True when the tree is left-deep (every right child is a leaf).
    pub fn is_left_deep(&self) -> bool {
        match self {
            JoinTree::Leaf(_) => true,
            JoinTree::Join(l, r) => matches!(**r, JoinTree::Leaf(_)) && l.is_left_deep(),
        }
    }
}

impl fmt::Display for JoinTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinTree::Leaf(r) => write!(f, "R{r}"),
            JoinTree::Join(l, r) => write!(f, "({l} ⋈ {r})"),
        }
    }
}

/// The cost model: estimated cardinalities of relation subsets and the
/// `C_out` plan cost.
#[derive(Debug, Clone)]
pub struct CostModel<'a> {
    graph: &'a QueryGraph,
}

impl<'a> CostModel<'a> {
    /// Wraps a query graph.
    pub fn new(graph: &'a QueryGraph) -> Self {
        Self { graph }
    }

    /// Estimated cardinality of joining the relation subset `mask`:
    /// product of base cardinalities times the selectivity of every join
    /// predicate internal to the subset (independence assumption).
    pub fn cardinality(&self, mask: u64) -> f64 {
        let mut card = 1.0;
        for r in 0..self.graph.n_relations() {
            if mask & (1u64 << r) != 0 {
                card *= self.graph.cardinalities[r];
            }
        }
        for e in &self.graph.edges {
            if mask & (1u64 << e.a) != 0 && mask & (1u64 << e.b) != 0 {
                card *= e.selectivity;
            }
        }
        card
    }

    /// `C_out` cost of a join tree: the sum of the cardinalities of every
    /// intermediate (join) node.
    pub fn cost(&self, tree: &JoinTree) -> f64 {
        match tree {
            JoinTree::Leaf(_) => 0.0,
            JoinTree::Join(l, r) => {
                self.cost(l) + self.cost(r) + self.cardinality(tree.relation_mask())
            }
        }
    }

    /// `C_out` cost of a left-deep order without building a tree.
    pub fn cost_left_deep(&self, order: &[usize]) -> f64 {
        let mut mask = 0u64;
        let mut cost = 0.0;
        for (k, &r) in order.iter().enumerate() {
            mask |= 1u64 << r;
            if k >= 1 {
                cost += self.cardinality(mask);
            }
        }
        cost
    }

    /// Whether a left-deep order avoids cross products (each added relation
    /// is connected to the prefix).
    pub fn order_avoids_cross_products(&self, order: &[usize]) -> bool {
        for (k, &r) in order.iter().enumerate().skip(1) {
            let connected = order[..k].iter().any(|&p| self.graph.connected(p, r));
            if !connected {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::JoinEdge;

    fn chain3() -> QueryGraph {
        QueryGraph::new(
            vec![100.0, 1000.0, 10.0],
            vec![
                JoinEdge { a: 0, b: 1, selectivity: 0.01 },
                JoinEdge { a: 1, b: 2, selectivity: 0.1 },
            ],
        )
    }

    #[test]
    fn left_deep_tree_structure() {
        let t = JoinTree::left_deep(&[2, 0, 1]);
        assert_eq!(t.relations(), vec![2, 0, 1]);
        assert_eq!(t.relation_mask(), 0b111);
        assert!(t.is_left_deep());
        assert_eq!(t.n_leaves(), 3);
        assert_eq!(format!("{t}"), "((R2 ⋈ R0) ⋈ R1)");
    }

    #[test]
    fn bushy_tree_is_not_left_deep() {
        let t = JoinTree::Join(
            Box::new(JoinTree::Join(Box::new(JoinTree::Leaf(0)), Box::new(JoinTree::Leaf(1)))),
            Box::new(JoinTree::Join(Box::new(JoinTree::Leaf(2)), Box::new(JoinTree::Leaf(3)))),
        );
        assert!(!t.is_left_deep());
        assert_eq!(t.n_leaves(), 4);
    }

    #[test]
    fn cardinality_applies_selectivities() {
        let g = chain3();
        let cm = CostModel::new(&g);
        assert_eq!(cm.cardinality(0b001), 100.0);
        assert_eq!(cm.cardinality(0b011), 100.0 * 1000.0 * 0.01);
        // Full join applies both predicates.
        assert_eq!(cm.cardinality(0b111), 100.0 * 1000.0 * 10.0 * 0.01 * 0.1);
        // Disconnected pair is a cross product.
        assert_eq!(cm.cardinality(0b101), 100.0 * 10.0);
    }

    #[test]
    fn cost_left_deep_matches_tree_cost() {
        let g = chain3();
        let cm = CostModel::new(&g);
        for order in [[0, 1, 2], [2, 1, 0], [1, 0, 2], [0, 2, 1]] {
            let tree = JoinTree::left_deep(&order);
            assert!((cm.cost(&tree) - cm.cost_left_deep(&order)).abs() < 1e-9, "order {order:?}");
        }
    }

    #[test]
    fn cross_product_detection() {
        let g = chain3();
        let cm = CostModel::new(&g);
        assert!(cm.order_avoids_cross_products(&[0, 1, 2]));
        assert!(cm.order_avoids_cross_products(&[1, 0, 2]));
        assert!(!cm.order_avoids_cross_products(&[0, 2, 1]));
    }

    #[test]
    fn order_matters_for_cost() {
        let g = QueryGraph::new(
            vec![10.0, 100_000.0, 20.0],
            vec![
                JoinEdge { a: 0, b: 1, selectivity: 0.001 },
                JoinEdge { a: 1, b: 2, selectivity: 0.01 },
            ],
        );
        let cm = CostModel::new(&g);
        let good = cm.cost_left_deep(&[0, 1, 2]); // small intermediate first
        let bad = cm.cost_left_deep(&[1, 2, 0]); // large intermediate first
        assert!((good - 1200.0).abs() < 1e-9, "good = {good}");
        assert!((bad - 20_200.0).abs() < 1e-9, "bad = {bad}");
        assert!(good < bad);
    }
}
