//! # qdm-db — classical database substrate
//!
//! Everything "database" the paper's Table I problems need, built from
//! scratch: query graphs and workload generators, the `C_out` cost model,
//! join plans, the classical optimizers that serve as baselines for the
//! quantum encodings (exact DP, greedy GOO, QuickPick), a miniature
//! execution engine to prove plan equivalence, transactional workloads with
//! conflict analysis and two-phase-locking simulation, and a small catalog.
//!
//! - [`query`] — [`query::QueryGraph`] + chain/star/cycle/clique generators.
//! - [`plan`] — [`plan::JoinTree`], [`plan::CostModel`] (`C_out`).
//! - [`optimizer`] — exact bushy DP, exact left-deep DP, GOO, QuickPick.
//! - [`exec`] — row-store executor: hash join, filter, project; database
//!   generator consistent with graph statistics.
//! - [`txn`] — transactions, conflicts, schedules, conservative 2PL
//!   simulation, conflict-serializability of op-level histories.
//! - [`catalog`] — named tables and predicates; star-schema helper.

#![warn(missing_docs)]

pub mod catalog;
pub mod exec;
pub mod optimizer;
pub mod plan;
pub mod query;
pub mod txn;

/// Convenient re-exports of the most used items.
pub mod prelude {
    pub use crate::catalog::{star_schema_catalog, Catalog, TableMeta};
    pub use crate::exec::{
        cross_product, execute, generate_database, hash_join, Database, Schema, Table, Value,
    };
    pub use crate::optimizer::{
        greedy_goo, optimal_bushy, optimal_left_deep, quickpick, PlanResult,
    };
    pub use crate::plan::{CostModel, JoinTree};
    pub use crate::query::{GraphShape, JoinEdge, QueryGraph};
    pub use crate::txn::{
        greedy_schedule, history_from_schedule, random_workload, serial_schedule,
        simulate_conservative_2pl, History, Op, Transaction, TxnSchedule,
    };
}

pub use prelude::*;
