//! The [`QuboSolver`] trait and the full Fig. 2 solver registry.
//!
//! The paper's Fig. 2 shows QUBO flowing either to quantum annealers or,
//! via QAOA / VQE / QPE / Grover, to gate-based machines. Each path is a
//! `QuboSolver` here; the classical baselines (exact, tabu, random) share
//! the interface so every experiment can compare like-for-like.

use qdm_algos::grover::durr_hoyer_minimum;
use qdm_algos::qaoa::{qaoa_optimize, EnergyTable, QaoaParams};
use qdm_algos::vqe::{vqe_optimize, VqeParams};
use qdm_anneal::sa::{
    simulated_annealing_colored, simulated_annealing_colored_probed, simulated_annealing_compiled,
    simulated_annealing_parallel_compiled, simulated_annealing_parallel_probed,
    simulated_annealing_probed, SaParams, COLORED_SWEEP_MIN_VARS,
};
use qdm_anneal::sqa::{
    simulated_quantum_annealing_compiled, simulated_quantum_annealing_probed, SqaParams,
};
use qdm_anneal::tabu::{tabu_search_compiled, tabu_search_probed, TabuParams};
use qdm_qubo::compiled::CompiledQubo;
use qdm_qubo::model::{bits_from_index, QuboModel};
use qdm_qubo::probe::StageProbe;
use qdm_qubo::solve::{
    solve_exact, solve_exact_compiled, solve_random_compiled, SolveResult, MAX_EXACT_VARS,
};
use rand::rngs::StdRng;
use rand::RngCore;
use std::time::Instant;

/// Which branch of Fig. 2 a solver belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolverKind {
    /// Quantum-annealing path (simulated here, per DESIGN.md).
    Annealing,
    /// Gate-based path (QAOA, VQE, Grover on the state-vector simulator).
    GateBased,
    /// Classical baseline.
    Classical,
}

/// A solver over QUBO models.
///
/// Solvers must be [`Send`] + [`Sync`]: the `qdm-runtime` worker pool shares
/// one registered instance across worker threads. Every solver here is a
/// small parameter struct with no interior mutability (all run state lives in
/// the caller-provided RNG), so the bound is free.
///
/// [`QuboSolver::solve_compiled`] is the **primary** entry point: it accepts
/// an existing [`CompiledQubo`], which is what lets the runtime compile each
/// job exactly once and dispatch the same shared compilation to many
/// backends (a portfolio race solves one `Arc<CompiledQubo>` k ways).
/// [`QuboSolver::solve`] is a convenience wrapper that compiles and
/// delegates, so `solve(q, rng)` and `solve_compiled(&q.compile(), rng)` are
/// bit-identical by construction.
pub trait QuboSolver: Send + Sync {
    /// Display name.
    fn name(&self) -> &str;
    /// Which Fig. 2 branch this is.
    fn kind(&self) -> SolverKind;
    /// Largest variable count the solver accepts.
    fn max_vars(&self) -> usize;
    /// Solves an existing compilation without recompiling — the hot path.
    fn solve_compiled(&self, c: &CompiledQubo, rng: &mut StdRng) -> SolveResult;
    /// Solves the model: compiles once and delegates to
    /// [`Self::solve_compiled`].
    fn solve(&self, q: &QuboModel, rng: &mut StdRng) -> SolveResult {
        self.solve_compiled(&q.compile(), rng)
    }
    /// [`Self::solve_compiled`] reporting solver-internal progress (restart
    /// counters, acceptance rates) to `probe`. The default ignores the probe
    /// and delegates, so solvers without internal instrumentation still
    /// satisfy the interface; instrumented solvers override this with a
    /// probed run that is bit-identical to the unprobed one.
    fn solve_observed(
        &self,
        c: &CompiledQubo,
        rng: &mut StdRng,
        probe: &dyn StageProbe,
    ) -> SolveResult {
        let _ = probe;
        self.solve_compiled(c, rng)
    }
}

/// Certified exact enumeration (classical).
#[derive(Debug, Default, Clone, Copy)]
pub struct ExactSolver;

impl QuboSolver for ExactSolver {
    fn name(&self) -> &str {
        "exact"
    }
    fn kind(&self) -> SolverKind {
        SolverKind::Classical
    }
    fn max_vars(&self) -> usize {
        MAX_EXACT_VARS
    }
    fn solve_compiled(&self, c: &CompiledQubo, _rng: &mut StdRng) -> SolveResult {
        solve_exact_compiled(c)
    }
}

/// Classical simulated annealing.
#[derive(Debug, Default, Clone, Copy)]
pub struct SaSolver {
    /// Optional fixed parameters; auto-scaled to the model when `None`.
    pub params: Option<SaParams>,
}

impl QuboSolver for SaSolver {
    fn name(&self) -> &str {
        "simulated-annealing"
    }
    fn kind(&self) -> SolverKind {
        SolverKind::Annealing
    }
    fn max_vars(&self) -> usize {
        100_000
    }
    fn solve_compiled(&self, c: &CompiledQubo, rng: &mut StdRng) -> SolveResult {
        let params = self.params.unwrap_or_else(|| SaParams::scaled_to_compiled(c));
        simulated_annealing_compiled(c, &params, rng)
    }
    fn solve_observed(
        &self,
        c: &CompiledQubo,
        rng: &mut StdRng,
        probe: &dyn StageProbe,
    ) -> SolveResult {
        let params = self.params.unwrap_or_else(|| SaParams::scaled_to_compiled(c));
        simulated_annealing_probed(c, &params, rng, probe)
    }
}

/// Classical simulated annealing with two parallelism axes, chosen by
/// instance size:
///
/// - below [`COLORED_SWEEP_MIN_VARS`]: restarts fan out across a scoped
///   thread pool (`qdm_anneal::sa::simulated_annealing_parallel`);
/// - at/above it: graph-colored sweep parallelism *inside* each restart
///   (`qdm_anneal::sa::simulated_annealing_colored`) — one huge restart
///   parallelizes even when there are few restarts to fan out.
///
/// Both paths are bit-identical at any thread count: restart seeds are
/// SplitMix64-derived by index, color-class decisions are pure per-proposal
/// functions, and every best-pick runs in index order. The job's RNG
/// contributes exactly one `u64` (the base seed), so the runtime's
/// fixed-seed reproducibility contract holds here too.
#[derive(Debug, Default, Clone, Copy)]
pub struct SaParallelSolver {
    /// Optional fixed parameters; auto-scaled to the model when `None`.
    pub params: Option<SaParams>,
    /// Worker threads for the restart fan-out; hardware parallelism when
    /// `None` (capped at the restart count either way).
    pub threads: Option<usize>,
}

impl QuboSolver for SaParallelSolver {
    fn name(&self) -> &str {
        "simulated-annealing-parallel"
    }
    fn kind(&self) -> SolverKind {
        SolverKind::Annealing
    }
    fn max_vars(&self) -> usize {
        100_000
    }
    fn solve_compiled(&self, c: &CompiledQubo, rng: &mut StdRng) -> SolveResult {
        let params = self.params.unwrap_or_else(|| SaParams::scaled_to_compiled(c));
        let threads = self
            .threads
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
        let seed = rng.next_u64();
        if c.n_vars() >= COLORED_SWEEP_MIN_VARS {
            simulated_annealing_colored(c, &params, seed, threads)
        } else {
            simulated_annealing_parallel_compiled(c, &params, seed, threads)
        }
    }
    fn solve_observed(
        &self,
        c: &CompiledQubo,
        rng: &mut StdRng,
        probe: &dyn StageProbe,
    ) -> SolveResult {
        let params = self.params.unwrap_or_else(|| SaParams::scaled_to_compiled(c));
        let threads = self
            .threads
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
        let seed = rng.next_u64();
        if c.n_vars() >= COLORED_SWEEP_MIN_VARS {
            simulated_annealing_colored_probed(c, &params, seed, threads, probe)
        } else {
            simulated_annealing_parallel_probed(c, &params, seed, threads, probe)
        }
    }
}

/// Simulated *quantum* annealing (path-integral transverse-field Monte
/// Carlo) — the annealing-hardware stand-in.
#[derive(Debug, Default, Clone, Copy)]
pub struct SqaSolver {
    /// Optional fixed parameters; auto-scaled when `None`.
    pub params: Option<SqaParams>,
}

impl QuboSolver for SqaSolver {
    fn name(&self) -> &str {
        "simulated-quantum-annealing"
    }
    fn kind(&self) -> SolverKind {
        SolverKind::Annealing
    }
    fn max_vars(&self) -> usize {
        10_000
    }
    fn solve_compiled(&self, c: &CompiledQubo, rng: &mut StdRng) -> SolveResult {
        let params = self.params.unwrap_or_else(|| SqaParams::scaled_to_compiled(c));
        simulated_quantum_annealing_compiled(c, &params, rng)
    }
    fn solve_observed(
        &self,
        c: &CompiledQubo,
        rng: &mut StdRng,
        probe: &dyn StageProbe,
    ) -> SolveResult {
        let params = self.params.unwrap_or_else(|| SqaParams::scaled_to_compiled(c));
        simulated_quantum_annealing_probed(c, &params, rng, probe)
    }
}

/// Tabu search (classical metaheuristic baseline).
#[derive(Debug, Default, Clone, Copy)]
pub struct TabuSolver {
    /// Optional fixed parameters.
    pub params: Option<TabuParams>,
}

impl QuboSolver for TabuSolver {
    fn name(&self) -> &str {
        "tabu"
    }
    fn kind(&self) -> SolverKind {
        SolverKind::Classical
    }
    fn max_vars(&self) -> usize {
        100_000
    }
    fn solve_compiled(&self, c: &CompiledQubo, rng: &mut StdRng) -> SolveResult {
        tabu_search_compiled(c, &self.params.unwrap_or_default(), rng)
    }
    fn solve_observed(
        &self,
        c: &CompiledQubo,
        rng: &mut StdRng,
        probe: &dyn StageProbe,
    ) -> SolveResult {
        tabu_search_probed(c, &self.params.unwrap_or_default(), rng, probe)
    }
}

/// Uniform random sampling baseline.
#[derive(Debug, Clone, Copy)]
pub struct RandomSolver {
    /// Number of random assignments to draw.
    pub samples: u64,
}

impl Default for RandomSolver {
    fn default() -> Self {
        Self { samples: 1000 }
    }
}

impl QuboSolver for RandomSolver {
    fn name(&self) -> &str {
        "random"
    }
    fn kind(&self) -> SolverKind {
        SolverKind::Classical
    }
    fn max_vars(&self) -> usize {
        1_000_000
    }
    fn solve_compiled(&self, c: &CompiledQubo, rng: &mut StdRng) -> SolveResult {
        solve_random_compiled(c, self.samples, rng)
    }
}

/// QAOA on the gate-model simulator.
#[derive(Debug, Default, Clone, Copy)]
pub struct QaoaSolver {
    /// Optional fixed hyperparameters.
    pub params: Option<QaoaParams>,
}

impl QuboSolver for QaoaSolver {
    fn name(&self) -> &str {
        "qaoa"
    }
    fn kind(&self) -> SolverKind {
        SolverKind::GateBased
    }
    fn max_vars(&self) -> usize {
        20
    }
    fn solve_compiled(&self, c: &CompiledQubo, rng: &mut StdRng) -> SolveResult {
        // Gate-based routes build state-vector Hamiltonians from the model
        // form; compilation is lossless, so decompiling reproduces it
        // exactly (and these routes cap at ~20 variables, so the rebuild is
        // noise next to the exponential simulation).
        self.solve(&c.to_model(), rng)
    }
    fn solve(&self, q: &QuboModel, rng: &mut StdRng) -> SolveResult {
        qaoa_optimize(q, &self.params.unwrap_or_default(), rng).solve
    }
}

/// VQE on the gate-model simulator.
#[derive(Debug, Default, Clone, Copy)]
pub struct VqeSolver {
    /// Optional fixed hyperparameters.
    pub params: Option<VqeParams>,
}

impl QuboSolver for VqeSolver {
    fn name(&self) -> &str {
        "vqe"
    }
    fn kind(&self) -> SolverKind {
        SolverKind::GateBased
    }
    fn max_vars(&self) -> usize {
        16
    }
    fn solve_compiled(&self, c: &CompiledQubo, rng: &mut StdRng) -> SolveResult {
        // See `QaoaSolver::solve_compiled`: lossless decompile for the
        // model-form Hamiltonian construction.
        self.solve(&c.to_model(), rng)
    }
    fn solve(&self, q: &QuboModel, rng: &mut StdRng) -> SolveResult {
        vqe_optimize(q, &self.params.unwrap_or_default(), rng).solve
    }
}

/// Grover-based optimization: Dürr–Høyer minimum finding over the QUBO
/// energy landscape (the route of Groppe & Groppe \[31\]).
#[derive(Debug, Default, Clone, Copy)]
pub struct GroverMinSolver;

impl QuboSolver for GroverMinSolver {
    fn name(&self) -> &str {
        "grover-minimum"
    }
    fn kind(&self) -> SolverKind {
        SolverKind::GateBased
    }
    fn max_vars(&self) -> usize {
        16
    }
    fn solve_compiled(&self, c: &CompiledQubo, rng: &mut StdRng) -> SolveResult {
        // See `QaoaSolver::solve_compiled`: lossless decompile for the
        // model-form energy table.
        self.solve(&c.to_model(), rng)
    }
    fn solve(&self, q: &QuboModel, rng: &mut StdRng) -> SolveResult {
        let start = Instant::now();
        let n = q.n_vars();
        if n == 0 {
            return solve_exact(q);
        }
        let table = EnergyTable::new(q);
        let res = durr_hoyer_minimum(n, |x| table.energies[x], rng);
        SolveResult {
            bits: bits_from_index(res.index, n),
            energy: res.key,
            evaluations: res.quantum_queries + res.classical_queries,
            seconds: start.elapsed().as_secs_f64(),
            certified_optimal: false,
        }
    }
}

/// Trotterized adiabatic evolution on the gate simulator — the unitary
/// dynamics a quantum annealer physically implements.
#[derive(Debug, Default, Clone, Copy)]
pub struct AdiabaticSolver {
    /// Optional fixed parameters.
    pub params: Option<qdm_algos::adiabatic::AdiabaticParams>,
}

impl QuboSolver for AdiabaticSolver {
    fn name(&self) -> &str {
        "adiabatic-evolution"
    }
    fn kind(&self) -> SolverKind {
        SolverKind::Annealing
    }
    fn max_vars(&self) -> usize {
        16
    }
    fn solve_compiled(&self, c: &CompiledQubo, rng: &mut StdRng) -> SolveResult {
        // See `QaoaSolver::solve_compiled`: lossless decompile for the
        // model-form Hamiltonian construction.
        self.solve(&c.to_model(), rng)
    }
    fn solve(&self, q: &QuboModel, rng: &mut StdRng) -> SolveResult {
        qdm_algos::adiabatic::adiabatic_evolve(q, &self.params.unwrap_or_default(), rng).solve
    }
}

/// Every Fig. 2 path plus the classical baselines, boxed for iteration.
pub fn full_registry() -> Vec<Box<dyn QuboSolver + Send + Sync>> {
    vec![
        Box::new(ExactSolver),
        Box::new(SaSolver::default()),
        Box::new(SaParallelSolver::default()),
        Box::new(SqaSolver::default()),
        Box::new(AdiabaticSolver::default()),
        Box::new(TabuSolver::default()),
        Box::new(RandomSolver::default()),
        Box::new(QaoaSolver::default()),
        Box::new(VqeSolver::default()),
        Box::new(GroverMinSolver),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn model(seed: u64) -> QuboModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut q = QuboModel::new(8);
        for i in 0..8 {
            q.add_linear(i, rng.random_range(-2.0..2.0));
            for j in (i + 1)..8 {
                if rng.random::<f64>() < 0.4 {
                    q.add_quadratic(i, j, rng.random_range(-2.0..2.0));
                }
            }
        }
        q
    }

    #[test]
    fn every_registry_solver_finds_a_consistent_solution() {
        let q = model(1);
        let exact = solve_exact(&q);
        for solver in full_registry() {
            let mut rng = StdRng::seed_from_u64(99);
            let res = solver.solve(&q, &mut rng);
            assert!(
                (q.energy(&res.bits) - res.energy).abs() < 1e-9,
                "{} reports inconsistent energy",
                solver.name()
            );
            assert!(
                res.energy >= exact.energy - 1e-9,
                "{} beat the certified optimum?!",
                solver.name()
            );
        }
    }

    #[test]
    fn strong_solvers_match_exact_on_small_model() {
        let q = model(2);
        let exact = solve_exact(&q);
        for solver in [
            Box::new(SaSolver::default()) as Box<dyn QuboSolver>,
            Box::new(SaParallelSolver::default()),
            Box::new(SqaSolver::default()),
            Box::new(TabuSolver::default()),
            Box::new(GroverMinSolver),
        ] {
            let mut rng = StdRng::seed_from_u64(7);
            let res = solver.solve(&q, &mut rng);
            assert!(
                (res.energy - exact.energy).abs() < 1e-9,
                "{}: {} vs exact {}",
                solver.name(),
                res.energy,
                exact.energy
            );
        }
    }

    #[test]
    fn registry_covers_all_kinds() {
        let kinds: std::collections::HashSet<_> =
            full_registry().iter().map(|s| s.kind()).collect();
        assert!(kinds.contains(&SolverKind::Annealing));
        assert!(kinds.contains(&SolverKind::GateBased));
        assert!(kinds.contains(&SolverKind::Classical));
    }
}
