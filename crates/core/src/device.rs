//! Device profiles and the constraint checks of Sec. III-C.3.
//!
//! "We still face many practical constraints such as the restricted number
//! of qubits as well as noisy operations." A [`Device`] captures qubit
//! budget, connectivity and noise; [`Device::fit`] reports whether (and
//! how) a QUBO fits, including whether minor embedding is required.

use qdm_anneal::embedding::{find_embedding_auto, ChimeraGraph};
use qdm_qubo::model::QuboModel;

/// Hardware family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Quantum annealer (QUBO native).
    Annealer,
    /// Gate-based machine (runs QAOA / VQE / Grover circuits).
    GateBased,
}

/// Physical qubit connectivity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Connectivity {
    /// All-to-all couplers (trapped ions, small simulators).
    Complete,
    /// Chimera grid `C_m` (D-Wave 2X generation).
    Chimera(usize),
    /// Nearest-neighbor line (many superconducting chips).
    Linear,
}

/// A quantum device profile.
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    /// Marketing-grade name.
    pub name: String,
    /// Hardware family.
    pub kind: DeviceKind,
    /// Number of physical qubits.
    pub qubits: usize,
    /// Coupler topology.
    pub connectivity: Connectivity,
    /// Representative two-qubit error rate (0 = ideal).
    pub two_qubit_error: f64,
}

/// The outcome of checking a problem against a device.
#[derive(Debug, Clone, PartialEq)]
pub enum Fit {
    /// Fits directly (enough qubits, native couplings).
    Direct,
    /// Fits after minor embedding; reports physical qubits used and the
    /// longest chain.
    Embedded {
        /// Total physical qubits consumed by chains.
        physical_qubits: usize,
        /// Longest chain length.
        max_chain: usize,
    },
    /// Does not fit.
    TooLarge {
        /// Qubits required (logical).
        required: usize,
        /// Qubits available (physical).
        available: usize,
    },
}

impl Device {
    /// The D-Wave 2X profile used by Trummer & Koch \[20\]: Chimera `C_12`,
    /// ~1000 operational qubits.
    pub fn dwave_2x() -> Self {
        Self {
            name: "D-Wave 2X (simulated)".into(),
            kind: DeviceKind::Annealer,
            qubits: ChimeraGraph::new(12).n_qubits(),
            connectivity: Connectivity::Chimera(12),
            two_qubit_error: 0.0,
        }
    }

    /// A 5000-qubit annealer in the spirit of D-Wave Advantage \[32\]
    /// (topology approximated by a large Chimera grid; the real machine
    /// uses Pegasus).
    pub fn dwave_advantage() -> Self {
        Self {
            name: "D-Wave Advantage (simulated)".into(),
            kind: DeviceKind::Annealer,
            qubits: ChimeraGraph::new(25).n_qubits(),
            connectivity: Connectivity::Chimera(25),
            two_qubit_error: 0.0,
        }
    }

    /// The five-qubit superconducting chip of the paper's Fig. 1(b).
    pub fn five_qubit_chip() -> Self {
        Self {
            name: "5-qubit superconducting chip (Fig. 1b)".into(),
            kind: DeviceKind::GateBased,
            qubits: 5,
            connectivity: Connectivity::Linear,
            two_qubit_error: 0.01,
        }
    }

    /// An idealized gate-model simulator with all-to-all connectivity.
    pub fn ideal_simulator(qubits: usize) -> Self {
        Self {
            name: format!("ideal simulator ({qubits}q)"),
            kind: DeviceKind::GateBased,
            qubits,
            connectivity: Connectivity::Complete,
            two_qubit_error: 0.0,
        }
    }

    /// Checks whether a QUBO fits this device, attempting minor embedding
    /// when the topology is not complete.
    pub fn fit(&self, q: &QuboModel) -> Fit {
        let required = q.n_vars();
        if required > self.qubits {
            return Fit::TooLarge { required, available: self.qubits };
        }
        match self.connectivity {
            Connectivity::Complete => Fit::Direct,
            Connectivity::Linear => {
                // Fits directly only if couplings form a sub-path of the line.
                let native = q.quadratic_iter().all(|((i, j), _)| i.abs_diff(j) == 1);
                if native {
                    Fit::Direct
                } else {
                    // Swap-network style routing: chains not modeled for
                    // lines; report an embedding estimate of n^2/2 SWAPs by
                    // treating it as chain growth.
                    Fit::Embedded { physical_qubits: required, max_chain: required }
                }
            }
            Connectivity::Chimera(m) => {
                let graph = ChimeraGraph::new(m);
                let mut adjacency = vec![Vec::new(); q.n_vars()];
                for ((i, j), _) in q.quadratic_iter() {
                    adjacency[i].push(j);
                    adjacency[j].push(i);
                }
                match find_embedding_auto(&adjacency, &graph) {
                    Ok(emb) => Fit::Embedded {
                        physical_qubits: emb.physical_qubits(),
                        max_chain: emb.max_chain_length(),
                    },
                    Err(_) => Fit::TooLarge { required, available: self.qubits },
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_qubo(n: usize) -> QuboModel {
        let mut q = QuboModel::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                q.add_quadratic(i, j, 1.0);
            }
        }
        q
    }

    #[test]
    fn known_device_profiles() {
        assert_eq!(Device::dwave_2x().qubits, 1152);
        assert_eq!(Device::dwave_advantage().qubits, 5000);
        assert_eq!(Device::five_qubit_chip().qubits, 5);
    }

    #[test]
    fn ideal_simulator_fits_directly() {
        let d = Device::ideal_simulator(10);
        assert_eq!(d.fit(&dense_qubo(8)), Fit::Direct);
        assert!(matches!(d.fit(&dense_qubo(11)), Fit::TooLarge { .. }));
    }

    #[test]
    fn chimera_requires_embedding_for_dense_problems() {
        let d = Device::dwave_2x();
        match d.fit(&dense_qubo(10)) {
            Fit::Embedded { physical_qubits, max_chain } => {
                assert!(physical_qubits >= 10);
                assert!(max_chain >= 1);
            }
            other => panic!("expected embedding, got {other:?}"),
        }
    }

    #[test]
    fn linear_chip_accepts_native_chains() {
        let d = Device::five_qubit_chip();
        let mut q = QuboModel::new(4);
        q.add_quadratic(0, 1, 1.0).add_quadratic(1, 2, 1.0).add_quadratic(2, 3, 1.0);
        assert_eq!(d.fit(&q), Fit::Direct);
        let mut q2 = QuboModel::new(4);
        q2.add_quadratic(0, 3, 1.0);
        assert!(matches!(d.fit(&q2), Fit::Embedded { .. }));
    }
}
