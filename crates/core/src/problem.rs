//! The [`DmProblem`] abstraction: a data-management problem that can be
//! reformulated as a QUBO — step one of the paper's Fig. 2 roadmap.

use qdm_qubo::model::QuboModel;

/// A decoded solution in problem terms.
#[derive(Debug, Clone, PartialEq)]
pub struct Decoded {
    /// Whether the assignment satisfies all hard constraints of the problem.
    pub feasible: bool,
    /// The problem-level objective (lower is better), independent of
    /// penalty terms.
    pub objective: f64,
    /// A human-readable rendering of the solution.
    pub summary: String,
}

/// A data-management problem with a QUBO reformulation.
///
/// This is the contract every Table I encoding in `qdm-problems`
/// implements; the [`crate::pipeline`] runs any `DmProblem` through any
/// [`crate::solver::QuboSolver`].
pub trait DmProblem {
    /// Short problem name (e.g. `"MQO"`).
    fn name(&self) -> String;

    /// Number of binary variables in the encoding.
    fn n_vars(&self) -> usize;

    /// The QUBO reformulation (logical level).
    fn to_qubo(&self) -> QuboModel;

    /// Decodes a binary assignment back into problem terms.
    fn decode(&self, bits: &[bool]) -> Decoded;

    /// Attempts to repair an infeasible assignment into a feasible one
    /// (identity by default). Solvers use this as a post-processing hook —
    /// part of the hybrid classical/quantum methodology of Sec. III-C.2.
    fn repair(&self, bits: &[bool]) -> Vec<bool> {
        bits.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdm_qubo::penalty;

    /// A minimal test problem: pick exactly one of `n` options, minimizing
    /// a per-option cost.
    struct PickOne {
        costs: Vec<f64>,
    }

    impl DmProblem for PickOne {
        fn name(&self) -> String {
            "PickOne".into()
        }
        fn n_vars(&self) -> usize {
            self.costs.len()
        }
        fn to_qubo(&self) -> QuboModel {
            let mut q = QuboModel::new(self.costs.len());
            for (i, &c) in self.costs.iter().enumerate() {
                q.add_linear(i, c);
            }
            let a = penalty::penalty_weight(&q);
            let vars: Vec<usize> = (0..self.costs.len()).collect();
            penalty::exactly_one(&mut q, &vars, a);
            q
        }
        fn decode(&self, bits: &[bool]) -> Decoded {
            let chosen: Vec<usize> =
                bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
            let feasible = chosen.len() == 1;
            let objective = chosen.iter().map(|&i| self.costs[i]).sum::<f64>();
            Decoded { feasible, objective, summary: format!("chose {chosen:?}") }
        }
    }

    #[test]
    fn qubo_optimum_decodes_to_cheapest_option() {
        let p = PickOne { costs: vec![3.0, 1.0, 2.0] };
        let res = qdm_qubo::solve::solve_exact(&p.to_qubo());
        let d = p.decode(&res.bits);
        assert!(d.feasible);
        assert_eq!(d.objective, 1.0);
        assert_eq!(res.bits, vec![false, true, false]);
    }

    #[test]
    fn default_repair_is_identity() {
        let p = PickOne { costs: vec![1.0, 2.0] };
        assert_eq!(p.repair(&[true, true]), vec![true, true]);
    }
}
