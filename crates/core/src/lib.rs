//! # qdm-core — the reformulation roadmap
//!
//! The primary contribution of *"Quantum Data Management: From Theory to
//! Opportunities"* (ICDE 2024) is a methodology, crystallized in its Fig. 2:
//! **reformulate a data-management problem as a QUBO, then route it either
//! to a quantum annealer or — via QAOA, VQE, QPE or Grover — to a gate-based
//! machine**, with classical pre/post-processing around the quantum call
//! (Sec. III-C.2) under real device constraints (Sec. III-C.3).
//!
//! This crate is that methodology as a library:
//!
//! - [`problem`] — the [`problem::DmProblem`] contract (problem → QUBO →
//!   decode) implemented by every Table I encoding in `qdm-problems`;
//! - [`solver`] — the [`solver::QuboSolver`] trait and the full Fig. 2
//!   registry: simulated (quantum) annealing, QAOA, VQE, Grover minimum
//!   finding, plus classical baselines;
//! - [`pipeline`] — problem → presolve → decompose → solve → repair →
//!   decode, with telemetry;
//! - [`device`] — device profiles (D-Wave 2X, the Fig. 1b 5-qubit chip, …)
//!   and fit/embedding checks;
//! - [`roadmap`] — Table I and Fig. 2 as data, enforced by tests.

#![warn(missing_docs)]

pub mod device;
pub mod pipeline;
pub mod problem;
pub mod roadmap;
pub mod solver;

/// Convenient re-exports of the most used items.
pub mod prelude {
    pub use crate::device::{Connectivity, Device, DeviceKind, Fit};
    pub use crate::pipeline::{
        prepare_pipeline, run_pipeline, run_pipeline_compiled, run_pipeline_on_chimera,
        run_pipeline_with_qubo, run_prepared, EmbeddedPipelineReport, JobPriority, PipelineOptions,
        PipelineReport, PreparedPipeline,
    };
    pub use crate::problem::{Decoded, DmProblem};
    pub use crate::roadmap::{
        roadmap_paths, table_one, Algorithm, DbProblem, Formulation, Machine, RoadmapPath,
        SubProblem, TableOneRow,
    };
    pub use crate::solver::{
        full_registry, AdiabaticSolver, ExactSolver, GroverMinSolver, QaoaSolver, QuboSolver,
        RandomSolver, SaParallelSolver, SaSolver, SolverKind, SqaSolver, TabuSolver, VqeSolver,
    };
}

pub use prelude::*;
