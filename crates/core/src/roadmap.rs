//! Structured encodings of the paper's Table I and Fig. 2.
//!
//! These registries are *data*, consumed by the E1/E2 experiments: every
//! row of [`table_one`] must be executable end-to-end by this workspace,
//! and every path of [`roadmap_paths`] names a registered solver. Tests in
//! `qdm-bench` and the integration suite enforce exactly that.

use serde::{Deserialize, Serialize};

/// The database problem column of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DbProblem {
    /// Query optimization (Sec. III-B).
    QueryOptimization,
    /// Data integration (schema matching).
    DataIntegration,
    /// Transaction management (two-phase locking).
    TransactionManagement,
}

/// The subproblem column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SubProblem {
    /// Multiple query optimization.
    Mqo,
    /// Join ordering.
    JoinOrdering,
    /// Schema matching.
    SchemaMatching,
    /// Two-phase-locking transaction scheduling.
    TwoPhaseLocking,
}

/// The mathematical formulation column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Formulation {
    /// Quadratic unconstrained binary optimization.
    Qubo,
    /// A learned policy (no closed-form optimization model).
    LearnedPolicy,
}

/// The intermediate quantum algorithm column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Direct annealing (no gate-model intermediate algorithm).
    DirectAnnealing,
    /// Quantum Approximate Optimization Algorithm.
    Qaoa,
    /// Variational Quantum Eigensolver.
    Vqe,
    /// Variational quantum circuit (quantum ML).
    Vqc,
    /// Grover search / minimum finding.
    Grover,
    /// Quantum phase estimation.
    Qpe,
}

/// The quantum computer column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Machine {
    /// Annealing-based hardware.
    AnnealingBased,
    /// Gate-based hardware.
    GateBased,
    /// Both families were used.
    Both,
}

/// One row of the paper's Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableOneRow {
    /// Citation key(s) as printed in the paper.
    pub reference: &'static str,
    /// DB problem.
    pub problem: DbProblem,
    /// Subproblem.
    pub subproblem: SubProblem,
    /// Formulation.
    pub formulation: Formulation,
    /// Intermediate quantum algorithms (empty = direct annealing).
    pub algorithms: Vec<Algorithm>,
    /// Hardware family.
    pub machine: Machine,
}

/// The paper's Table I, row by row.
pub fn table_one() -> Vec<TableOneRow> {
    use Algorithm::*;
    vec![
        TableOneRow {
            reference: "[20] Trummer & Koch 2016",
            problem: DbProblem::QueryOptimization,
            subproblem: SubProblem::Mqo,
            formulation: Formulation::Qubo,
            algorithms: vec![DirectAnnealing],
            machine: Machine::AnnealingBased,
        },
        TableOneRow {
            reference: "[21],[22] Fankhauser et al.",
            problem: DbProblem::QueryOptimization,
            subproblem: SubProblem::Mqo,
            formulation: Formulation::Qubo,
            algorithms: vec![Qaoa],
            machine: Machine::GateBased,
        },
        TableOneRow {
            reference: "[23]-[25] Schoenberger et al.",
            problem: DbProblem::QueryOptimization,
            subproblem: SubProblem::JoinOrdering,
            formulation: Formulation::Qubo,
            algorithms: vec![Qaoa],
            machine: Machine::Both,
        },
        TableOneRow {
            reference: "[26] Nayak et al.",
            problem: DbProblem::QueryOptimization,
            subproblem: SubProblem::JoinOrdering,
            formulation: Formulation::Qubo,
            algorithms: vec![Qaoa, Vqe],
            machine: Machine::Both,
        },
        TableOneRow {
            reference: "[27] Winker et al.",
            problem: DbProblem::QueryOptimization,
            subproblem: SubProblem::JoinOrdering,
            formulation: Formulation::LearnedPolicy,
            algorithms: vec![Vqc],
            machine: Machine::GateBased,
        },
        TableOneRow {
            reference: "[28] Fritsch & Scherzinger",
            problem: DbProblem::DataIntegration,
            subproblem: SubProblem::SchemaMatching,
            formulation: Formulation::Qubo,
            algorithms: vec![Qaoa],
            machine: Machine::Both,
        },
        TableOneRow {
            reference: "[29]-[31] Bittner & Groppe",
            problem: DbProblem::TransactionManagement,
            subproblem: SubProblem::TwoPhaseLocking,
            formulation: Formulation::Qubo,
            algorithms: vec![DirectAnnealing, Grover],
            machine: Machine::AnnealingBased,
        },
    ]
}

/// One arrow of Fig. 2: a route from a QUBO to hardware.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoadmapPath {
    /// Algorithm box on the arrow (None = native annealing).
    pub algorithm: Option<Algorithm>,
    /// Destination machine family.
    pub machine: Machine,
    /// Name of the registered [`crate::solver::QuboSolver`] realizing it.
    pub solver_name: &'static str,
}

/// All Fig. 2 routes as realized by this workspace's solver registry.
pub fn roadmap_paths() -> Vec<RoadmapPath> {
    vec![
        RoadmapPath {
            algorithm: None,
            machine: Machine::AnnealingBased,
            solver_name: "simulated-quantum-annealing",
        },
        RoadmapPath {
            algorithm: Some(Algorithm::Qaoa),
            machine: Machine::GateBased,
            solver_name: "qaoa",
        },
        RoadmapPath {
            algorithm: Some(Algorithm::Vqe),
            machine: Machine::GateBased,
            solver_name: "vqe",
        },
        RoadmapPath {
            algorithm: Some(Algorithm::Grover),
            machine: Machine::GateBased,
            solver_name: "grover-minimum",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::full_registry;

    #[test]
    fn table_one_has_all_seven_rows() {
        let rows = table_one();
        assert_eq!(rows.len(), 7);
        // Coverage of the three DB problems.
        assert!(rows.iter().any(|r| r.problem == DbProblem::QueryOptimization));
        assert!(rows.iter().any(|r| r.problem == DbProblem::DataIntegration));
        assert!(rows.iter().any(|r| r.problem == DbProblem::TransactionManagement));
        // All but the VQC row are QUBO formulations, as the paper notes.
        let qubo_rows = rows.iter().filter(|r| r.formulation == Formulation::Qubo).count();
        assert_eq!(qubo_rows, 6);
    }

    #[test]
    fn every_roadmap_path_names_a_registered_solver() {
        let names: Vec<String> = full_registry().iter().map(|s| s.name().to_string()).collect();
        for path in roadmap_paths() {
            assert!(
                names.iter().any(|n| n == path.solver_name),
                "no solver registered for {path:?}"
            );
        }
    }
}
