//! The end-to-end reformulation pipeline of Fig. 2: problem → QUBO →
//! (presolve / decomposition) → solver → decode → validate.
//!
//! The optional classical stages implement Sec. III-C.2's hybrid
//! methodology: [`PipelineOptions::presolve`] fixes dominated variables and
//! [`PipelineOptions::decompose`] solves independent connected components
//! separately — precisely the query-clustering preprocessing Trummer & Koch
//! used to "significantly reduce the required number of qubits".

use crate::problem::{Decoded, DmProblem};
use crate::solver::QuboSolver;
use qdm_qubo::compiled::CompiledQubo;
use qdm_qubo::model::QuboModel;
use qdm_qubo::presolve::presolve_probed;
use qdm_qubo::probe::{NoProbe, StageProbe};
use rand::rngs::StdRng;
use std::borrow::Cow;
use std::sync::Arc;
use std::time::Instant;

/// Scheduling priority of a job carrying these options.
///
/// Priority is a *scheduling* hint only: the `qdm-runtime` job queue serves
/// higher-priority jobs first (FIFO within a level), but a job's result is
/// identical at every level — priority is therefore excluded from result
/// identity (cache keys).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum JobPriority {
    /// Served after everything else: bulk/backfill work.
    Low,
    /// The default lane.
    #[default]
    Normal,
    /// Jumps every queued `Normal`/`Low` job: interactive traffic.
    High,
}

/// Pipeline configuration.
#[derive(Clone, Default)]
pub struct PipelineOptions {
    /// Fix dominated variables classically before solving.
    pub presolve: bool,
    /// Split the QUBO into connected components and solve each separately.
    pub decompose: bool,
    /// Apply the problem's repair hook to the decoded assignment.
    pub repair: bool,
    /// Queue priority (scheduling only; never affects the computed result).
    pub priority: JobPriority,
    /// Optional stage profiling probe: presolve fixpoint rounds and solver
    /// restart counters are reported through it when set. Observation only
    /// — results are bit-identical with or without a probe — so, like
    /// `priority`, it is excluded from result identity (cache keys).
    pub probe: Option<Arc<dyn StageProbe>>,
}

impl std::fmt::Debug for PipelineOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineOptions")
            .field("presolve", &self.presolve)
            .field("decompose", &self.decompose)
            .field("repair", &self.repair)
            .field("priority", &self.priority)
            .field("probe", &self.probe.as_ref().map(|_| "<probe>"))
            .finish()
    }
}

/// Telemetry and results from one pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Problem name.
    pub problem: String,
    /// Solver name.
    pub solver: String,
    /// Logical variable count of the full encoding.
    pub n_vars: usize,
    /// Largest sub-QUBO actually handed to the solver (== `n_vars` without
    /// decomposition/presolve).
    pub max_subproblem_vars: usize,
    /// Number of connected components solved.
    pub components: usize,
    /// Variables fixed by presolve.
    pub presolve_fixed: usize,
    /// Final assignment.
    pub bits: Vec<bool>,
    /// QUBO energy of the final assignment.
    pub energy: f64,
    /// Decoded, problem-level view.
    pub decoded: Decoded,
    /// Total solver evaluations.
    pub evaluations: u64,
    /// End-to-end wall time in seconds.
    pub seconds: f64,
}

/// Runs a problem through a solver with the given options.
pub fn run_pipeline(
    problem: &dyn DmProblem,
    solver: &dyn QuboSolver,
    options: &PipelineOptions,
    rng: &mut StdRng,
) -> PipelineReport {
    run_pipeline_with_qubo(problem, problem.to_qubo(), solver, options, rng)
}

/// [`run_pipeline`] with the problem's QUBO already built. Callers that need
/// the encoding for their own bookkeeping hand it in instead of paying
/// [`DmProblem::to_qubo`] twice; `qubo` must be exactly `problem.to_qubo()`.
/// Compiles once and delegates to [`run_pipeline_compiled`].
pub fn run_pipeline_with_qubo(
    problem: &dyn DmProblem,
    qubo: QuboModel,
    solver: &dyn QuboSolver,
    options: &PipelineOptions,
    rng: &mut StdRng,
) -> PipelineReport {
    let compiled = qubo.compile();
    run_pipeline_compiled(problem, &qubo, &compiled, solver, options, rng)
}

/// The compile-once pipeline: every stage — presolve's first fixpoint
/// round, connected-component discovery, the solver's hot loop, and the
/// final energy check — runs on the *same* `compiled` form, so a job
/// compiles exactly once on the fast path (no presolve/decompose). This is
/// the entry point `qdm-runtime` drives: it compiles each cache-miss job
/// into one `Arc<CompiledQubo>`, fingerprints it, and hands the same
/// compilation to every backend (including all participants of a portfolio
/// race).
///
/// `compiled` must be the compilation of exactly `qubo`, which must be
/// exactly `problem.to_qubo()`. Results are bit-identical to the historical
/// model-driven pipeline.
pub fn run_pipeline_compiled(
    problem: &dyn DmProblem,
    qubo: &QuboModel,
    compiled: &CompiledQubo,
    solver: &dyn QuboSolver,
    options: &PipelineOptions,
    rng: &mut StdRng,
) -> PipelineReport {
    let prepared = prepare_pipeline(qubo, compiled, options);
    run_prepared(problem, &prepared, solver, options, rng)
}

/// The deterministic, seed-independent front half of the compiled pipeline
/// — presolve and connected-component decomposition — computed **once per
/// job** and shared by every backend that solves it. A portfolio race hands
/// the same `PreparedPipeline` to all k participants, so the fixpoint
/// rounds, component extraction, and the reduced/component compilations are
/// paid once instead of k times; a single-backend job goes through the same
/// type via [`run_pipeline_compiled`].
pub struct PreparedPipeline<'a> {
    /// The full-model compilation (final energies are evaluated on it).
    compiled: &'a CompiledQubo,
    n_vars: usize,
    /// Assignment template with presolve-fixed variables already set.
    base_bits: Vec<bool>,
    presolve_fixed: usize,
    /// `free_map[local] = global` over the working model's variables.
    free_map: Vec<usize>,
    /// Working compilation the solver runs on when not decomposing.
    work_compiled: Cow<'a, CompiledQubo>,
    /// Pre-extracted, pre-compiled components (with their local→working
    /// variable maps) when decomposing.
    comps: Option<Vec<(CompiledQubo, Vec<usize>)>>,
    max_sub: usize,
    components: usize,
    /// Wall time the preparation itself took, folded into every
    /// participant's reported `seconds`.
    prepare_seconds: f64,
}

/// Builds the shared front half of the pipeline: presolve (reusing the
/// job's compilation for its first round) and component
/// discovery/compilation. `compiled` must be the compilation of exactly
/// `qubo`. Deterministic — no RNG is consumed — so the result is
/// participant-independent by construction.
pub fn prepare_pipeline<'a>(
    qubo: &'a QuboModel,
    compiled: &'a CompiledQubo,
    options: &PipelineOptions,
) -> PreparedPipeline<'a> {
    let start = Instant::now();
    let n = qubo.n_vars();
    let mut base_bits = vec![false; n];

    // Stage 1: presolve. Without it the working model *is* the input —
    // borrow it, no clone, no recompile.
    let (work_qubo, work_compiled, free_map, presolve_fixed): (
        Cow<QuboModel>,
        Cow<CompiledQubo>,
        Vec<usize>,
        usize,
    ) = if options.presolve {
        let probe: &dyn StageProbe = options.probe.as_deref().unwrap_or(&NoProbe);
        let p = presolve_probed(qubo, compiled, probe);
        for &(g, v) in &p.fixed {
            base_bits[g] = v;
        }
        let reduced_compiled = p.reduced.compile();
        (Cow::Owned(p.reduced), Cow::Owned(reduced_compiled), p.free_vars, p.fixed.len())
    } else {
        (Cow::Borrowed(qubo), Cow::Borrowed(compiled), (0..n).collect(), 0)
    };

    // Stage 2a: decomposition. Component models are fresh extractions;
    // each compiles once here and every participant solves the shared
    // compilation.
    let (comps, max_sub, components) = if options.decompose {
        let comps: Vec<(CompiledQubo, Vec<usize>)> = work_qubo
            .connected_components_with(&work_compiled)
            .into_iter()
            .map(|(sub, local_map)| (sub.compile(), local_map))
            .collect();
        let max_sub = comps.iter().map(|(c, _)| c.n_vars()).max().unwrap_or(0);
        let n_comps = comps.len();
        (Some(comps), max_sub, n_comps)
    } else {
        (None, work_compiled.n_vars(), 1)
    };

    PreparedPipeline {
        compiled,
        n_vars: n,
        base_bits,
        presolve_fixed,
        free_map,
        work_compiled,
        comps,
        max_sub,
        components,
        prepare_seconds: start.elapsed().as_secs_f64(),
    }
}

/// The per-participant back half: solve (the only stage that consumes the
/// RNG), repair, decode. `options` must be the same options the
/// preparation was built with. Results are bit-identical to the historical
/// single-pass pipeline — component solves run on compilations of exactly
/// the models the solver used to compile itself.
pub fn run_prepared(
    problem: &dyn DmProblem,
    prepared: &PreparedPipeline<'_>,
    solver: &dyn QuboSolver,
    options: &PipelineOptions,
    rng: &mut StdRng,
) -> PipelineReport {
    let start = Instant::now();
    let mut bits = prepared.base_bits.clone();
    let mut evaluations = 0u64;

    // Stage 2b: solve. With a probe attached the solver's observed entry
    // point reports restart counters through it; without one the plain
    // compiled path runs — both produce bit-identical results.
    let probe: Option<&dyn StageProbe> = options.probe.as_deref();
    let solve = |c: &CompiledQubo, rng: &mut StdRng| match probe {
        Some(p) => solver.solve_observed(c, rng, p),
        None => solver.solve_compiled(c, rng),
    };
    if let Some(comps) = &prepared.comps {
        for (sub_compiled, local_map) in comps {
            let res = solve(sub_compiled, rng);
            evaluations += res.evaluations;
            for (local, &within_work) in local_map.iter().enumerate() {
                bits[prepared.free_map[within_work]] = res.bits[local];
            }
        }
    } else {
        let res = solve(&prepared.work_compiled, rng);
        evaluations += res.evaluations;
        for (local, &global) in prepared.free_map.iter().enumerate() {
            bits[global] = res.bits[local];
        }
    }

    // Stage 3: repair + decode.
    if options.repair {
        bits = problem.repair(&bits);
    }
    let energy = prepared.compiled.energy(&bits);
    let decoded = problem.decode(&bits);
    PipelineReport {
        problem: problem.name(),
        solver: solver.name().to_string(),
        n_vars: prepared.n_vars,
        max_subproblem_vars: prepared.max_sub,
        components: prepared.components,
        presolve_fixed: prepared.presolve_fixed,
        bits,
        energy,
        decoded,
        evaluations,
        seconds: prepared.prepare_seconds + start.elapsed().as_secs_f64(),
    }
}

/// Report from the full *physical* pipeline of Trummer & Koch \[20\]:
/// logical QUBO → minor embedding onto the annealer topology → physical
/// Ising solve → majority-vote unembedding → decode.
#[derive(Debug, Clone)]
pub struct EmbeddedPipelineReport {
    /// The standard pipeline telemetry and decoded solution.
    pub report: PipelineReport,
    /// Physical qubits consumed by chains.
    pub physical_qubits: usize,
    /// Longest chain.
    pub max_chain: usize,
    /// Fraction of chains broken in the returned sample.
    pub chain_break_rate: f64,
}

/// Runs a problem at the *physical* level: embeds its QUBO onto a Chimera
/// graph, solves the embedded Ising with simulated annealing, unembeds by
/// majority vote, optionally repairs, and decodes.
///
/// Returns `Err` if the problem does not embed into the given topology.
pub fn run_pipeline_on_chimera(
    problem: &dyn DmProblem,
    graph: &qdm_anneal::embedding::ChimeraGraph,
    options: &PipelineOptions,
    rng: &mut StdRng,
) -> Result<EmbeddedPipelineReport, qdm_anneal::embedding::EmbedError> {
    use qdm_anneal::embedding::{chain_strength, embed_ising, find_embedding_auto, unembed};
    use qdm_anneal::sa::{simulated_annealing, SaParams};
    use qdm_qubo::ising::IsingModel;

    let start = std::time::Instant::now();
    let qubo = problem.to_qubo();
    let logical = IsingModel::from_qubo(&qubo);
    let mut adjacency = vec![Vec::new(); qubo.n_vars()];
    for ((i, j), _) in qubo.quadratic_iter() {
        adjacency[i].push(j);
        adjacency[j].push(i);
    }
    let embedding = find_embedding_auto(&adjacency, graph)?;
    let strength = chain_strength(&logical);
    let physical = embed_ising(&logical, &embedding, graph, strength);
    let physical_qubo = physical.to_qubo();
    // Chain couplings flatten the landscape; give the physical anneal more
    // effort than a logical solve would need.
    let params = SaParams { sweeps: 600, restarts: 8, ..SaParams::scaled_to(&physical_qubo) };
    let res = simulated_annealing(&physical_qubo, &params, rng);
    let physical_spins: Vec<bool> = res.bits.iter().map(|&b| !b).collect();
    let (logical_spins, stats) = unembed(&physical_spins, &embedding);
    let mut bits = IsingModel::bits_from_spins(&logical_spins);
    if options.repair {
        bits = problem.repair(&bits);
    }
    let energy = qubo.energy(&bits);
    let decoded = problem.decode(&bits);
    Ok(EmbeddedPipelineReport {
        report: PipelineReport {
            problem: problem.name(),
            solver: "chimera-embedded-annealer".to_string(),
            n_vars: qubo.n_vars(),
            max_subproblem_vars: physical_qubo.n_vars(),
            components: 1,
            presolve_fixed: 0,
            bits,
            energy,
            decoded,
            evaluations: res.evaluations,
            seconds: start.elapsed().as_secs_f64(),
        },
        physical_qubits: embedding.physical_qubits(),
        max_chain: embedding.max_chain_length(),
        chain_break_rate: stats.break_rate(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Decoded;
    use crate::solver::{ExactSolver, SaSolver};
    use qdm_qubo::penalty;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two independent pick-one groups — decomposable by construction.
    struct TwoGroups;

    impl DmProblem for TwoGroups {
        fn name(&self) -> String {
            "TwoGroups".into()
        }
        fn n_vars(&self) -> usize {
            6
        }
        fn to_qubo(&self) -> QuboModel {
            let mut q = QuboModel::new(6);
            for (i, c) in [3.0, 1.0, 2.0, 5.0, 4.0, 0.5].iter().enumerate() {
                q.add_linear(i, *c);
            }
            penalty::exactly_one(&mut q, &[0, 1, 2], 50.0);
            penalty::exactly_one(&mut q, &[3, 4, 5], 50.0);
            q
        }
        fn decode(&self, bits: &[bool]) -> Decoded {
            let g1: Vec<usize> = (0..3).filter(|&i| bits[i]).collect();
            let g2: Vec<usize> = (3..6).filter(|&i| bits[i]).collect();
            Decoded {
                feasible: g1.len() == 1 && g2.len() == 1,
                objective: 0.0,
                summary: format!("{g1:?} {g2:?}"),
            }
        }
    }

    #[test]
    fn plain_pipeline_solves() {
        let mut rng = StdRng::seed_from_u64(1);
        let report = run_pipeline(&TwoGroups, &ExactSolver, &PipelineOptions::default(), &mut rng);
        assert!(report.decoded.feasible);
        assert_eq!(report.bits, vec![false, true, false, false, false, true]);
        assert_eq!(report.components, 1);
    }

    #[test]
    fn decomposition_splits_groups_and_preserves_optimum() {
        let mut rng = StdRng::seed_from_u64(2);
        let report = run_pipeline(
            &TwoGroups,
            &ExactSolver,
            &PipelineOptions { decompose: true, ..Default::default() },
            &mut rng,
        );
        assert_eq!(report.components, 2);
        assert!(report.max_subproblem_vars <= 3);
        assert!(report.decoded.feasible);
        assert_eq!(report.bits, vec![false, true, false, false, false, true]);
    }

    #[test]
    fn pipeline_with_all_stages_and_heuristic_solver() {
        let mut rng = StdRng::seed_from_u64(3);
        let report = run_pipeline(
            &TwoGroups,
            &SaSolver::default(),
            &PipelineOptions {
                decompose: true,
                presolve: true,
                repair: true,
                ..Default::default()
            },
            &mut rng,
        );
        assert!(report.decoded.feasible, "report: {report:?}");
    }

    #[test]
    fn embedded_pipeline_reaches_the_same_optimum() {
        let mut rng = StdRng::seed_from_u64(4);
        let graph = qdm_anneal::embedding::ChimeraGraph::new(3);
        let embedded = run_pipeline_on_chimera(
            &TwoGroups,
            &graph,
            &PipelineOptions { repair: true, ..Default::default() },
            &mut rng,
        )
        .expect("6 variables embed into C_3");
        assert!(embedded.report.decoded.feasible);
        assert_eq!(
            embedded.report.bits,
            vec![false, true, false, false, false, true],
            "physical pipeline should still find the optimum"
        );
        assert!(embedded.physical_qubits >= 6);
        assert!(embedded.max_chain >= 1);
    }
}
