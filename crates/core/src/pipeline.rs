//! The end-to-end reformulation pipeline of Fig. 2: problem → QUBO →
//! (presolve / decomposition) → solver → decode → validate.
//!
//! The optional classical stages implement Sec. III-C.2's hybrid
//! methodology: [`PipelineOptions::presolve`] fixes dominated variables and
//! [`PipelineOptions::decompose`] solves independent connected components
//! separately — precisely the query-clustering preprocessing Trummer & Koch
//! used to "significantly reduce the required number of qubits".

use crate::problem::{Decoded, DmProblem};
use crate::solver::QuboSolver;
use qdm_qubo::model::QuboModel;
use qdm_qubo::presolve::presolve;
use rand::rngs::StdRng;
use std::time::Instant;

/// Scheduling priority of a job carrying these options.
///
/// Priority is a *scheduling* hint only: the `qdm-runtime` job queue serves
/// higher-priority jobs first (FIFO within a level), but a job's result is
/// identical at every level — priority is therefore excluded from result
/// identity (cache keys).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum JobPriority {
    /// Served after everything else: bulk/backfill work.
    Low,
    /// The default lane.
    #[default]
    Normal,
    /// Jumps every queued `Normal`/`Low` job: interactive traffic.
    High,
}

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineOptions {
    /// Fix dominated variables classically before solving.
    pub presolve: bool,
    /// Split the QUBO into connected components and solve each separately.
    pub decompose: bool,
    /// Apply the problem's repair hook to the decoded assignment.
    pub repair: bool,
    /// Queue priority (scheduling only; never affects the computed result).
    pub priority: JobPriority,
}

/// Telemetry and results from one pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Problem name.
    pub problem: String,
    /// Solver name.
    pub solver: String,
    /// Logical variable count of the full encoding.
    pub n_vars: usize,
    /// Largest sub-QUBO actually handed to the solver (== `n_vars` without
    /// decomposition/presolve).
    pub max_subproblem_vars: usize,
    /// Number of connected components solved.
    pub components: usize,
    /// Variables fixed by presolve.
    pub presolve_fixed: usize,
    /// Final assignment.
    pub bits: Vec<bool>,
    /// QUBO energy of the final assignment.
    pub energy: f64,
    /// Decoded, problem-level view.
    pub decoded: Decoded,
    /// Total solver evaluations.
    pub evaluations: u64,
    /// End-to-end wall time in seconds.
    pub seconds: f64,
}

/// Runs a problem through a solver with the given options.
pub fn run_pipeline(
    problem: &dyn DmProblem,
    solver: &dyn QuboSolver,
    options: &PipelineOptions,
    rng: &mut StdRng,
) -> PipelineReport {
    run_pipeline_with_qubo(problem, problem.to_qubo(), solver, options, rng)
}

/// [`run_pipeline`] with the problem's QUBO already built. Callers that need
/// the encoding for their own bookkeeping (e.g. the `qdm-runtime` cache
/// fingerprints it before dispatch) hand it in instead of paying
/// [`DmProblem::to_qubo`] twice; `qubo` must be exactly `problem.to_qubo()`.
pub fn run_pipeline_with_qubo(
    problem: &dyn DmProblem,
    qubo: QuboModel,
    solver: &dyn QuboSolver,
    options: &PipelineOptions,
    rng: &mut StdRng,
) -> PipelineReport {
    let start = Instant::now();
    let n = qubo.n_vars();
    let mut bits = vec![false; n];
    let mut evaluations = 0u64;
    let mut components = 1usize;
    let mut presolve_fixed = 0usize;
    let mut max_sub = 0usize;

    // Stage 1: presolve.
    let (work_qubo, free_map): (QuboModel, Vec<usize>) = if options.presolve {
        let p = presolve(&qubo);
        presolve_fixed = p.fixed.len();
        for &(g, v) in &p.fixed {
            bits[g] = v;
        }
        (p.reduced.clone(), p.free_vars)
    } else {
        (qubo.clone(), (0..n).collect())
    };

    // Stage 2: decomposition + solve.
    if options.decompose {
        let comps = work_qubo.connected_components();
        components = comps.len();
        for (sub, local_map) in comps {
            max_sub = max_sub.max(sub.n_vars());
            let res = solver.solve(&sub, rng);
            evaluations += res.evaluations;
            for (local, &within_work) in local_map.iter().enumerate() {
                bits[free_map[within_work]] = res.bits[local];
            }
        }
    } else {
        max_sub = work_qubo.n_vars();
        let res = solver.solve(&work_qubo, rng);
        evaluations += res.evaluations;
        for (local, &global) in free_map.iter().enumerate() {
            bits[global] = res.bits[local];
        }
    }

    // Stage 3: repair + decode.
    if options.repair {
        bits = problem.repair(&bits);
    }
    let energy = qubo.energy(&bits);
    let decoded = problem.decode(&bits);
    PipelineReport {
        problem: problem.name(),
        solver: solver.name().to_string(),
        n_vars: n,
        max_subproblem_vars: max_sub,
        components,
        presolve_fixed,
        bits,
        energy,
        decoded,
        evaluations,
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// Report from the full *physical* pipeline of Trummer & Koch \[20\]:
/// logical QUBO → minor embedding onto the annealer topology → physical
/// Ising solve → majority-vote unembedding → decode.
#[derive(Debug, Clone)]
pub struct EmbeddedPipelineReport {
    /// The standard pipeline telemetry and decoded solution.
    pub report: PipelineReport,
    /// Physical qubits consumed by chains.
    pub physical_qubits: usize,
    /// Longest chain.
    pub max_chain: usize,
    /// Fraction of chains broken in the returned sample.
    pub chain_break_rate: f64,
}

/// Runs a problem at the *physical* level: embeds its QUBO onto a Chimera
/// graph, solves the embedded Ising with simulated annealing, unembeds by
/// majority vote, optionally repairs, and decodes.
///
/// Returns `Err` if the problem does not embed into the given topology.
pub fn run_pipeline_on_chimera(
    problem: &dyn DmProblem,
    graph: &qdm_anneal::embedding::ChimeraGraph,
    options: &PipelineOptions,
    rng: &mut StdRng,
) -> Result<EmbeddedPipelineReport, qdm_anneal::embedding::EmbedError> {
    use qdm_anneal::embedding::{chain_strength, embed_ising, find_embedding_auto, unembed};
    use qdm_anneal::sa::{simulated_annealing, SaParams};
    use qdm_qubo::ising::IsingModel;

    let start = std::time::Instant::now();
    let qubo = problem.to_qubo();
    let logical = IsingModel::from_qubo(&qubo);
    let mut adjacency = vec![Vec::new(); qubo.n_vars()];
    for ((i, j), _) in qubo.quadratic_iter() {
        adjacency[i].push(j);
        adjacency[j].push(i);
    }
    let embedding = find_embedding_auto(&adjacency, graph)?;
    let strength = chain_strength(&logical);
    let physical = embed_ising(&logical, &embedding, graph, strength);
    let physical_qubo = physical.to_qubo();
    // Chain couplings flatten the landscape; give the physical anneal more
    // effort than a logical solve would need.
    let params = SaParams { sweeps: 600, restarts: 8, ..SaParams::scaled_to(&physical_qubo) };
    let res = simulated_annealing(&physical_qubo, &params, rng);
    let physical_spins: Vec<bool> = res.bits.iter().map(|&b| !b).collect();
    let (logical_spins, stats) = unembed(&physical_spins, &embedding);
    let mut bits = IsingModel::bits_from_spins(&logical_spins);
    if options.repair {
        bits = problem.repair(&bits);
    }
    let energy = qubo.energy(&bits);
    let decoded = problem.decode(&bits);
    Ok(EmbeddedPipelineReport {
        report: PipelineReport {
            problem: problem.name(),
            solver: "chimera-embedded-annealer".to_string(),
            n_vars: qubo.n_vars(),
            max_subproblem_vars: physical_qubo.n_vars(),
            components: 1,
            presolve_fixed: 0,
            bits,
            energy,
            decoded,
            evaluations: res.evaluations,
            seconds: start.elapsed().as_secs_f64(),
        },
        physical_qubits: embedding.physical_qubits(),
        max_chain: embedding.max_chain_length(),
        chain_break_rate: stats.break_rate(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Decoded;
    use crate::solver::{ExactSolver, SaSolver};
    use qdm_qubo::penalty;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two independent pick-one groups — decomposable by construction.
    struct TwoGroups;

    impl DmProblem for TwoGroups {
        fn name(&self) -> String {
            "TwoGroups".into()
        }
        fn n_vars(&self) -> usize {
            6
        }
        fn to_qubo(&self) -> QuboModel {
            let mut q = QuboModel::new(6);
            for (i, c) in [3.0, 1.0, 2.0, 5.0, 4.0, 0.5].iter().enumerate() {
                q.add_linear(i, *c);
            }
            penalty::exactly_one(&mut q, &[0, 1, 2], 50.0);
            penalty::exactly_one(&mut q, &[3, 4, 5], 50.0);
            q
        }
        fn decode(&self, bits: &[bool]) -> Decoded {
            let g1: Vec<usize> = (0..3).filter(|&i| bits[i]).collect();
            let g2: Vec<usize> = (3..6).filter(|&i| bits[i]).collect();
            Decoded {
                feasible: g1.len() == 1 && g2.len() == 1,
                objective: 0.0,
                summary: format!("{g1:?} {g2:?}"),
            }
        }
    }

    #[test]
    fn plain_pipeline_solves() {
        let mut rng = StdRng::seed_from_u64(1);
        let report = run_pipeline(&TwoGroups, &ExactSolver, &PipelineOptions::default(), &mut rng);
        assert!(report.decoded.feasible);
        assert_eq!(report.bits, vec![false, true, false, false, false, true]);
        assert_eq!(report.components, 1);
    }

    #[test]
    fn decomposition_splits_groups_and_preserves_optimum() {
        let mut rng = StdRng::seed_from_u64(2);
        let report = run_pipeline(
            &TwoGroups,
            &ExactSolver,
            &PipelineOptions { decompose: true, ..Default::default() },
            &mut rng,
        );
        assert_eq!(report.components, 2);
        assert!(report.max_subproblem_vars <= 3);
        assert!(report.decoded.feasible);
        assert_eq!(report.bits, vec![false, true, false, false, false, true]);
    }

    #[test]
    fn pipeline_with_all_stages_and_heuristic_solver() {
        let mut rng = StdRng::seed_from_u64(3);
        let report = run_pipeline(
            &TwoGroups,
            &SaSolver::default(),
            &PipelineOptions {
                decompose: true,
                presolve: true,
                repair: true,
                ..Default::default()
            },
            &mut rng,
        );
        assert!(report.decoded.feasible, "report: {report:?}");
    }

    #[test]
    fn embedded_pipeline_reaches_the_same_optimum() {
        let mut rng = StdRng::seed_from_u64(4);
        let graph = qdm_anneal::embedding::ChimeraGraph::new(3);
        let embedded = run_pipeline_on_chimera(
            &TwoGroups,
            &graph,
            &PipelineOptions { repair: true, ..Default::default() },
            &mut rng,
        )
        .expect("6 variables embed into C_3");
        assert!(embedded.report.decoded.feasible);
        assert_eq!(
            embedded.report.bits,
            vec![false, true, false, false, false, true],
            "physical pipeline should still find the optimum"
        );
        assert!(embedded.physical_qubits >= 6);
        assert!(embedded.max_chain >= 1);
    }
}
