//! The `QuboSolver` compiled-vs-model contract: for every registered
//! backend, `solve(q, rng)` and `solve_compiled(&q.compile(), rng)` are
//! bit-identical under the same seed. The default `solve` wrapper
//! guarantees this by construction; the gate-based routes override both
//! methods (direct model path vs. lossless decompile), so the equivalence
//! is worth proving rather than assuming.

use qdm_core::solver::full_registry;
use qdm_qubo::model::QuboModel;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn model(seed: u64, n: usize) -> QuboModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut q = QuboModel::new(n);
    for i in 0..n {
        q.add_linear(i, rng.random_range(-2.0..2.0));
        for j in (i + 1)..n {
            if rng.random::<f64>() < 0.4 {
                q.add_quadratic(i, j, rng.random_range(-2.0..2.0));
            }
        }
    }
    q.add_offset(0.5);
    q
}

#[test]
fn every_backend_solves_model_and_compilation_identically() {
    let q = model(3, 8);
    let c = q.compile();
    for solver in full_registry() {
        let mut rng_model = StdRng::seed_from_u64(17);
        let mut rng_compiled = StdRng::seed_from_u64(17);
        let via_model = solver.solve(&q, &mut rng_model);
        let via_compiled = solver.solve_compiled(&c, &mut rng_compiled);
        assert_eq!(via_model.bits, via_compiled.bits, "{}: bits differ", solver.name());
        assert_eq!(
            via_model.energy.to_bits(),
            via_compiled.energy.to_bits(),
            "{}: energy differs",
            solver.name()
        );
        assert_eq!(
            via_model.evaluations,
            via_compiled.evaluations,
            "{}: evaluation counts differ",
            solver.name()
        );
        assert_eq!(
            via_model.certified_optimal,
            via_compiled.certified_optimal,
            "{}",
            solver.name()
        );
    }
}

#[test]
fn one_shared_compilation_serves_many_backends() {
    // The compile-once shape the runtime relies on: one compilation, every
    // backend solving it, each agreeing with its own model-path result.
    let q = model(11, 8);
    let c = q.compile();
    for solver in full_registry() {
        let mut rng = StdRng::seed_from_u64(29);
        let res = solver.solve_compiled(&c, &mut rng);
        assert!(
            (q.energy(&res.bits) - res.energy).abs() < 1e-9,
            "{}: inconsistent energy on the shared compilation",
            solver.name()
        );
    }
}
