//! Stage profiling hooks: a lightweight callback surface solver hot paths
//! report progress through.
//!
//! A [`StageProbe`] is threaded from the runtime's `PipelineOptions` down
//! into the presolve fixpoint and each annealer's restart loop, so traces
//! can carry backend-internal progress — sweep counts, acceptance rates,
//! restarts, presolve rounds — not just wall time. The hooks fire at
//! *per-round* / *per-restart* granularity: hot inner loops accumulate
//! plain local counters and report once per restart, so an attached probe
//! costs a handful of calls per solve and a disabled one costs nothing.
//!
//! Implementations must be cheap and non-blocking; they may be called from
//! racing worker threads concurrently.

use std::sync::Arc;

/// Per-restart statistics reported by an annealing/search backend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestartStats {
    /// Static name of the reporting solver loop (e.g. `"sa"`, `"tabu"`).
    pub solver: &'static str,
    /// Zero-based restart index within this solve.
    pub restart: u64,
    /// Sweeps (full passes / iterations) this restart executed.
    pub sweeps: u64,
    /// Move proposals evaluated (typically `sweeps * n_vars`).
    pub proposals: u64,
    /// Proposals accepted (applied flips).
    pub accepted: u64,
}

/// A resumable solver checkpoint, emitted at restart boundaries through
/// [`StageProbe::on_checkpoint`].
///
/// Carries everything a crashed solve needs to continue bit-identically:
/// the next restart index, the best assignment/energy found so far, the
/// evaluation count consumed, and — for solvers that thread one caller RNG
/// through all restarts (`sa`, `tabu`) — the generator's captured state.
/// Solvers that derive an independent per-restart seed (`sa-parallel`,
/// `sa-colored`) leave `rng_state` as `None`: the restart index alone
/// determines their streams.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverCheckpoint {
    /// Static name of the emitting solver loop (e.g. `"sa"`, `"tabu"`).
    pub solver: &'static str,
    /// Restarts completed so far; a resume starts at this index.
    pub next_restart: u64,
    /// Solver evaluations consumed so far (including the baseline).
    pub evaluations: u64,
    /// Best assignment found across the completed restarts.
    pub best_bits: Vec<bool>,
    /// Energy of `best_bits`.
    pub best_energy: f64,
    /// Caller-RNG state captured at the restart boundary (xoshiro256++
    /// words, see `rand::rngs::StdRng::state`); `None` when restart streams
    /// are derived from the restart index instead.
    pub rng_state: Option<[u64; 4]>,
}

/// Observer for solver-internal progress events.
///
/// All methods have empty defaults so implementors opt into exactly the
/// events they care about. Probes are shared across threads during
/// portfolio races, hence `Send + Sync`.
pub trait StageProbe: Send + Sync {
    /// One presolve fixpoint round finished, fixing `fixed_in_round`
    /// variables (the final, converged round reports 0).
    fn on_presolve_round(&self, round: u64, fixed_in_round: u64) {
        let _ = (round, fixed_in_round);
    }

    /// One solver restart finished with the given counters.
    fn on_restart(&self, stats: &RestartStats) {
        let _ = stats;
    }

    /// Whether this probe wants [`StageProbe::on_checkpoint`] payloads.
    /// Building a [`SolverCheckpoint`] clones the best-so-far assignment,
    /// so solver loops ask first and skip the construction entirely for
    /// probes that leave this `false` — the default — keeping unobserved
    /// runs exactly as cheap as before the hook existed.
    fn wants_checkpoints(&self) -> bool {
        false
    }

    /// A resumable checkpoint at a restart boundary, emitted only when
    /// [`StageProbe::wants_checkpoints`] answered `true`. Observation only:
    /// capturing the state consumes no randomness, so checkpointed runs
    /// stay bit-identical to unobserved ones.
    fn on_checkpoint(&self, checkpoint: &SolverCheckpoint) {
        let _ = checkpoint;
    }

    /// Cooperative stop checkpoint, polled by solver loops at restart and
    /// sweep boundaries. Returning `true` asks the solver to stop early and
    /// return its best-so-far result; the default never stops, and the
    /// poll consumes no randomness, so probes that leave this alone keep
    /// solver output bit-identical to an unprobed run. The runtime's
    /// per-job deadline enforcement is built on this hook.
    fn should_stop(&self) -> bool {
        false
    }
}

/// The no-op probe: every hook compiles to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProbe;

impl StageProbe for NoProbe {}

/// Fans every event out to two probes — used by the runtime to combine its
/// own trace collection with a caller-supplied probe.
pub struct TeeProbe(pub Arc<dyn StageProbe>, pub Arc<dyn StageProbe>);

impl StageProbe for TeeProbe {
    fn on_presolve_round(&self, round: u64, fixed_in_round: u64) {
        self.0.on_presolve_round(round, fixed_in_round);
        self.1.on_presolve_round(round, fixed_in_round);
    }

    fn on_restart(&self, stats: &RestartStats) {
        self.0.on_restart(stats);
        self.1.on_restart(stats);
    }

    fn wants_checkpoints(&self) -> bool {
        self.0.wants_checkpoints() || self.1.wants_checkpoints()
    }

    fn on_checkpoint(&self, checkpoint: &SolverCheckpoint) {
        self.0.on_checkpoint(checkpoint);
        self.1.on_checkpoint(checkpoint);
    }

    fn should_stop(&self) -> bool {
        self.0.should_stop() || self.1.should_stop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Default)]
    struct Counting {
        rounds: AtomicU64,
        restarts: AtomicU64,
    }

    impl StageProbe for Counting {
        fn on_presolve_round(&self, _round: u64, _fixed: u64) {
            self.rounds.fetch_add(1, Ordering::Relaxed);
        }
        fn on_restart(&self, _stats: &RestartStats) {
            self.restarts.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn tee_fans_out_to_both_probes() {
        let a = Arc::new(Counting::default());
        let b = Arc::new(Counting::default());
        let tee = TeeProbe(a.clone(), b.clone());
        tee.on_presolve_round(0, 3);
        tee.on_restart(&RestartStats { solver: "sa", ..Default::default() });
        for probe in [&a, &b] {
            assert_eq!(probe.rounds.load(Ordering::Relaxed), 1);
            assert_eq!(probe.restarts.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn no_probe_ignores_everything() {
        NoProbe.on_presolve_round(0, 0);
        NoProbe.on_restart(&RestartStats::default());
    }
}
