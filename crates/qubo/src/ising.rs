//! Ising model and lossless QUBO ⇄ Ising conversion.
//!
//! Quantum annealers (and QAOA cost Hamiltonians) are natively expressed in
//! Ising form `H(s) = sum_i h_i s_i + sum_{i<j} J_ij s_i s_j + c` over spins
//! `s_i in {-1, +1}`. The conversion uses `x_i = (1 - s_i)/2`, i.e. spin up
//! (+1) encodes the binary 0.

use crate::model::QuboModel;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An Ising Hamiltonian over `n` spins.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IsingModel {
    n_spins: usize,
    /// Local fields `h_i`.
    h: Vec<f64>,
    /// Couplings `J_ij` with `i < j`.
    j: BTreeMap<(usize, usize), f64>,
    /// Constant energy shift.
    constant: f64,
}

impl IsingModel {
    /// Creates an all-zero Hamiltonian over `n` spins.
    pub fn new(n_spins: usize) -> Self {
        Self { n_spins, h: vec![0.0; n_spins], j: BTreeMap::new(), constant: 0.0 }
    }

    /// Number of spins.
    pub fn n_spins(&self) -> usize {
        self.n_spins
    }

    /// Local field on spin `i`.
    pub fn field(&self, i: usize) -> f64 {
        self.h[i]
    }

    /// Coupling between spins `i` and `j` (0 when absent).
    pub fn coupling(&self, i: usize, j: usize) -> f64 {
        let key = if i < j { (i, j) } else { (j, i) };
        self.j.get(&key).copied().unwrap_or(0.0)
    }

    /// Constant term.
    pub fn constant(&self) -> f64 {
        self.constant
    }

    /// Adds to the local field of spin `i`.
    pub fn add_field(&mut self, i: usize, w: f64) -> &mut Self {
        assert!(i < self.n_spins);
        self.h[i] += w;
        self
    }

    /// Adds to the coupling of pair `{i, j}`.
    ///
    /// # Panics
    /// Panics if `i == j` (spin squared is constant; fold into `constant`).
    pub fn add_coupling(&mut self, i: usize, j: usize, w: f64) -> &mut Self {
        assert!(i < self.n_spins && j < self.n_spins && i != j);
        let key = if i < j { (i, j) } else { (j, i) };
        let e = self.j.entry(key).or_insert(0.0);
        *e += w;
        if *e == 0.0 {
            self.j.remove(&key);
        }
        self
    }

    /// Adds to the constant shift.
    pub fn add_constant(&mut self, c: f64) -> &mut Self {
        self.constant += c;
        self
    }

    /// Iterates non-zero couplings `((i, j), J_ij)` with `i < j`.
    pub fn couplings_iter(&self) -> impl Iterator<Item = ((usize, usize), f64)> + '_ {
        self.j.iter().map(|(&k, &v)| (k, v))
    }

    /// Energy of a spin configuration (`true` = spin +1).
    pub fn energy(&self, spins: &[bool]) -> f64 {
        assert_eq!(spins.len(), self.n_spins);
        let val = |b: bool| if b { 1.0 } else { -1.0 };
        let mut e = self.constant;
        for (hi, &s) in self.h.iter().zip(spins) {
            e += hi * val(s);
        }
        for (&(i, j), &w) in &self.j {
            e += w * val(spins[i]) * val(spins[j]);
        }
        e
    }

    /// Converts a QUBO into the equivalent Ising Hamiltonian: energies agree
    /// exactly under `x_i = (1 - s_i)/2`.
    pub fn from_qubo(q: &QuboModel) -> Self {
        let n = q.n_vars();
        let mut ising = IsingModel::new(n);
        ising.constant = q.offset();
        for i in 0..n {
            let a = q.linear(i);
            // a * x_i = a/2 - (a/2) s_i
            ising.constant += a / 2.0;
            ising.h[i] -= a / 2.0;
        }
        for ((i, j), w) in q.quadratic_iter() {
            // w x_i x_j = w/4 (1 - s_i)(1 - s_j)
            //           = w/4 - w/4 s_i - w/4 s_j + w/4 s_i s_j
            ising.constant += w / 4.0;
            ising.h[i] -= w / 4.0;
            ising.h[j] -= w / 4.0;
            ising.add_coupling(i, j, w / 4.0);
        }
        ising
    }

    /// Converts back to a QUBO with identical energies.
    pub fn to_qubo(&self) -> QuboModel {
        let mut q = QuboModel::new(self.n_spins);
        // s_i = 1 - 2 x_i.
        let mut offset = self.constant;
        for (i, &hi) in self.h.iter().enumerate() {
            // h s = h - 2 h x
            offset += hi;
            q.add_linear(i, -2.0 * hi);
        }
        for (&(i, j), &w) in &self.j {
            // J s_i s_j = J (1 - 2x_i)(1 - 2x_j)
            //           = J - 2J x_i - 2J x_j + 4J x_i x_j
            offset += w;
            q.add_linear(i, -2.0 * w);
            q.add_linear(j, -2.0 * w);
            q.add_quadratic(i, j, 4.0 * w);
        }
        q.add_offset(offset);
        q
    }

    /// Converts a binary assignment (`x_i`) to spins (`true` = +1 = `x_i=0`).
    pub fn spins_from_bits(bits: &[bool]) -> Vec<bool> {
        bits.iter().map(|&b| !b).collect()
    }

    /// Converts spins back to binary variables.
    pub fn bits_from_spins(spins: &[bool]) -> Vec<bool> {
        spins.iter().map(|&s| !s).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::bits_from_index;

    #[test]
    fn qubo_ising_energies_agree() {
        let mut q = QuboModel::new(4);
        q.add_linear(0, 1.0)
            .add_linear(3, -2.5)
            .add_quadratic(0, 1, 2.0)
            .add_quadratic(1, 2, -1.5)
            .add_quadratic(2, 3, 0.5)
            .add_offset(0.7);
        let ising = IsingModel::from_qubo(&q);
        for idx in 0..16 {
            let bits = bits_from_index(idx, 4);
            let spins = IsingModel::spins_from_bits(&bits);
            assert!((q.energy(&bits) - ising.energy(&spins)).abs() < 1e-12, "mismatch at {idx}");
        }
    }

    #[test]
    fn roundtrip_preserves_energy() {
        let mut q = QuboModel::new(3);
        q.add_linear(1, -4.0).add_quadratic(0, 2, 3.0).add_offset(-1.0);
        let back = IsingModel::from_qubo(&q).to_qubo();
        for idx in 0..8 {
            let bits = bits_from_index(idx, 3);
            assert!((q.energy(&bits) - back.energy(&bits)).abs() < 1e-12);
        }
    }

    #[test]
    fn spin_bit_conversions_invert() {
        let bits = vec![true, false, true];
        assert_eq!(IsingModel::bits_from_spins(&IsingModel::spins_from_bits(&bits)), bits);
    }

    #[test]
    fn ising_energy_signs() {
        let mut m = IsingModel::new(2);
        m.add_field(0, 1.0).add_coupling(0, 1, -2.0);
        // s = (+1, +1): 1 - 2 = -1.
        assert_eq!(m.energy(&[true, true]), -1.0);
        // s = (-1, +1): -1 + 2 = 1.
        assert_eq!(m.energy(&[false, true]), 1.0);
    }

    #[test]
    fn zero_coupling_removed() {
        let mut m = IsingModel::new(2);
        m.add_coupling(0, 1, 1.0).add_coupling(1, 0, -1.0);
        assert_eq!(m.couplings_iter().count(), 0);
    }
}
