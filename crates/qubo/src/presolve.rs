//! QUBO presolve: fixing variables whose optimal value is decidable locally.
//!
//! This is part of the hybrid classical/quantum toolbox of Sec. III-C.2: a
//! classical preprocessing pass that shrinks the problem a quantum device
//! must handle. We implement first-order persistency: a variable whose
//! linear coefficient dominates the total weight of its couplings can be
//! fixed without losing the optimum.

use crate::compiled::CompiledQubo;
use crate::model::QuboModel;
use crate::probe::{NoProbe, StageProbe};

/// Result of a presolve pass.
#[derive(Debug, Clone)]
pub struct Presolved {
    /// The reduced model over the remaining free variables.
    pub reduced: QuboModel,
    /// `map[local] = global` variable index mapping.
    pub free_vars: Vec<usize>,
    /// Fixed assignments as `(global_index, value)`.
    pub fixed: Vec<(usize, bool)>,
}

impl Presolved {
    /// Reconstructs a full assignment from a solution of the reduced model.
    pub fn lift(&self, reduced_bits: &[bool], n_vars: usize) -> Vec<bool> {
        assert_eq!(reduced_bits.len(), self.free_vars.len());
        let mut full = vec![false; n_vars];
        for (&g, &b) in self.free_vars.iter().zip(reduced_bits) {
            full[g] = b;
        }
        for &(g, v) in &self.fixed {
            full[g] = v;
        }
        full
    }
}

/// Applies first-order persistency repeatedly until a fixpoint.
///
/// Rules (for minimization):
/// - if `linear[i] + sum(min(0, w_ij)) >= 0`, setting `x_i = 0` is never
///   worse — fix to 0;
/// - if `linear[i] + sum(max(0, w_ij)) <= 0`, setting `x_i = 1` is never
///   worse — fix to 1.
pub fn presolve(q: &QuboModel) -> Presolved {
    presolve_with(q, &q.compile())
}

/// [`presolve`] over an existing compilation of `q`, so compile-once
/// callers (the `qdm-runtime` pipeline) reuse the job's shared CSR for the
/// first fixpoint round instead of paying a fresh compile. Later rounds
/// operate on the mutated working model and must recompile regardless.
///
/// `compiled` must be the compilation of exactly `q`.
pub fn presolve_with(q: &QuboModel, compiled: &CompiledQubo) -> Presolved {
    presolve_probed(q, compiled, &NoProbe)
}

/// [`presolve_with`] reporting each fixpoint round to `probe` — round index
/// and the number of variables fixed that round (the final, converged round
/// reports 0). The probe fires once per round, outside the per-variable
/// scan, so profiling adds no per-variable cost.
pub fn presolve_probed(
    q: &QuboModel,
    compiled: &CompiledQubo,
    probe: &dyn StageProbe,
) -> Presolved {
    debug_assert_eq!(compiled.n_vars(), q.n_vars(), "compilation belongs to another model");
    let n = q.n_vars();
    let mut fixed: Vec<Option<bool>> = vec![None; n];
    let mut work = q.clone();
    let mut first_round = true;
    let mut round: u64 = 0;
    loop {
        // One O(n + m) CSR compile per round replaces the per-row Vec
        // allocations of `neighbor_lists` (the first round reuses the
        // caller's compilation — `work` is still an untouched clone of `q`
        // there). The rows are a snapshot of the round's start state: the
        // fixing branch below mutates `work` mid-round, and reads of the
        // stale rows stay correct only because couplings to fixed partners
        // are filtered via `fixed[..]` (the same invariant the original
        // adjacency-list code relied on).
        let recompiled;
        let csr = if first_round {
            first_round = false;
            compiled
        } else {
            recompiled = work.compile();
            &recompiled
        };
        let mut fixed_this_round: u64 = 0;
        for i in 0..n {
            if fixed[i].is_some() {
                continue;
            }
            let lin = work.linear(i);
            let (nbrs, ws) = csr.row(i);
            let mut neg = 0.0f64;
            let mut pos = 0.0f64;
            for (&j, &w) in nbrs.iter().zip(ws) {
                // Couplings to already-fixed variables were folded into the
                // linear term when the partner was fixed, so exclude them.
                if fixed[j as usize].is_none() {
                    neg += w.min(0.0);
                    pos += w.max(0.0);
                }
            }
            let value = if lin + neg >= 0.0 {
                Some(false)
            } else if lin + pos <= 0.0 {
                Some(true)
            } else {
                None
            };
            if let Some(v) = value {
                fixed[i] = Some(v);
                fixed_this_round += 1;
                // Fold x_i = v into the model.
                if v {
                    work.add_offset(work.linear(i));
                }
                let neighbors: Vec<(usize, f64)> =
                    nbrs.iter().zip(ws).map(|(&j, &w)| (j as usize, w)).collect();
                for (j, w) in neighbors {
                    // Remove coupling; if v = 1 it becomes linear on j.
                    work.add_quadratic(i, j, -w);
                    if v {
                        work.add_linear(j, w);
                    }
                }
                // Clear the linear term of i.
                let l = work.linear(i);
                work.add_linear(i, -l);
            }
        }
        probe.on_presolve_round(round, fixed_this_round);
        round += 1;
        if fixed_this_round == 0 {
            break;
        }
    }
    // Build the reduced model over free variables.
    let free_vars: Vec<usize> = (0..n).filter(|&i| fixed[i].is_none()).collect();
    let local_of: std::collections::HashMap<usize, usize> =
        free_vars.iter().enumerate().map(|(l, &g)| (g, l)).collect();
    let mut reduced = QuboModel::new(free_vars.len());
    reduced.add_offset(work.offset());
    for (&g, &l) in &local_of {
        reduced.add_linear(l, work.linear(g));
    }
    for ((i, j), w) in work.quadratic_iter() {
        if let (Some(&li), Some(&lj)) = (local_of.get(&i), local_of.get(&j)) {
            reduced.add_quadratic(li, lj, w);
        }
    }
    Presolved {
        reduced,
        free_vars,
        fixed: fixed.iter().enumerate().filter_map(|(i, v)| v.map(|b| (i, b))).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::solve_exact;

    #[test]
    fn fixes_dominated_variables() {
        let mut q = QuboModel::new(3);
        // x0 has strongly positive linear: fix to 0.
        // x1 has strongly negative linear: fix to 1.
        q.add_linear(0, 10.0).add_linear(1, -10.0).add_quadratic(0, 1, 1.0);
        q.add_linear(2, 0.5).add_quadratic(1, 2, -2.0);
        let p = presolve(&q);
        assert!(p.fixed.contains(&(0, false)));
        assert!(p.fixed.contains(&(1, true)));
    }

    #[test]
    fn presolve_preserves_optimum() {
        let mut q = QuboModel::new(6);
        q.add_linear(0, 5.0)
            .add_linear(1, -7.0)
            .add_linear(2, 0.3)
            .add_quadratic(0, 2, 1.0)
            .add_quadratic(1, 3, -0.5)
            .add_quadratic(2, 3, 2.0)
            .add_quadratic(3, 4, -1.5)
            .add_quadratic(4, 5, 0.7)
            .add_offset(2.0);
        let full = solve_exact(&q);
        let p = presolve(&q);
        assert!(p.reduced.n_vars() < q.n_vars(), "presolve should fix something");
        let red = solve_exact(&p.reduced);
        let lifted = p.lift(&red.bits, q.n_vars());
        assert!(
            (q.energy(&lifted) - full.energy).abs() < 1e-9,
            "lifted {} vs optimal {}",
            q.energy(&lifted),
            full.energy
        );
    }

    #[test]
    fn no_fixing_when_nothing_dominates() {
        let mut q = QuboModel::new(2);
        q.add_linear(0, -1.0).add_linear(1, -1.0).add_quadratic(0, 1, 3.0);
        let p = presolve(&q);
        assert_eq!(p.reduced.n_vars(), 2);
        assert!(p.fixed.is_empty());
    }

    #[test]
    fn probed_presolve_reports_rounds_and_matches_unprobed() {
        use crate::probe::StageProbe;
        use std::sync::Mutex;

        #[derive(Default)]
        struct Rounds(Mutex<Vec<(u64, u64)>>);
        impl StageProbe for Rounds {
            fn on_presolve_round(&self, round: u64, fixed: u64) {
                self.0.lock().unwrap().push((round, fixed));
            }
        }

        let mut q = QuboModel::new(3);
        q.add_linear(0, 10.0).add_linear(1, -10.0).add_quadratic(0, 1, 1.0);
        q.add_linear(2, 0.5).add_quadratic(1, 2, -2.0);
        let compiled = q.compile();
        let probe = Rounds::default();
        let probed = presolve_probed(&q, &compiled, &probe);
        let plain = presolve_with(&q, &compiled);
        assert_eq!(probed.fixed, plain.fixed, "probing must not change the result");
        let rounds = probe.0.lock().unwrap().clone();
        assert!(rounds.len() >= 2, "at least one fixing round plus the converged round");
        assert_eq!(rounds.last().unwrap().1, 0, "final round is the converged one");
        let total: u64 = rounds.iter().map(|&(_, f)| f).sum();
        assert_eq!(total as usize, probed.fixed.len());
        for (i, &(round, _)) in rounds.iter().enumerate() {
            assert_eq!(round, i as u64, "rounds are reported in order");
        }
    }

    #[test]
    fn lift_roundtrips_indices() {
        let mut q = QuboModel::new(4);
        q.add_linear(0, 10.0).add_linear(2, -10.0);
        q.add_quadratic(1, 3, -1.0); // keep 1 and 3 free? linear 0 both -> fixed
        let p = presolve(&q);
        // Whatever got fixed, lifting a solution must produce 4 bits.
        let bits = vec![true; p.reduced.n_vars()];
        assert_eq!(p.lift(&bits, 4).len(), 4);
    }
}
