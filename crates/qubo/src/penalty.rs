//! Penalty-term builders for encoding constraints into QUBO objectives.
//!
//! Every Table I reformulation turns hard constraints ("each query selects
//! exactly one plan", "an attribute matches at most one partner") into
//! quadratic penalty terms. These builders add the standard encodings with a
//! caller-chosen penalty weight `a`; a feasible assignment contributes zero
//! penalty energy and every violation contributes at least `a`.

use crate::model::QuboModel;

/// Adds `a * (sum_{i in vars} x_i - 1)^2`: *exactly one* of `vars` is set.
///
/// Expansion: `sum x_i - 2 sum x_i + 1` linear part plus pairwise `2 x_i x_j`,
/// i.e. `a * (1 - sum x_i + 2 sum_{i<j} x_i x_j)` using `x^2 = x`.
pub fn exactly_one(q: &mut QuboModel, vars: &[usize], a: f64) {
    q.add_offset(a);
    for &i in vars {
        q.add_linear(i, -a);
    }
    for (k, &i) in vars.iter().enumerate() {
        for &j in &vars[k + 1..] {
            q.add_quadratic(i, j, 2.0 * a);
        }
    }
}

/// Adds `a * sum_{i<j} x_i x_j`: *at most one* of `vars` is set.
pub fn at_most_one(q: &mut QuboModel, vars: &[usize], a: f64) {
    for (k, &i) in vars.iter().enumerate() {
        for &j in &vars[k + 1..] {
            q.add_quadratic(i, j, a);
        }
    }
}

/// Adds `a * (sum_i c_i x_i - target)^2` for an integer-weighted equality
/// constraint.
pub fn weighted_equality(q: &mut QuboModel, terms: &[(usize, f64)], target: f64, a: f64) {
    // (sum c_i x_i - t)^2 = sum c_i^2 x_i + 2 sum_{i<j} c_i c_j x_i x_j
    //                       - 2t sum c_i x_i + t^2
    q.add_offset(a * target * target);
    for &(i, c) in terms {
        q.add_linear(i, a * (c * c - 2.0 * target * c));
    }
    for (k, &(i, ci)) in terms.iter().enumerate() {
        for &(j, cj) in &terms[k + 1..] {
            q.add_quadratic(i, j, 2.0 * a * ci * cj);
        }
    }
}

/// Adds `a * x_i (1 - x_j)`: implication `x_i => x_j`.
pub fn implies(q: &mut QuboModel, i: usize, j: usize, a: f64) {
    q.add_linear(i, a);
    q.add_quadratic(i, j, -a);
}

/// Adds `a * x_i x_j`: forbids both being set simultaneously (conflict edge).
pub fn conflict(q: &mut QuboModel, i: usize, j: usize, a: f64) {
    q.add_quadratic(i, j, a);
}

/// Penalty weight heuristic: a value strictly dominating the objective range
/// so that no single constraint violation can be traded for objective gain.
pub fn penalty_weight(objective: &QuboModel) -> f64 {
    let span = objective.max_abs_coefficient();
    // Every violated constraint costs at least `a`; make `a` larger than the
    // largest conceivable single-term objective improvement.
    2.0 * span.max(1.0) * objective.n_vars().max(1) as f64
}

/// Counts how many of the `exactly_one` groups are violated by `x`.
pub fn count_one_hot_violations(groups: &[Vec<usize>], x: &[bool]) -> usize {
    groups.iter().filter(|g| g.iter().filter(|&&i| x[i]).count() != 1).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::bits_from_index;

    #[test]
    fn exactly_one_zero_iff_one_hot() {
        let mut q = QuboModel::new(3);
        exactly_one(&mut q, &[0, 1, 2], 5.0);
        for idx in 0..8usize {
            let bits = bits_from_index(idx, 3);
            let ones = idx.count_ones();
            let e = q.energy(&bits);
            if ones == 1 {
                assert!(e.abs() < 1e-12, "one-hot {idx} should have zero energy");
            } else {
                assert!(e >= 5.0 - 1e-12, "violation {idx} must cost >= a, got {e}");
            }
        }
    }

    #[test]
    fn at_most_one_allows_empty() {
        let mut q = QuboModel::new(3);
        at_most_one(&mut q, &[0, 1, 2], 4.0);
        assert_eq!(q.energy(&[false, false, false]), 0.0);
        assert_eq!(q.energy(&[true, false, false]), 0.0);
        assert_eq!(q.energy(&[true, true, false]), 4.0);
        assert_eq!(q.energy(&[true, true, true]), 12.0);
    }

    #[test]
    fn weighted_equality_measures_squared_residual() {
        let mut q = QuboModel::new(3);
        // 1*x0 + 2*x1 + 3*x2 == 3
        weighted_equality(&mut q, &[(0, 1.0), (1, 2.0), (2, 3.0)], 3.0, 1.0);
        // Feasible: x2 alone, or x0+x1.
        assert!(q.energy(&[false, false, true]).abs() < 1e-12);
        assert!(q.energy(&[true, true, false]).abs() < 1e-12);
        // Infeasible: residual^2.
        assert!((q.energy(&[true, false, false]) - 4.0).abs() < 1e-12);
        assert!((q.energy(&[true, true, true]) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn implies_penalizes_only_broken_implication() {
        let mut q = QuboModel::new(2);
        implies(&mut q, 0, 1, 3.0);
        assert_eq!(q.energy(&[false, false]), 0.0);
        assert_eq!(q.energy(&[false, true]), 0.0);
        assert_eq!(q.energy(&[true, true]), 0.0);
        assert_eq!(q.energy(&[true, false]), 3.0);
    }

    #[test]
    fn conflict_penalizes_pair() {
        let mut q = QuboModel::new(2);
        conflict(&mut q, 0, 1, 2.0);
        assert_eq!(q.energy(&[true, true]), 2.0);
        assert_eq!(q.energy(&[true, false]), 0.0);
    }

    #[test]
    fn violation_counter() {
        let groups = vec![vec![0, 1], vec![2, 3]];
        assert_eq!(count_one_hot_violations(&groups, &[true, false, false, false]), 1);
        assert_eq!(count_one_hot_violations(&groups, &[true, false, true, false]), 0);
        assert_eq!(count_one_hot_violations(&groups, &[true, true, true, true]), 2);
    }

    #[test]
    fn penalty_weight_dominates() {
        let mut obj = QuboModel::new(4);
        obj.add_linear(0, 3.0).add_quadratic(1, 2, -7.0);
        assert!(penalty_weight(&obj) > 7.0);
    }
}
