//! # qdm-qubo — QUBO and Ising models
//!
//! The shared optimization substrate of the reproduction: Sec. III of the
//! paper observes that the recent data-management works in its Table I are
//! "mostly mapped \[to\] a so-called quadratic unconstrained binary
//! optimization (QUBO) problem". This crate provides that common currency:
//!
//! - [`model`] — sparse QUBO models with incremental flip deltas and
//!   connected-component decomposition (the hybrid step of Sec. III-C.2);
//! - [`compiled`] — build-once flat CSR compilation ([`CompiledQubo`]) that
//!   every solver hot loop in the workspace runs on;
//! - [`ising`] — lossless QUBO ⇄ Ising conversion for annealers and QAOA;
//! - [`penalty`] — constraint-to-penalty builders (exactly-one, at-most-one,
//!   weighted equality, implication, conflict);
//! - [`solve`] — certified exact enumeration plus random/greedy baselines and
//!   the shared [`solve::SolveResult`] telemetry record;
//! - [`presolve`](mod@presolve) — first-order persistency variable fixing;
//! - [`probe`] — stage profiling hooks ([`StageProbe`]) solver loops report
//!   restart/round progress through.
//!
//! ```
//! use qdm_qubo::prelude::*;
//!
//! let mut q = QuboModel::new(2);
//! q.add_linear(0, -1.0);
//! q.add_quadratic(0, 1, 2.0);
//! let best = solve_exact(&q);
//! assert_eq!(best.bits, vec![true, false]);
//! assert_eq!(best.energy, -1.0);
//! ```

#![warn(missing_docs)]

pub mod compiled;
pub mod ising;
pub mod model;
pub mod penalty;
pub mod presolve;
pub mod probe;
pub mod solve;

/// Convenient re-exports of the most used items.
pub mod prelude {
    pub use crate::compiled::{compilation_count, Coloring, CompiledQubo};
    pub use crate::ising::IsingModel;
    pub use crate::model::{bits_from_index, index_from_bits, QuboModel};
    pub use crate::penalty;
    pub use crate::presolve::{presolve, presolve_probed, presolve_with, Presolved};
    pub use crate::probe::{NoProbe, RestartStats, StageProbe, TeeProbe};
    pub use crate::solve::{
        solve_exact, solve_exact_compiled, solve_greedy_descent, solve_greedy_descent_compiled,
        solve_random, solve_random_compiled, SolveResult, MAX_EXACT_VARS,
    };
}

pub use prelude::*;
