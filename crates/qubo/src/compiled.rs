//! Build-once, flat CSR compilation of a [`QuboModel`] for solver hot loops.
//!
//! Every workload in the paper's Table I — join ordering, MQO, transaction
//! scheduling — bottoms out in repeated QUBO energy and flip-delta
//! evaluations. [`QuboModel`] stores its couplings in a `BTreeMap`, which is
//! the right structure for incremental construction and canonical
//! fingerprinting but a poor one for the millions of evaluations a single
//! annealing run performs: every energy walks tree nodes pointer-by-pointer
//! and every generic [`QuboModel::flip_delta`] scans all `m` couplings.
//!
//! [`CompiledQubo`] is the solver-facing form: one [`QuboModel::compile`]
//! call flattens the model into CSR adjacency — a row-offset array plus
//! parallel neighbor/weight slices, both laid out contiguously — alongside a
//! dense linear-coefficient array, the constant offset, and degree
//! statistics. On it, `energy` is a linear scan over two flat arrays,
//! `flip_delta` is `O(deg(i))`, and [`CompiledQubo::local_fields`] seeds the
//! incremental bookkeeping every annealer in `qdm-anneal` uses.
//!
//! Floating-point note: all sums here visit coefficients in exactly the
//! order [`QuboModel`]'s own methods do (linear terms by index, couplings in
//! sorted `(i, j)` order, per-row neighbors ascending), so compiled results
//! are bit-identical to the model-backed slow path, not merely close.

use crate::model::QuboModel;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of [`CompiledQubo`] constructions.
///
/// This is the compile-once observability hook: `qdm-runtime` compiles each
/// cache-miss job exactly once and shares the compilation across
/// fingerprinting, presolve, and every racing backend, and its tests assert
/// that invariant by diffing this counter around a solve. A relaxed atomic
/// increment per compilation is far below measurement noise.
static COMPILATIONS: AtomicU64 = AtomicU64::new(0);

/// Total number of [`CompiledQubo`] constructions in this process so far.
/// Intended for tests and benchmarks asserting compile-once behavior, not
/// for application logic.
pub fn compilation_count() -> u64 {
    COMPILATIONS.load(Ordering::Relaxed)
}

/// A [`QuboModel`] compiled to flat CSR form for fast repeated evaluation.
///
/// Construction is `O(n + m)`; the representation is immutable. See the
/// [module docs](self) for why solvers use this instead of the model.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledQubo {
    n_vars: usize,
    offset: f64,
    /// Dense linear coefficients, indexed by variable.
    linear: Vec<f64>,
    /// CSR row offsets: variable `i`'s neighbors live at
    /// `neighbors[row_offsets[i]..row_offsets[i + 1]]`.
    row_offsets: Vec<usize>,
    /// Neighbor indices, ascending within each row (`u32` keeps the array
    /// half the size of `usize` on 64-bit targets — better cache density).
    neighbors: Vec<u32>,
    /// Coupling weights, parallel to `neighbors`.
    weights: Vec<f64>,
    /// Absolute index where row `i`'s `j > i` suffix begins (rows are
    /// ascending, so the upper-triangular half of each row is contiguous).
    /// Lets [`Self::energy`] visit every coupling exactly once instead of
    /// scanning both symmetric halves.
    upper_starts: Vec<usize>,
    /// Largest row degree.
    max_degree: usize,
}

/// Builds symmetric CSR adjacency arrays — `(row_offsets, neighbors,
/// weights)` — from an edge stream of upper-triangular `((i, j), w)` pairs
/// with sorted keys (what [`QuboModel::quadratic_iter`] and the Ising
/// model's `couplings_iter` both yield). `edges` is called twice: once to
/// count degrees, once to place entries. Sorted input makes every row's
/// neighbor list ascending without a sort pass.
///
/// # Panics
/// Panics if `n_vars` exceeds `u32::MAX` (the CSR index width).
pub fn build_symmetric_csr<I>(
    n_vars: usize,
    edges: impl Fn() -> I,
) -> (Vec<usize>, Vec<u32>, Vec<f64>)
where
    I: Iterator<Item = ((usize, usize), f64)>,
{
    assert!(n_vars <= u32::MAX as usize, "{n_vars} variables exceeds CSR index width");
    // Degree count, then prefix-sum into row offsets, then a placement
    // pass: the classic two-pass CSR build, no per-row Vec allocations.
    let mut row_offsets = vec![0usize; n_vars + 1];
    for ((i, j), _) in edges() {
        row_offsets[i + 1] += 1;
        row_offsets[j + 1] += 1;
    }
    for i in 0..n_vars {
        row_offsets[i + 1] += row_offsets[i];
    }
    let nnz = row_offsets[n_vars];
    let mut neighbors = vec![0u32; nnz];
    let mut weights = vec![0.0f64; nnz];
    let mut cursor = row_offsets[..n_vars].to_vec();
    for ((i, j), w) in edges() {
        neighbors[cursor[i]] = j as u32;
        weights[cursor[i]] = w;
        cursor[i] += 1;
        neighbors[cursor[j]] = i as u32;
        weights[cursor[j]] = w;
        cursor[j] += 1;
    }
    (row_offsets, neighbors, weights)
}

/// The canonical-relabeling algorithm behind both
/// [`QuboModel::canonical_form`] and [`CompiledQubo::canonical_form`],
/// expressed over raw symmetric CSR arrays (what [`build_symmetric_csr`]
/// returns) so callers can canonicalize a model *without* constructing a
/// `CompiledQubo` — the [`compilation_count`] ledger stays untouched.
/// Returns `(fingerprint, perm)` with `perm[original_index] =
/// canonical_index`.
///
/// Variables are sorted by a coefficient signature — FNV-1a over the linear
/// term, refined twice over the sorted `(coupling weight, neighbor
/// signature)` multiset, a Weisfeiler-Lehman-style pass — and the relabeled
/// coefficient stream is hashed exactly as [`QuboModel::fingerprint`] would
/// hash the relabeled model, without materializing it.
pub fn canonical_form_csr(
    n_vars: usize,
    offset: f64,
    linear: &[f64],
    row_offsets: &[usize],
    neighbors: &[u32],
    weights: &[f64],
) -> (u64, Vec<usize>) {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mix = |mut h: u64, word: u64| -> u64 {
        for byte in word.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    };
    let f64_bits = |x: f64| if x == 0.0 { 0u64 } else { x.to_bits() };
    let row = |i: usize| {
        let span = row_offsets[i]..row_offsets[i + 1];
        (&neighbors[span.clone()], &weights[span])
    };

    // Weisfeiler-Lehman-style signature refinement: seed each variable
    // with its linear coefficient, refine twice over the sorted
    // (coupling weight, neighbor signature) multiset.
    let mut sig: Vec<u64> = linear.iter().map(|&w| mix(FNV_OFFSET, f64_bits(w))).collect();
    for _round in 0..2 {
        let refined: Vec<u64> = (0..n_vars)
            .map(|i| {
                let (nbrs, ws) = row(i);
                let mut tokens: Vec<(u64, u64)> =
                    nbrs.iter().zip(ws).map(|(&j, &w)| (f64_bits(w), sig[j as usize])).collect();
                tokens.sort_unstable();
                let mut h = mix(FNV_OFFSET, sig[i]);
                for (w, s) in tokens {
                    h = mix(mix(h, w), s);
                }
                h
            })
            .collect();
        sig = refined;
    }

    let mut order: Vec<usize> = (0..n_vars).collect();
    order.sort_by_key(|&i| (sig[i], i));
    let mut perm = vec![0usize; n_vars];
    for (canonical, &original) in order.iter().enumerate() {
        perm[original] = canonical;
    }

    // Hash the relabeled coefficient stream in `QuboModel::fingerprint`'s
    // exact byte order — variable count, linear terms by canonical
    // index, couplings by sorted canonical key, offset — without
    // building the relabeled model. Each symmetric CSR edge is visited
    // once via its upper-triangular (j > i) half.
    let mut h = FNV_OFFSET;
    h = mix(h, n_vars as u64);
    for &original in &order {
        h = mix(h, f64_bits(linear[original]));
    }
    let perm_ref = &perm;
    let mut couplings: Vec<(usize, usize, u64)> = (0..n_vars)
        .flat_map(|i| {
            let (nbrs, ws) = row(i);
            nbrs.iter().zip(ws).filter_map(move |(&j, &w)| {
                let j = j as usize;
                (j > i).then(|| {
                    let (a, b) = (perm_ref[i].min(perm_ref[j]), perm_ref[i].max(perm_ref[j]));
                    (a, b, f64_bits(w))
                })
            })
        })
        .collect();
    couplings.sort_unstable();
    for (a, b, w) in couplings {
        h = mix(h, a as u64);
        h = mix(h, b as u64);
        h = mix(h, w);
    }
    h = mix(h, f64_bits(offset));
    (h, perm)
}

impl CompiledQubo {
    /// Compiles a model. Prefer calling [`QuboModel::compile`].
    ///
    /// # Panics
    /// Panics if the model has more than `u32::MAX` variables (far beyond
    /// anything the dense `linear` array could hold anyway).
    pub fn new(q: &QuboModel) -> Self {
        let n = q.n_vars();
        let (row_offsets, neighbors, weights) = build_symmetric_csr(n, || q.quadratic_iter());
        let max_degree = (0..n).map(|i| row_offsets[i + 1] - row_offsets[i]).max().unwrap_or(0);
        let upper_starts = (0..n)
            .map(|i| {
                let row = &neighbors[row_offsets[i]..row_offsets[i + 1]];
                row_offsets[i] + row.partition_point(|&j| (j as usize) < i)
            })
            .collect();
        COMPILATIONS.fetch_add(1, Ordering::Relaxed);
        Self {
            n_vars: n,
            offset: q.offset(),
            linear: (0..n).map(|i| q.linear(i)).collect(),
            row_offsets,
            neighbors,
            weights,
            upper_starts,
            max_degree,
        }
    }

    /// Number of binary variables.
    #[inline]
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Constant offset added to every energy.
    #[inline]
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Linear coefficient of variable `i`.
    #[inline]
    pub fn linear(&self, i: usize) -> f64 {
        self.linear[i]
    }

    /// Number of non-zero quadratic couplings (each counted once).
    #[inline]
    pub fn n_interactions(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree of variable `i` in the interaction graph.
    #[inline]
    pub fn degree(&self, i: usize) -> usize {
        self.row_offsets[i + 1] - self.row_offsets[i]
    }

    /// Largest degree across all variables.
    #[inline]
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// Mean degree (0 for an empty model).
    pub fn avg_degree(&self) -> f64 {
        if self.n_vars == 0 {
            0.0
        } else {
            self.neighbors.len() as f64 / self.n_vars as f64
        }
    }

    /// Variable `i`'s CSR row: `(neighbor indices, weights)`, parallel
    /// slices with neighbors ascending.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let span = self.row_offsets[i]..self.row_offsets[i + 1];
        (&self.neighbors[span.clone()], &self.weights[span])
    }

    /// Evaluates the energy of a binary assignment. Bit-identical to
    /// [`QuboModel::energy`] on the source model.
    ///
    /// # Panics
    /// Panics if `x.len() != n_vars`.
    pub fn energy(&self, x: &[bool]) -> f64 {
        assert_eq!(x.len(), self.n_vars, "assignment length mismatch");
        let mut e = self.offset;
        for (&w, &xi) in self.linear.iter().zip(x) {
            if xi {
                e += w;
            }
        }
        // Each coupling appears in both endpoint rows; walking only the
        // precomputed `j > i` suffix of each row visits every pair exactly
        // once — no branch, half the memory traffic — in the same sorted
        // (i, j) order the model's BTreeMap iterates.
        for i in 0..self.n_vars {
            if !x[i] {
                continue;
            }
            let span = self.upper_starts[i]..self.row_offsets[i + 1];
            let nbrs = &self.neighbors[span.clone()];
            let ws = &self.weights[span];
            for (&j, &w) in nbrs.iter().zip(ws) {
                if x[j as usize] {
                    e += w;
                }
            }
        }
        e
    }

    /// Energy change from flipping variable `i` in assignment `x` (`x` is
    /// the state *before* the flip). `O(deg(i))`.
    #[inline]
    pub fn flip_delta(&self, x: &[bool], i: usize) -> f64 {
        let mut local = self.linear[i];
        let (nbrs, ws) = self.row(i);
        for (&j, &w) in nbrs.iter().zip(ws) {
            if x[j as usize] {
                local += w;
            }
        }
        if x[i] {
            -local
        } else {
            local
        }
    }

    /// Local fields for every variable under assignment `x`:
    /// `fields[i] = linear[i] + sum of weights to active neighbors`, so the
    /// flip delta of `i` is `fields[i]` when `x[i]` is 0 and `-fields[i]`
    /// when it is 1. This is the initializer for the incremental `O(deg)`
    /// bookkeeping in every annealer hot loop.
    pub fn local_fields(&self, x: &[bool]) -> Vec<f64> {
        let mut fields = vec![0.0f64; self.n_vars];
        self.local_fields_into(x, &mut fields);
        fields
    }

    /// [`Self::local_fields`] into a caller-owned buffer, reusing its
    /// allocation across restarts.
    ///
    /// # Panics
    /// Panics if `fields.len() != n_vars`.
    pub fn local_fields_into(&self, x: &[bool], fields: &mut [f64]) {
        assert_eq!(fields.len(), self.n_vars, "field buffer length mismatch");
        for (i, field) in fields.iter_mut().enumerate() {
            let mut f = self.linear[i];
            let (nbrs, ws) = self.row(i);
            for (&j, &w) in nbrs.iter().zip(ws) {
                if x[j as usize] {
                    f += w;
                }
            }
            *field = f;
        }
    }

    /// CSR row-offset array: variable `i`'s neighbors span
    /// `neighbors()[row_offsets()[i]..row_offsets()[i + 1]]`.
    #[inline]
    pub fn row_offsets(&self) -> &[usize] {
        &self.row_offsets
    }

    /// Flat neighbor-index array, parallel to [`Self::weights`].
    #[inline]
    pub fn neighbors(&self) -> &[u32] {
        &self.neighbors
    }

    /// Flat coupling-weight array, parallel to [`Self::neighbors`].
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Iterates the upper-triangular couplings as `((i, j), w)` with
    /// `i < j`, in exactly the sorted key order
    /// [`QuboModel::quadratic_iter`] yields — so float accumulations driven
    /// by this iterator are bit-identical to model-driven ones.
    pub fn couplings_iter(&self) -> impl Iterator<Item = ((usize, usize), f64)> + '_ {
        (0..self.n_vars).flat_map(move |i| {
            let span = self.upper_starts[i]..self.row_offsets[i + 1];
            self.neighbors[span.clone()]
                .iter()
                .zip(&self.weights[span])
                .map(move |(&j, &w)| ((i, j as usize), w))
        })
    }

    /// Reconstructs the source [`QuboModel`]. Compilation is lossless, so
    /// the result is coefficient-identical (`==`) to the compiled model;
    /// gate-based solvers that need the model form (energy tables,
    /// Hamiltonian construction) use this to serve `solve_compiled` calls.
    pub fn to_model(&self) -> QuboModel {
        let mut q = QuboModel::new(self.n_vars);
        q.add_offset(self.offset);
        for (i, &w) in self.linear.iter().enumerate() {
            q.add_linear(i, w);
        }
        for ((i, j), w) in self.couplings_iter() {
            q.add_quadratic(i, j, w);
        }
        q
    }

    /// Maximum absolute coefficient, matching
    /// [`QuboModel::max_abs_coefficient`] exactly (`max` is
    /// order-insensitive). Used by parameter-scaling heuristics.
    pub fn max_abs_coefficient(&self) -> f64 {
        let l = self.linear.iter().fold(0.0f64, |m, w| m.max(w.abs()));
        let q = self.weights.iter().fold(0.0f64, |m, w| m.max(w.abs()));
        l.max(q)
    }

    /// A lower bound on the energy: offset plus all negative coefficients.
    /// Visits terms in the same order as [`QuboModel::naive_lower_bound`]
    /// (linear by index, couplings by sorted key), so the sum is
    /// bit-identical to the model's.
    pub fn naive_lower_bound(&self) -> f64 {
        let mut b = self.offset;
        b += self.linear.iter().filter(|w| **w < 0.0).sum::<f64>();
        b += self.couplings_iter().map(|(_, w)| w).filter(|w| *w < 0.0).sum::<f64>();
        b
    }

    /// Applies the flip of variable `i` to the incremental state: toggles
    /// `x[i]` and folds the coupling weights into the neighbors' local
    /// fields. Returns the energy delta the flip contributed (callers track
    /// the running energy themselves from [`Self::flip_delta`]-style reads
    /// of `fields[i]` before the flip).
    #[inline]
    pub fn apply_flip(&self, x: &mut [bool], fields: &mut [f64], i: usize) -> f64 {
        let delta = if x[i] { -fields[i] } else { fields[i] };
        let sign = if x[i] { -1.0 } else { 1.0 };
        x[i] = !x[i];
        let (nbrs, ws) = self.row(i);
        for (&j, &w) in nbrs.iter().zip(ws) {
            fields[j as usize] += sign * w;
        }
        delta
    }

    /// Computes the canonical relabeling and permutation-invariant
    /// fingerprint of the compiled model: returns `(fingerprint, perm)` with
    /// `perm[original_index] = canonical_index`, exactly as
    /// [`QuboModel::canonical_form`] does (both run the same CSR-level
    /// algorithm, [`canonical_form_csr`]).
    ///
    /// Having this on the compiled form lets `qdm-runtime` derive the cache
    /// fingerprint from the *same* compilation every backend solves, instead
    /// of paying a second compile for fingerprinting.
    pub fn canonical_form(&self) -> (u64, Vec<usize>) {
        canonical_form_csr(
            self.n_vars,
            self.offset,
            &self.linear,
            &self.row_offsets,
            &self.neighbors,
            &self.weights,
        )
    }

    /// Greedy graph coloring of the interaction graph in ascending variable
    /// order: variables sharing a color are pairwise non-adjacent, so one
    /// annealing sweep can evaluate (and flip) a whole color class
    /// concurrently — the within-restart parallelism axis
    /// `qdm_anneal::sa::simulated_annealing_colored` runs on.
    ///
    /// Uses at most `max_degree + 1` colors. Deterministic: depends only on
    /// the compiled structure.
    pub fn greedy_coloring(&self) -> Coloring {
        let n = self.n_vars;
        let mut color = vec![usize::MAX; n];
        // `forbidden[c] == i` marks color c as used by a neighbor of i; the
        // stamp trick avoids clearing the array between variables.
        let mut forbidden = vec![usize::MAX; self.max_degree + 2];
        let mut n_colors = 0usize;
        for i in 0..n {
            let (nbrs, _) = self.row(i);
            for &j in nbrs {
                let cj = color[j as usize];
                if cj != usize::MAX && cj < forbidden.len() {
                    forbidden[cj] = i;
                }
            }
            let c = (0..forbidden.len()).find(|&c| forbidden[c] != i).expect("degree+2 colors");
            color[i] = c;
            n_colors = n_colors.max(c + 1);
        }
        let mut classes: Vec<Vec<u32>> = vec![Vec::new(); n_colors];
        for (i, &c) in color.iter().enumerate() {
            classes[c].push(i as u32);
        }
        Coloring { classes }
    }
}

/// A partition of the variables into independence classes (see
/// [`CompiledQubo::greedy_coloring`]): within a class no two variables are
/// coupled, so their flip deltas are mutually independent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coloring {
    /// `classes[c]` holds the ascending variable indices with color `c`.
    pub classes: Vec<Vec<u32>>,
}

impl Coloring {
    /// Number of colors used.
    pub fn n_colors(&self) -> usize {
        self.classes.len()
    }

    /// Size of the largest color class.
    pub fn max_class_len(&self) -> usize {
        self.classes.iter().map(Vec::len).max().unwrap_or(0)
    }
}

impl QuboModel {
    /// Compiles the model into the flat CSR form solver hot loops run on.
    /// `O(n + m)`; see [`CompiledQubo`].
    pub fn compile(&self) -> CompiledQubo {
        CompiledQubo::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::bits_from_index;

    fn sample_model() -> QuboModel {
        let mut q = QuboModel::new(5);
        q.add_linear(0, 1.5)
            .add_linear(2, -2.0)
            .add_quadratic(0, 1, 2.0)
            .add_quadratic(1, 2, -1.0)
            .add_quadratic(0, 3, 0.75)
            .add_quadratic(3, 4, -0.5)
            .add_offset(0.25);
        q
    }

    #[test]
    fn energy_matches_model_exhaustively() {
        let q = sample_model();
        let c = q.compile();
        for idx in 0..(1 << 5) {
            let x = bits_from_index(idx, 5);
            assert_eq!(c.energy(&x), q.energy(&x), "index {idx}");
        }
    }

    #[test]
    fn flip_delta_matches_model_and_energy_difference() {
        let q = sample_model();
        let c = q.compile();
        let x = [true, false, true, true, false];
        for i in 0..5 {
            let mut y = x;
            y[i] = !y[i];
            let want = q.energy(&y) - q.energy(&x);
            assert!((c.flip_delta(&x, i) - want).abs() < 1e-12, "var {i}");
            assert_eq!(c.flip_delta(&x, i), q.flip_delta(&x, i), "var {i}");
        }
    }

    #[test]
    fn csr_rows_are_sorted_and_symmetric() {
        let c = sample_model().compile();
        assert_eq!(c.row(0), (&[1u32, 3][..], &[2.0, 0.75][..]));
        assert_eq!(c.row(1), (&[0u32, 2][..], &[2.0, -1.0][..]));
        assert_eq!(c.row(2), (&[1u32][..], &[-1.0][..]));
        assert_eq!(c.row(4), (&[3u32][..], &[-0.5][..]));
    }

    #[test]
    fn degree_stats() {
        let c = sample_model().compile();
        assert_eq!(c.n_vars(), 5);
        assert_eq!(c.n_interactions(), 4);
        assert_eq!(c.degree(0), 2);
        assert_eq!(c.degree(4), 1);
        assert_eq!(c.max_degree(), 2);
        assert!((c.avg_degree() - 8.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn local_fields_seed_incremental_bookkeeping() {
        let q = sample_model();
        let c = q.compile();
        let x = [true, true, false, false, true];
        let fields = c.local_fields(&x);
        for i in 0..5 {
            let want = if x[i] { -q.flip_delta(&x, i) } else { q.flip_delta(&x, i) };
            assert!((fields[i] - want).abs() < 1e-12, "var {i}");
        }
    }

    #[test]
    fn apply_flip_keeps_fields_and_energy_consistent() {
        let q = sample_model();
        let c = q.compile();
        let mut x = vec![false, true, true, false, true];
        let mut fields = c.local_fields(&x);
        let mut energy = c.energy(&x);
        for &i in &[0usize, 2, 4, 2, 1, 0, 3] {
            energy += c.apply_flip(&mut x, &mut fields, i);
            assert!((energy - c.energy(&x)).abs() < 1e-9, "after flipping {i}");
            let fresh = c.local_fields(&x);
            for v in 0..5 {
                assert!((fields[v] - fresh[v]).abs() < 1e-9, "field {v} after flip {i}");
            }
        }
    }

    #[test]
    fn to_model_roundtrips_exactly() {
        let q = sample_model();
        assert_eq!(q.compile().to_model(), q);
        let empty = QuboModel::new(0);
        assert_eq!(empty.compile().to_model(), empty);
    }

    #[test]
    fn derived_scalars_match_model() {
        let q = sample_model();
        let c = q.compile();
        assert_eq!(c.max_abs_coefficient(), q.max_abs_coefficient());
        assert_eq!(c.naive_lower_bound().to_bits(), q.naive_lower_bound().to_bits());
        let pairs: Vec<_> = c.couplings_iter().collect();
        let want: Vec<_> = q.quadratic_iter().collect();
        assert_eq!(pairs, want, "couplings_iter must match the model's sorted key order");
    }

    #[test]
    fn canonical_form_matches_model_delegation() {
        let q = sample_model();
        let c = q.compile();
        assert_eq!(c.canonical_form(), q.canonical_form());
    }

    #[test]
    fn greedy_coloring_is_a_proper_partition() {
        let q = sample_model();
        let c = q.compile();
        let coloring = c.greedy_coloring();
        // Every variable appears exactly once.
        let mut seen = vec![0usize; c.n_vars()];
        for class in &coloring.classes {
            for &i in class {
                seen[i as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&s| s == 1), "classes must partition the variables");
        // No class contains an adjacent pair.
        for class in &coloring.classes {
            for &i in class {
                let (nbrs, _) = c.row(i as usize);
                for &j in nbrs {
                    assert!(!class.contains(&j), "vars {i} and {j} are coupled but share a color");
                }
            }
        }
        assert!(coloring.n_colors() <= c.max_degree() + 1);
        assert!(coloring.max_class_len() >= 1);
    }

    #[test]
    fn compilation_counter_increments() {
        let before = compilation_count();
        let _ = sample_model().compile();
        assert!(compilation_count() > before);
    }

    #[test]
    fn empty_and_coupling_free_models_compile() {
        let empty = QuboModel::new(0).compile();
        assert_eq!(empty.energy(&[]), 0.0);
        assert_eq!(empty.max_degree(), 0);

        let mut lin = QuboModel::new(3);
        lin.add_linear(1, -2.0).add_offset(1.0);
        let c = lin.compile();
        assert_eq!(c.energy(&[false, true, false]), -1.0);
        assert_eq!(c.n_interactions(), 0);
        assert_eq!(c.flip_delta(&[false, false, false], 1), -2.0);
    }
}
