//! The QUBO model: `E(x) = x^T Q x + offset` over binary variables.
//!
//! QUBO (quadratic unconstrained binary optimization) is, per Sec. III of the
//! paper, "one of the most widely applied optimization models" for quantum
//! computing: every Table I work maps its database problem onto one. We store
//! the coefficient matrix sparsely in upper-triangular form: `linear[i]`
//! holds `Q_ii` and `quadratic[(i, j)]` with `i < j` holds `Q_ij + Q_ji`.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A quadratic unconstrained binary optimization model.
///
/// Energy of an assignment `x in {0,1}^n`:
/// `E(x) = sum_i linear[i] x_i + sum_{i<j} quadratic[(i,j)] x_i x_j + offset`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QuboModel {
    n_vars: usize,
    linear: Vec<f64>,
    quadratic: BTreeMap<(usize, usize), f64>,
    offset: f64,
}

impl QuboModel {
    /// Creates an all-zero model over `n_vars` binary variables.
    pub fn new(n_vars: usize) -> Self {
        Self { n_vars, linear: vec![0.0; n_vars], quadratic: BTreeMap::new(), offset: 0.0 }
    }

    /// Number of binary variables.
    #[inline]
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Constant offset added to every energy.
    #[inline]
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Adds a constant to the offset.
    pub fn add_offset(&mut self, c: f64) -> &mut Self {
        self.offset += c;
        self
    }

    /// Linear coefficient of variable `i`.
    #[inline]
    pub fn linear(&self, i: usize) -> f64 {
        self.linear[i]
    }

    /// Adds `w` to the linear coefficient of variable `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn add_linear(&mut self, i: usize, w: f64) -> &mut Self {
        assert!(i < self.n_vars, "variable {i} out of range");
        self.linear[i] += w;
        self
    }

    /// Quadratic coefficient of the (unordered) pair `{i, j}`.
    #[inline]
    pub fn quadratic(&self, i: usize, j: usize) -> f64 {
        let key = if i < j { (i, j) } else { (j, i) };
        self.quadratic.get(&key).copied().unwrap_or(0.0)
    }

    /// Adds `w` to the quadratic coefficient of pair `{i, j}`. Adding to the
    /// diagonal (`i == j`) folds into the linear term since `x^2 = x`.
    ///
    /// # Panics
    /// Panics if either index is out of range.
    pub fn add_quadratic(&mut self, i: usize, j: usize, w: f64) -> &mut Self {
        assert!(i < self.n_vars && j < self.n_vars, "variable out of range");
        if i == j {
            self.linear[i] += w;
        } else {
            let key = if i < j { (i, j) } else { (j, i) };
            let entry = self.quadratic.entry(key).or_insert(0.0);
            *entry += w;
            if *entry == 0.0 {
                self.quadratic.remove(&key);
            }
        }
        self
    }

    /// Iterates over non-zero quadratic terms as `((i, j), weight)` with `i < j`.
    pub fn quadratic_iter(&self) -> impl Iterator<Item = ((usize, usize), f64)> + '_ {
        self.quadratic.iter().map(|(&k, &v)| (k, v))
    }

    /// Number of non-zero quadratic couplings.
    pub fn n_interactions(&self) -> usize {
        self.quadratic.len()
    }

    /// Evaluates the energy of a binary assignment.
    ///
    /// # Panics
    /// Panics if `x.len() != n_vars`.
    pub fn energy(&self, x: &[bool]) -> f64 {
        assert_eq!(x.len(), self.n_vars, "assignment length mismatch");
        let mut e = self.offset;
        for (&w, &xi) in self.linear.iter().zip(x.iter()) {
            if xi {
                e += w;
            }
        }
        for (&(i, j), &w) in &self.quadratic {
            if x[i] && x[j] {
                e += w;
            }
        }
        e
    }

    /// Energy change from flipping variable `i` in assignment `x`
    /// (`x` is the state *before* the flip).
    ///
    /// This is the slow generic path: it scans the whole coupling map in
    /// `O(m)` per call. It exists for one-off checks and tests. Anything
    /// evaluating flips repeatedly — every solver hot loop — should call
    /// [`Self::compile`] once and use
    /// [`CompiledQubo::flip_delta`](crate::compiled::CompiledQubo::flip_delta)
    /// (`O(deg(i))`) or the incremental
    /// [`local_fields`](crate::compiled::CompiledQubo::local_fields)
    /// bookkeeping instead.
    pub fn flip_delta(&self, x: &[bool], i: usize) -> f64 {
        let mut local = self.linear[i];
        for (&(a, b), &w) in &self.quadratic {
            if (a == i && x[b]) || (b == i && x[a]) {
                local += w;
            }
        }
        if x[i] {
            -local
        } else {
            local
        }
    }

    /// Adjacency lists: for each variable the `(neighbor, weight)` pairs of
    /// its non-zero couplings.
    ///
    /// Solver hot loops should prefer [`Self::compile`]: the flat CSR form
    /// avoids the per-row `Vec` allocations and pointer chasing this
    /// materialization pays.
    pub fn neighbor_lists(&self) -> Vec<Vec<(usize, f64)>> {
        let mut adj = vec![Vec::new(); self.n_vars];
        for (&(i, j), &w) in &self.quadratic {
            adj[i].push((j, w));
            adj[j].push((i, w));
        }
        adj
    }

    /// Splits the model into connected components of its interaction graph.
    /// Returns `(component_models, var_maps)` where `var_maps[k][local] =
    /// global`. This is the hybrid decomposition step of Sec. III-C.2: the
    /// query-clustering preprocessing of Trummer & Koch maps to exactly this.
    ///
    /// The full offset is carried by the first component (or lost if there
    /// are none).
    pub fn connected_components(&self) -> Vec<(QuboModel, Vec<usize>)> {
        self.connected_components_with(&self.compile())
    }

    /// [`Self::connected_components`] over an existing compilation of this
    /// exact model, so pipeline callers that already compiled (the
    /// `qdm-runtime` compile-once path) don't pay a second CSR build.
    pub fn connected_components_with(
        &self,
        csr: &crate::compiled::CompiledQubo,
    ) -> Vec<(QuboModel, Vec<usize>)> {
        debug_assert_eq!(csr.n_vars(), self.n_vars, "compilation belongs to another model");
        let mut comp = vec![usize::MAX; self.n_vars];
        let mut n_comps = 0;
        let mut stack = Vec::new();
        for start in 0..self.n_vars {
            if comp[start] != usize::MAX {
                continue;
            }
            stack.push(start);
            comp[start] = n_comps;
            while let Some(v) = stack.pop() {
                let (nbrs, _) = csr.row(v);
                for &u in nbrs {
                    let u = u as usize;
                    if comp[u] == usize::MAX {
                        comp[u] = n_comps;
                        stack.push(u);
                    }
                }
            }
            n_comps += 1;
        }
        let mut var_maps: Vec<Vec<usize>> = vec![Vec::new(); n_comps];
        let mut local_of: Vec<usize> = vec![0; self.n_vars];
        for v in 0..self.n_vars {
            local_of[v] = var_maps[comp[v]].len();
            var_maps[comp[v]].push(v);
        }
        let mut models: Vec<QuboModel> =
            var_maps.iter().map(|vm| QuboModel::new(vm.len())).collect();
        for (v, &c) in comp.iter().enumerate() {
            models[c].add_linear(local_of[v], self.linear[v]);
        }
        for (&(i, j), &w) in &self.quadratic {
            debug_assert_eq!(comp[i], comp[j]);
            models[comp[i]].add_quadratic(local_of[i], local_of[j], w);
        }
        if let Some(first) = models.first_mut() {
            first.add_offset(self.offset);
        }
        models.into_iter().zip(var_maps).collect()
    }

    /// A canonical 64-bit fingerprint of the model: FNV-1a over the variable
    /// count, every linear coefficient, the sorted non-zero couplings, and
    /// the offset (all `f64`s hashed by IEEE-754 bit pattern, `-0.0`
    /// normalized to `0.0`).
    ///
    /// Two models built through any sequence of `add_*` calls that produce
    /// the same coefficients fingerprint identically, because storage is
    /// already canonical: upper-triangular sorted keys with zero couplings
    /// pruned. `qdm-runtime` keys its result cache on this, so repeated
    /// encodings of the same MQO / join-ordering instance are served without
    /// re-solving.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |word: u64| {
            for byte in word.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        let f64_bits = |x: f64| if x == 0.0 { 0u64 } else { x.to_bits() };
        eat(self.n_vars as u64);
        for &w in &self.linear {
            eat(f64_bits(w));
        }
        for (&(i, j), &w) in &self.quadratic {
            eat(i as u64);
            eat(j as u64);
            eat(f64_bits(w));
        }
        eat(f64_bits(self.offset));
        h
    }

    /// A variable-permutation-invariant fingerprint: two models that differ
    /// only by a relabeling of their variables hash identically (whenever the
    /// signature refinement below separates the variables, which it does for
    /// any model without non-trivial coefficient symmetries).
    ///
    /// `qdm-runtime` keys its result cache on this, so the same MQO /
    /// join-ordering instance encoded with plans or relations enumerated in a
    /// different order is still served from cache. See [`Self::canonical_form`]
    /// for the permutation needed to translate cached assignments back.
    pub fn canonical_fingerprint(&self) -> u64 {
        self.canonical_form().0
    }

    /// Computes the canonical relabeling of the model and the fingerprint of
    /// the relabeled coefficients: returns `(fingerprint, perm)` with
    /// `perm[original_index] = canonical_index`.
    ///
    /// Variables are sorted by a coefficient signature — FNV-1a over the
    /// linear term, refined twice over the sorted `(coupling weight,
    /// neighbor signature)` multiset, a Weisfeiler-Lehman-style pass — and
    /// the relabeled coefficient stream is hashed exactly as
    /// [`Self::fingerprint`] would hash the relabeled model (without
    /// materializing it). Ties (signature-identical variables) break by
    /// original index, so genuinely symmetric variables may canonicalize
    /// differently across permutations; that costs a cache hit, never
    /// correctness.
    /// The implementation is [`crate::compiled::canonical_form_csr`] (the
    /// signature refinement walks CSR rows anyway); this wrapper builds the
    /// CSR arrays directly via [`crate::compiled::build_symmetric_csr`]
    /// *without* constructing a [`crate::compiled::CompiledQubo`], so
    /// canonicalizing a model for routing or cache lookups leaves the
    /// [`crate::compiled::compilation_count`] ledger untouched. Callers that
    /// already hold a compilation — the `qdm-runtime` compile-once path —
    /// call `CompiledQubo::canonical_form` and share even the CSR build.
    pub fn canonical_form(&self) -> (u64, Vec<usize>) {
        let (row_offsets, neighbors, weights) =
            crate::compiled::build_symmetric_csr(self.n_vars(), || self.quadratic_iter());
        let linear: Vec<f64> = (0..self.n_vars()).map(|i| self.linear(i)).collect();
        crate::compiled::canonical_form_csr(
            self.n_vars(),
            self.offset(),
            &linear,
            &row_offsets,
            &neighbors,
            &weights,
        )
    }

    /// A lower bound on the energy: offset plus all negative coefficients.
    pub fn naive_lower_bound(&self) -> f64 {
        let mut b = self.offset;
        b += self.linear.iter().filter(|w| **w < 0.0).sum::<f64>();
        b += self.quadratic.values().filter(|w| **w < 0.0).sum::<f64>();
        b
    }

    /// Maximum absolute coefficient — used for penalty-weight and chain-
    /// strength heuristics.
    pub fn max_abs_coefficient(&self) -> f64 {
        let l = self.linear.iter().fold(0.0f64, |m, w| m.max(w.abs()));
        let q = self.quadratic.values().fold(0.0f64, |m, w| m.max(w.abs()));
        l.max(q)
    }

    /// Serializes the model to a self-contained little-endian byte record:
    /// version tag, `n_vars`, the dense linear vector, the sorted coupling
    /// list, and the offset. The workspace's serde shim has no serializer,
    /// so durability layers (the runtime's job journal) persist models
    /// through this hand-rolled codec; [`QuboModel::from_bytes`] restores a
    /// model that is `==` to the original and shares its
    /// [`QuboModel::fingerprint`].
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + 8 * self.linear.len() + 24 * self.quadratic.len());
        out.push(QUBO_CODEC_VERSION);
        out.extend_from_slice(&(self.n_vars as u64).to_le_bytes());
        for &w in &self.linear {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.extend_from_slice(&(self.quadratic.len() as u64).to_le_bytes());
        for (&(i, j), &w) in &self.quadratic {
            out.extend_from_slice(&(i as u64).to_le_bytes());
            out.extend_from_slice(&(j as u64).to_le_bytes());
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.extend_from_slice(&self.offset.to_le_bytes());
        out
    }

    /// Decodes a record produced by [`QuboModel::to_bytes`]. Returns `None`
    /// for a truncated, oversized, or differently-versioned record — the
    /// torn-tail case a crashed writer leaves behind — never panics.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut cur = Cursor { bytes, at: 0 };
        if cur.u8()? != QUBO_CODEC_VERSION {
            return None;
        }
        let n_vars = usize::try_from(cur.u64()?).ok()?;
        // Defensive cap: a torn length prefix must not drive allocation.
        if n_vars > bytes.len() / 8 {
            return None;
        }
        let mut linear = Vec::with_capacity(n_vars);
        for _ in 0..n_vars {
            linear.push(cur.f64()?);
        }
        let n_quad = usize::try_from(cur.u64()?).ok()?;
        if n_quad > bytes.len() / 24 {
            return None;
        }
        let mut quadratic = BTreeMap::new();
        for _ in 0..n_quad {
            let i = usize::try_from(cur.u64()?).ok()?;
            let j = usize::try_from(cur.u64()?).ok()?;
            let w = cur.f64()?;
            if i >= j || j >= n_vars {
                return None;
            }
            quadratic.insert((i, j), w);
        }
        let offset = cur.f64()?;
        if cur.at != bytes.len() {
            return None;
        }
        Some(Self { n_vars, linear, quadratic, offset })
    }
}

/// Version tag leading every [`QuboModel::to_bytes`] record.
const QUBO_CODEC_VERSION: u8 = 1;

/// Minimal forward-only byte reader behind [`QuboModel::from_bytes`].
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Cursor<'_> {
    fn u8(&mut self) -> Option<u8> {
        let b = *self.bytes.get(self.at)?;
        self.at += 1;
        Some(b)
    }

    fn u64(&mut self) -> Option<u64> {
        let end = self.at.checked_add(8)?;
        let chunk = self.bytes.get(self.at..end)?;
        self.at = end;
        Some(u64::from_le_bytes(chunk.try_into().ok()?))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }
}

/// Converts a bitmask index (bit `i` = variable `i`) to a boolean assignment.
pub fn bits_from_index(index: usize, n: usize) -> Vec<bool> {
    (0..n).map(|i| index & (1 << i) != 0).collect()
}

/// Converts a boolean assignment to a bitmask index.
pub fn index_from_bits(bits: &[bool]) -> usize {
    bits.iter().enumerate().fold(0, |acc, (i, &b)| if b { acc | (1 << i) } else { acc })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_of_simple_model() {
        let mut q = QuboModel::new(3);
        q.add_linear(0, 1.0).add_linear(1, -2.0).add_quadratic(0, 1, 3.0).add_offset(0.5);
        assert_eq!(q.energy(&[false, false, false]), 0.5);
        assert_eq!(q.energy(&[true, false, false]), 1.5);
        assert_eq!(q.energy(&[true, true, false]), 0.5 + 1.0 - 2.0 + 3.0);
    }

    #[test]
    fn diagonal_quadratic_folds_into_linear() {
        let mut q = QuboModel::new(2);
        q.add_quadratic(1, 1, 4.0);
        assert_eq!(q.linear(1), 4.0);
        assert_eq!(q.energy(&[false, true]), 4.0);
    }

    #[test]
    fn quadratic_is_symmetric() {
        let mut q = QuboModel::new(2);
        q.add_quadratic(1, 0, 2.0);
        assert_eq!(q.quadratic(0, 1), 2.0);
        assert_eq!(q.quadratic(1, 0), 2.0);
    }

    #[test]
    fn zero_couplings_are_pruned() {
        let mut q = QuboModel::new(2);
        q.add_quadratic(0, 1, 2.0).add_quadratic(0, 1, -2.0);
        assert_eq!(q.n_interactions(), 0);
    }

    #[test]
    fn flip_delta_matches_energy_difference() {
        let mut q = QuboModel::new(4);
        q.add_linear(0, 1.5)
            .add_linear(2, -0.5)
            .add_quadratic(0, 1, 2.0)
            .add_quadratic(1, 2, -1.0)
            .add_quadratic(0, 3, 0.75);
        let x = [true, false, true, true];
        for i in 0..4 {
            let mut y = x;
            y[i] = !y[i];
            let want = q.energy(&y) - q.energy(&x);
            let got = q.flip_delta(&x, i);
            assert!((want - got).abs() < 1e-12, "var {i}: want {want}, got {got}");
        }
    }

    #[test]
    fn connected_components_split() {
        let mut q = QuboModel::new(5);
        // Component {0,1}, component {2,3}, isolated {4}.
        q.add_quadratic(0, 1, 1.0).add_quadratic(2, 3, -2.0).add_linear(4, 7.0);
        q.add_offset(10.0);
        let comps = q.connected_components();
        assert_eq!(comps.len(), 3);
        let total_vars: usize = comps.iter().map(|(m, _)| m.n_vars()).sum();
        assert_eq!(total_vars, 5);
        // Energies decompose: best of each component sums to best global.
        let all_false = |m: &QuboModel| m.energy(&vec![false; m.n_vars()]);
        let sum: f64 = comps.iter().map(|(m, _)| all_false(m)).sum();
        assert_eq!(sum, q.energy(&[false; 5]));
    }

    #[test]
    fn index_bits_roundtrip() {
        for idx in 0..32 {
            let bits = bits_from_index(idx, 5);
            assert_eq!(index_from_bits(&bits), idx);
        }
    }

    #[test]
    fn neighbor_lists_are_symmetric() {
        let mut q = QuboModel::new(3);
        q.add_quadratic(0, 2, 2.5).add_quadratic(1, 2, -1.0);
        let adj = q.neighbor_lists();
        assert_eq!(adj[0], vec![(2, 2.5)]);
        assert_eq!(adj[2], vec![(0, 2.5), (1, -1.0)]);
    }

    #[test]
    fn fingerprint_is_order_insensitive_and_canonical() {
        let mut a = QuboModel::new(4);
        a.add_linear(0, 1.5).add_quadratic(0, 1, 2.0).add_quadratic(2, 3, -1.0);
        let mut b = QuboModel::new(4);
        b.add_quadratic(3, 2, -1.0).add_quadratic(1, 0, 2.0).add_linear(0, 1.5);
        assert_eq!(a.fingerprint(), b.fingerprint());

        // Cancelled couplings are pruned, so they do not perturb the hash.
        let mut c = QuboModel::new(4);
        c.add_linear(0, 1.5)
            .add_quadratic(0, 1, 2.0)
            .add_quadratic(2, 3, -1.0)
            .add_quadratic(1, 3, 4.0)
            .add_quadratic(1, 3, -4.0);
        assert_eq!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_models() {
        let mut a = QuboModel::new(3);
        a.add_linear(0, 1.0);
        let mut b = QuboModel::new(3);
        b.add_linear(1, 1.0);
        let mut c = QuboModel::new(3);
        c.add_linear(0, 1.0 + 1e-12);
        let mut d = QuboModel::new(4);
        d.add_linear(0, 1.0);
        let prints = [a.fingerprint(), b.fingerprint(), c.fingerprint(), d.fingerprint()];
        for (i, x) in prints.iter().enumerate() {
            for y in &prints[i + 1..] {
                assert_ne!(x, y);
            }
        }
        // Signed zero must not split cache keys.
        let mut z1 = QuboModel::new(1);
        z1.add_linear(0, 0.0);
        let mut z2 = QuboModel::new(1);
        z2.add_linear(0, -0.0);
        assert_eq!(z1.fingerprint(), z2.fingerprint());
    }

    #[test]
    fn canonical_fingerprint_is_permutation_invariant() {
        // A model with distinct coefficients and its image under the
        // permutation 0→2, 1→0, 2→3, 3→1.
        let mut a = QuboModel::new(4);
        a.add_linear(0, 1.5)
            .add_linear(1, -2.0)
            .add_linear(2, 3.25)
            .add_linear(3, 0.5)
            .add_quadratic(0, 1, 2.0)
            .add_quadratic(1, 2, -1.0)
            .add_quadratic(0, 3, 4.0)
            .add_offset(0.75);
        let to = [2usize, 0, 3, 1];
        let mut b = QuboModel::new(4);
        for (i, &t) in to.iter().enumerate() {
            b.add_linear(t, a.linear(i));
        }
        for ((i, j), w) in a.quadratic_iter() {
            b.add_quadratic(to[i], to[j], w);
        }
        b.add_offset(a.offset());

        assert_ne!(a.fingerprint(), b.fingerprint(), "plain fingerprint is label-sensitive");
        assert_eq!(a.canonical_fingerprint(), b.canonical_fingerprint());

        // The permutations translate assignments between the two labelings:
        // bits agreeing in canonical positions have equal energies.
        let (_, perm_a) = a.canonical_form();
        let (_, perm_b) = b.canonical_form();
        for idx in 0..16 {
            let bits_a = bits_from_index(idx, 4);
            let mut bits_b = vec![false; 4];
            for i in 0..4 {
                // canonical position of a's var i holds bits_a[i]; find b's
                // variable at the same canonical position.
                let canonical = perm_a[i];
                let j = perm_b.iter().position(|&c| c == canonical).unwrap();
                bits_b[j] = bits_a[i];
            }
            assert!((a.energy(&bits_a) - b.energy(&bits_b)).abs() < 1e-12);
        }
    }

    #[test]
    fn canonical_fingerprint_equals_fingerprint_of_relabeled_model() {
        let mut q = QuboModel::new(4);
        q.add_linear(0, 1.5)
            .add_linear(2, -2.0)
            .add_quadratic(0, 1, 2.0)
            .add_quadratic(1, 3, -1.0)
            .add_offset(0.25);
        let (fp, perm) = q.canonical_form();
        let mut relabeled = QuboModel::new(4);
        for (i, &p) in perm.iter().enumerate() {
            relabeled.add_linear(p, q.linear(i));
        }
        for ((i, j), w) in q.quadratic_iter() {
            relabeled.add_quadratic(perm[i], perm[j], w);
        }
        relabeled.add_offset(q.offset());
        assert_eq!(fp, relabeled.fingerprint(), "streamed hash must match the relabeled model");
    }

    #[test]
    fn canonical_fingerprint_still_distinguishes_different_models() {
        let mut a = QuboModel::new(3);
        a.add_linear(0, 1.0).add_quadratic(0, 1, 2.0);
        let mut b = QuboModel::new(3);
        b.add_linear(0, 1.0).add_quadratic(0, 1, 2.5);
        let mut c = QuboModel::new(3);
        c.add_linear(0, 1.0).add_quadratic(0, 2, 2.0);
        assert_ne!(a.canonical_fingerprint(), b.canonical_fingerprint());
        // a and c ARE permutations of each other (swap vars 1 and 2).
        assert_eq!(a.canonical_fingerprint(), c.canonical_fingerprint());
        let mut d = QuboModel::new(4);
        d.add_linear(0, 1.0).add_quadratic(0, 1, 2.0);
        assert_ne!(a.canonical_fingerprint(), d.canonical_fingerprint());
    }

    #[test]
    fn naive_lower_bound_is_a_bound() {
        let mut q = QuboModel::new(3);
        q.add_linear(0, -1.0).add_linear(1, 2.0).add_quadratic(0, 1, -3.0).add_offset(0.5);
        let lb = q.naive_lower_bound();
        for idx in 0..8 {
            assert!(q.energy(&bits_from_index(idx, 3)) >= lb - 1e-12);
        }
    }

    #[test]
    fn byte_codec_roundtrips_models_exactly() {
        let mut q = QuboModel::new(5);
        q.add_linear(0, -1.5)
            .add_linear(3, 2.25)
            .add_quadratic(0, 1, 3.0)
            .add_quadratic(2, 4, -0.125)
            .add_offset(7.5);
        let restored = QuboModel::from_bytes(&q.to_bytes()).expect("decodes");
        assert_eq!(restored, q);
        assert_eq!(restored.fingerprint(), q.fingerprint());
        assert_eq!(restored.canonical_fingerprint(), q.canonical_fingerprint());

        // Degenerate models round-trip too.
        let empty = QuboModel::new(0);
        assert_eq!(QuboModel::from_bytes(&empty.to_bytes()), Some(empty));
    }

    #[test]
    fn byte_codec_rejects_torn_and_corrupt_records() {
        let mut q = QuboModel::new(3);
        q.add_linear(1, 4.0).add_quadratic(0, 2, -1.0);
        let bytes = q.to_bytes();
        // Every strict prefix is a torn tail a crashed writer could leave.
        for cut in 0..bytes.len() {
            assert_eq!(QuboModel::from_bytes(&bytes[..cut]), None, "prefix of {cut} bytes");
        }
        // Trailing garbage is rejected, not silently ignored.
        let mut longer = bytes.clone();
        longer.push(0);
        assert_eq!(QuboModel::from_bytes(&longer), None);
        // A wrong version tag is rejected.
        let mut wrong = bytes;
        wrong[0] ^= 0xFF;
        assert_eq!(QuboModel::from_bytes(&wrong), None);
    }
}
