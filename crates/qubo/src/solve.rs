//! Exact and baseline solvers over QUBO models, plus the shared
//! [`SolveResult`] record every solver in the workspace reports.

use crate::compiled::CompiledQubo;
use crate::model::{bits_from_index, QuboModel};
use rand::Rng;
use std::time::Instant;

/// Outcome of a QUBO solve: best assignment found plus solver telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveResult {
    /// Best assignment found.
    pub bits: Vec<bool>,
    /// Energy of `bits` (including model offset).
    pub energy: f64,
    /// Number of full or incremental energy evaluations performed.
    pub evaluations: u64,
    /// Wall-clock solve time in seconds.
    pub seconds: f64,
    /// Whether the solver proves this is the global optimum.
    pub certified_optimal: bool,
}

/// Maximum variable count accepted by [`solve_exact`] (2^26 states).
pub const MAX_EXACT_VARS: usize = 26;

/// Exhaustive enumeration: certified global optimum for small models.
///
/// # Panics
/// Panics if the model has more than [`MAX_EXACT_VARS`] variables.
pub fn solve_exact(q: &QuboModel) -> SolveResult {
    solve_exact_compiled(&q.compile())
}

/// [`solve_exact`] on an existing compilation — the primary entry point for
/// compile-once callers.
///
/// # Panics
/// Panics if the compilation has more than [`MAX_EXACT_VARS`] variables.
pub fn solve_exact_compiled(c: &CompiledQubo) -> SolveResult {
    let n = c.n_vars();
    assert!(n <= MAX_EXACT_VARS, "{n} variables exceeds exact-solver cap {MAX_EXACT_VARS}");
    let start = Instant::now();
    if n == 0 {
        return SolveResult {
            bits: Vec::new(),
            energy: c.offset(),
            evaluations: 1,
            seconds: start.elapsed().as_secs_f64(),
            certified_optimal: true,
        };
    }
    // Gray-code walk with incremental deltas: each step flips one variable,
    // evaluated in O(deg) on the compiled CSR form.
    let mut x = vec![false; n];
    let mut energy = c.energy(&x);
    let mut best = energy;
    let mut best_index = 0usize;
    let total = 1usize << n;
    let mut gray_prev = 0usize;
    for k in 1..total {
        let gray = k ^ (k >> 1);
        let flipped = (gray ^ gray_prev).trailing_zeros() as usize;
        gray_prev = gray;
        energy += c.flip_delta(&x, flipped);
        x[flipped] = !x[flipped];
        if energy < best {
            best = energy;
            best_index = gray;
        }
    }
    SolveResult {
        bits: bits_from_index(best_index, n),
        energy: best,
        evaluations: total as u64,
        seconds: start.elapsed().as_secs_f64(),
        certified_optimal: true,
    }
}

/// Uniform random search baseline: evaluates `samples` random assignments.
pub fn solve_random(q: &QuboModel, samples: u64, rng: &mut impl Rng) -> SolveResult {
    solve_random_compiled(&q.compile(), samples, rng)
}

/// [`solve_random`] on an existing compilation.
pub fn solve_random_compiled(c: &CompiledQubo, samples: u64, rng: &mut impl Rng) -> SolveResult {
    let start = Instant::now();
    let n = c.n_vars();
    let mut best_bits = vec![false; n];
    let mut best = c.energy(&best_bits);
    let mut x = vec![false; n];
    for _ in 0..samples {
        for b in &mut x {
            *b = rng.random::<bool>();
        }
        let e = c.energy(&x);
        if e < best {
            best = e;
            best_bits.copy_from_slice(&x);
        }
    }
    SolveResult {
        bits: best_bits,
        energy: best,
        evaluations: samples + 1,
        seconds: start.elapsed().as_secs_f64(),
        certified_optimal: false,
    }
}

/// Steepest-descent local search from a random start: flips the best
/// improving variable until a local minimum, restarting `restarts` times.
pub fn solve_greedy_descent(q: &QuboModel, restarts: usize, rng: &mut impl Rng) -> SolveResult {
    solve_greedy_descent_compiled(&q.compile(), restarts, rng)
}

/// [`solve_greedy_descent`] on an existing compilation.
pub fn solve_greedy_descent_compiled(
    c: &CompiledQubo,
    restarts: usize,
    rng: &mut impl Rng,
) -> SolveResult {
    let start = Instant::now();
    let n = c.n_vars();
    let mut best_bits = vec![false; n];
    let mut best = c.energy(&best_bits);
    let mut evals = 1u64;
    let mut x = vec![false; n];
    // `local[i]` = energy delta contribution sum of active neighbors + linear.
    let mut local = vec![0.0f64; n];
    for _ in 0..restarts.max(1) {
        for b in &mut x {
            *b = rng.random::<bool>();
        }
        let mut energy = c.energy(&x);
        evals += 1;
        c.local_fields_into(&x, &mut local);
        loop {
            // Find best improving flip.
            let mut best_i = usize::MAX;
            let mut best_delta = -1e-12;
            for i in 0..n {
                let delta = if x[i] { -local[i] } else { local[i] };
                if delta < best_delta {
                    best_delta = delta;
                    best_i = i;
                }
            }
            if best_i == usize::MAX {
                break;
            }
            // Apply flip and update local fields of neighbors.
            energy += c.apply_flip(&mut x, &mut local, best_i);
            evals += 1;
        }
        if energy < best {
            best = energy;
            best_bits.copy_from_slice(&x);
        }
    }
    SolveResult {
        bits: best_bits,
        energy: best,
        evaluations: evals,
        seconds: start.elapsed().as_secs_f64(),
        certified_optimal: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_model() -> QuboModel {
        let mut q = QuboModel::new(6);
        q.add_linear(0, 2.0)
            .add_linear(1, -3.0)
            .add_linear(4, 1.0)
            .add_quadratic(0, 1, 1.5)
            .add_quadratic(1, 2, -2.0)
            .add_quadratic(2, 3, 4.0)
            .add_quadratic(3, 4, -1.0)
            .add_quadratic(4, 5, -2.5)
            .add_offset(1.0);
        q
    }

    #[test]
    fn exact_finds_global_optimum() {
        let q = sample_model();
        let res = solve_exact(&q);
        assert!(res.certified_optimal);
        // Verify against brute force with direct evaluation.
        let mut best = f64::INFINITY;
        for idx in 0..(1 << 6) {
            best = best.min(q.energy(&bits_from_index(idx, 6)));
        }
        assert!((res.energy - best).abs() < 1e-12);
        assert!((q.energy(&res.bits) - res.energy).abs() < 1e-12);
    }

    #[test]
    fn exact_handles_empty_model() {
        let q = QuboModel::new(0);
        let res = solve_exact(&q);
        assert_eq!(res.energy, 0.0);
        assert!(res.bits.is_empty());
    }

    #[test]
    fn random_search_never_beats_exact() {
        let q = sample_model();
        let mut rng = StdRng::seed_from_u64(1);
        let exact = solve_exact(&q);
        let rand = solve_random(&q, 200, &mut rng);
        assert!(rand.energy >= exact.energy - 1e-12);
    }

    #[test]
    fn greedy_descent_reaches_local_minimum() {
        let q = sample_model();
        let mut rng = StdRng::seed_from_u64(3);
        let res = solve_greedy_descent(&q, 20, &mut rng);
        // No single flip can improve.
        for i in 0..q.n_vars() {
            assert!(q.flip_delta(&res.bits, i) >= -1e-9, "flip {i} improves");
        }
        // With 20 restarts on 6 vars it should find the optimum.
        let exact = solve_exact(&q);
        assert!((res.energy - exact.energy).abs() < 1e-9);
    }
}
