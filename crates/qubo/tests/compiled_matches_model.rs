//! Property tests: the compiled CSR form is observationally identical to
//! the `BTreeMap`-backed model it was built from — same energies, same flip
//! deltas, same local fields — on randomly generated models, assignments,
//! and densities (including edge cases like coupling-free models).

use proptest::prelude::*;
use qdm_qubo::model::{bits_from_index, QuboModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random model over `n` variables with the given coupling density.
fn random_model(n: usize, density: f64, seed: u64) -> QuboModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut q = QuboModel::new(n);
    for i in 0..n {
        if rng.random::<f64>() < 0.8 {
            q.add_linear(i, rng.random_range(-3.0..3.0));
        }
        for j in (i + 1)..n {
            if rng.random::<f64>() < density {
                q.add_quadratic(i, j, rng.random_range(-2.0..2.0));
            }
        }
    }
    q.add_offset(rng.random_range(-1.0..1.0));
    q
}

fn random_bits(n: usize, rng: &mut StdRng) -> Vec<bool> {
    (0..n).map(|_| rng.random::<bool>()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compiled_energy_matches_model(
        n in 1usize..32,
        density_pct in 0usize..=100,
        seed in any::<u64>(),
    ) {
        let q = random_model(n, density_pct as f64 / 100.0, seed);
        let c = q.compile();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5);
        for _ in 0..16 {
            let x = random_bits(n, &mut rng);
            // Same summation order on both paths: exactly equal, not close.
            prop_assert_eq!(c.energy(&x), q.energy(&x));
        }
    }

    #[test]
    fn compiled_flip_delta_matches_model_and_energy_difference(
        n in 1usize..24,
        density_pct in 0usize..=100,
        seed in any::<u64>(),
    ) {
        let q = random_model(n, density_pct as f64 / 100.0, seed);
        let c = q.compile();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5A5A);
        let x = random_bits(n, &mut rng);
        for i in 0..n {
            prop_assert_eq!(c.flip_delta(&x, i), q.flip_delta(&x, i));
            let mut y = x.clone();
            y[i] = !y[i];
            let diff = q.energy(&y) - q.energy(&x);
            prop_assert!((c.flip_delta(&x, i) - diff).abs() < 1e-9);
        }
    }

    #[test]
    fn local_fields_agree_with_flip_deltas(
        n in 1usize..24,
        seed in any::<u64>(),
    ) {
        let q = random_model(n, 0.3, seed);
        let c = q.compile();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0F0F);
        let x = random_bits(n, &mut rng);
        let fields = c.local_fields(&x);
        for i in 0..n {
            let delta = if x[i] { -fields[i] } else { fields[i] };
            prop_assert_eq!(delta, c.flip_delta(&x, i));
        }
    }

    #[test]
    fn apply_flip_tracks_exact_energy(
        n in 2usize..16,
        seed in any::<u64>(),
    ) {
        let q = random_model(n, 0.4, seed);
        let c = q.compile();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF0F0);
        let mut x = random_bits(n, &mut rng);
        let mut fields = c.local_fields(&x);
        let mut energy = c.energy(&x);
        for _ in 0..32 {
            let i = rng.random_range(0..n);
            energy += c.apply_flip(&mut x, &mut fields, i);
            prop_assert!((energy - c.energy(&x)).abs() < 1e-9);
        }
    }

    #[test]
    fn degree_stats_match_the_interaction_graph(
        n in 1usize..24,
        density_pct in 0usize..=100,
        seed in any::<u64>(),
    ) {
        let q = random_model(n, density_pct as f64 / 100.0, seed);
        let c = q.compile();
        prop_assert_eq!(c.n_interactions(), q.n_interactions());
        let adj = q.neighbor_lists();
        for (i, adj_row) in adj.iter().enumerate() {
            prop_assert_eq!(c.degree(i), adj_row.len());
            let (nbrs, ws) = c.row(i);
            let row: Vec<(usize, f64)> =
                nbrs.iter().zip(ws).map(|(&j, &w)| (j as usize, w)).collect();
            prop_assert_eq!(row, adj_row.clone());
        }
        let max = adj.iter().map(Vec::len).max().unwrap_or(0);
        prop_assert_eq!(c.max_degree(), max);
    }
}

#[test]
fn compiled_energy_matches_model_exhaustively_on_small_model() {
    let q = random_model(10, 0.5, 42);
    let c = q.compile();
    for idx in 0..(1usize << 10) {
        let x = bits_from_index(idx, 10);
        assert_eq!(c.energy(&x), q.energy(&x), "index {idx}");
    }
}
