//! No-op `Serialize` / `Deserialize` derive macros: they accept any item and
//! emit nothing, so `#[derive(Serialize, Deserialize)]` annotations across
//! the workspace compile without the real serde (unavailable offline).

use proc_macro::TokenStream;

/// Accepts the annotated item and expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts the annotated item and expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
