//! Graph-colored sweep parallelism (`simulated_annealing_colored`):
//! bit-identical results at every thread count, and energy bookkeeping that
//! stays equivalent to fresh full evaluation — the within-class flips are
//! mutually independent, so the accumulated incremental energy must match
//! `CompiledQubo::energy` of the final bits.

use proptest::prelude::*;
use qdm_anneal::sa::{simulated_annealing_colored, SaParams};
use qdm_qubo::model::QuboModel;
use qdm_qubo::solve::{solve_exact, SolveResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_model(seed: u64, n: usize, density: f64) -> QuboModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut q = QuboModel::new(n);
    for i in 0..n {
        q.add_linear(i, rng.random_range(-3.0..3.0));
        for j in (i + 1)..n {
            if rng.random::<f64>() < density {
                q.add_quadratic(i, j, rng.random_range(-2.0..2.0));
            }
        }
    }
    q
}

fn assert_identical(a: &SolveResult, b: &SolveResult, context: &str) {
    assert_eq!(a.bits, b.bits, "{context}: bits differ");
    assert_eq!(a.energy.to_bits(), b.energy.to_bits(), "{context}: energy differs");
    assert_eq!(a.evaluations, b.evaluations, "{context}: evaluation counts differ");
}

#[test]
fn colored_sweeps_are_bit_identical_across_thread_counts() {
    // The 600-var/0.4% case produces color classes large enough to clear
    // the per-thread chunk floor, so the scoped-thread fan-out actually
    // runs; the smaller cases exercise the inline path under the same
    // assertions.
    for (model_seed, n, density) in
        [(1u64, 48usize, 0.15), (2, 96, 0.08), (3, 64, 0.3), (4, 600, 0.004)]
    {
        let q = random_model(model_seed, n, density);
        let c = q.compile();
        let params = SaParams { restarts: 3, sweeps: 40, ..SaParams::scaled_to(&q) };
        for sa_seed in 0..3u64 {
            let serial = simulated_annealing_colored(&c, &params, sa_seed, 1);
            for threads in [2usize, 4, 16] {
                let parallel = simulated_annealing_colored(&c, &params, sa_seed, threads);
                assert_identical(
                    &serial,
                    &parallel,
                    &format!("model {model_seed} ({n} vars), seed {sa_seed}, {threads} threads"),
                );
            }
        }
    }
}

#[test]
fn colored_sweeps_match_exact_optimum_on_small_models() {
    for seed in 0..4u64 {
        let q = random_model(seed + 20, 12, 0.35);
        let exact = solve_exact(&q);
        let res = simulated_annealing_colored(&q.compile(), &SaParams::scaled_to(&q), seed, 2);
        assert!(
            (res.energy - exact.energy).abs() < 1e-9,
            "seed {seed}: colored {} vs exact {}",
            res.energy,
            exact.energy
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The colored-sweep vs sequential-sweep energy-equivalence property:
    /// colored incremental bookkeeping (simultaneous within-class flips)
    /// and the sequential path's fresh evaluation agree on the energy of
    /// the returned assignment, across random models, densities, and
    /// seeds — and the colored trajectory itself is thread-count-invariant.
    #[test]
    fn colored_energy_bookkeeping_is_equivalent_to_fresh_evaluation(
        n in 2usize..40,
        density_pct in 0usize..=60,
        seed in any::<u64>(),
    ) {
        let q = random_model(seed, n, density_pct as f64 / 100.0);
        let c = q.compile();
        let params = SaParams { restarts: 2, sweeps: 12, ..SaParams::scaled_to(&q) };
        let colored = simulated_annealing_colored(&c, &params, seed ^ 0x5A5A, 1);
        // Energy equivalence: what the simultaneous class updates
        // accumulated equals what a sequential full evaluation reports.
        prop_assert!((c.energy(&colored.bits) - colored.energy).abs() < 1e-9);
        prop_assert!((q.energy(&colored.bits) - colored.energy).abs() < 1e-9);
        // Thread-count invariance on the same trajectory.
        let threaded = simulated_annealing_colored(&c, &params, seed ^ 0x5A5A, 3);
        prop_assert_eq!(&colored.bits, &threaded.bits);
        prop_assert_eq!(colored.energy.to_bits(), threaded.energy.to_bits());
    }
}
