//! Integration tests for the parallel-restart simulated annealer: results
//! must be bit-identical to the serial reference (`threads = 1`) at every
//! thread count, because restart seeds are derived per index (SplitMix64)
//! and the best-pick scans restarts in index order regardless of which
//! thread ran which restart.

use qdm_anneal::sa::{simulated_annealing_parallel, SaParams};
use qdm_qubo::model::QuboModel;
use qdm_qubo::solve::{solve_exact, SolveResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_model(seed: u64, n: usize, density: f64) -> QuboModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut q = QuboModel::new(n);
    for i in 0..n {
        q.add_linear(i, rng.random_range(-3.0..3.0));
        for j in (i + 1)..n {
            if rng.random::<f64>() < density {
                q.add_quadratic(i, j, rng.random_range(-2.0..2.0));
            }
        }
    }
    q
}

/// Everything except wall-clock time must match exactly.
fn assert_identical(a: &SolveResult, b: &SolveResult, context: &str) {
    assert_eq!(a.bits, b.bits, "{context}: bits differ");
    assert_eq!(a.energy.to_bits(), b.energy.to_bits(), "{context}: energy differs");
    assert_eq!(a.evaluations, b.evaluations, "{context}: evaluation counts differ");
    assert_eq!(a.certified_optimal, b.certified_optimal, "{context}");
}

#[test]
fn parallel_sa_is_bit_identical_across_thread_counts() {
    for (model_seed, n) in [(1u64, 24usize), (2, 40), (3, 64)] {
        let q = random_model(model_seed, n, 0.2);
        let params = SaParams { restarts: 8, sweeps: 60, ..SaParams::scaled_to(&q) };
        for sa_seed in 0..3u64 {
            let serial = simulated_annealing_parallel(&q, &params, sa_seed, 1);
            for threads in [2usize, 4] {
                let parallel = simulated_annealing_parallel(&q, &params, sa_seed, threads);
                assert_identical(
                    &serial,
                    &parallel,
                    &format!("model {model_seed} ({n} vars), seed {sa_seed}, {threads} threads"),
                );
            }
        }
    }
}

#[test]
fn thread_count_above_restarts_is_clamped_not_broken() {
    let q = random_model(7, 16, 0.3);
    let params = SaParams { restarts: 2, sweeps: 40, ..SaParams::scaled_to(&q) };
    let serial = simulated_annealing_parallel(&q, &params, 11, 1);
    let oversubscribed = simulated_annealing_parallel(&q, &params, 11, 64);
    assert_identical(&serial, &oversubscribed, "64 threads for 2 restarts");
}

#[test]
fn parallel_sa_result_is_consistent_and_near_optimal_on_small_models() {
    for seed in 0..4u64 {
        let q = random_model(seed + 20, 12, 0.4);
        let exact = solve_exact(&q);
        let res = simulated_annealing_parallel(&q, &SaParams::scaled_to(&q), seed, 4);
        assert!(
            (q.energy(&res.bits) - res.energy).abs() < 1e-9,
            "reported energy must match reported bits"
        );
        assert!(
            (res.energy - exact.energy).abs() < 1e-9,
            "seed {seed}: parallel SA {} vs exact {}",
            res.energy,
            exact.energy
        );
    }
}

#[test]
fn distinct_base_seeds_explore_distinct_trajectories() {
    let q = random_model(5, 48, 0.15);
    // Deliberately truncated anneals: with 2 sweeps on 48 variables the
    // best-seen assignment is still dominated by the random init, so
    // distinct seed streams virtually never coincide.
    let params = SaParams { restarts: 1, sweeps: 2, ..SaParams::scaled_to(&q) };
    let a = simulated_annealing_parallel(&q, &params, 1, 2);
    let b = simulated_annealing_parallel(&q, &params, 2, 2);
    // Same model, same params: both are valid solves...
    assert!((q.energy(&a.bits) - a.energy).abs() < 1e-9);
    assert!((q.energy(&b.bits) - b.energy).abs() < 1e-9);
    // ...but from independent seed streams.
    assert_ne!(a.bits, b.bits, "different base seeds should not replay each other");
}
