//! Classical simulated annealing over QUBO models.
//!
//! The classical reference point for the annealing-based rows of Table I:
//! single-flip Metropolis dynamics with a cooling schedule, incremental
//! local-field bookkeeping (O(deg) per flip), and independent restarts.
//!
//! Three entry points share one hot loop over the compiled CSR form
//! ([`CompiledQubo`]), each also available as a `*_compiled` variant that
//! accepts an existing compilation (the runtime compiles each job once and
//! every solver runs on the shared form):
//!
//! - [`simulated_annealing`] — the historical API: one caller-threaded RNG,
//!   restarts run back to back on the calling thread;
//! - [`simulated_annealing_parallel`] — restarts fan out across a scoped
//!   thread pool with per-restart SplitMix64-derived seeds and a
//!   deterministic index-ordered best-pick, so the returned assignment,
//!   energy, and evaluation count are bit-identical at any thread count
//!   (including 1, the serial reference the tests compare against);
//! - [`simulated_annealing_colored`] — parallelism *inside* one restart for
//!   large instances: a greedy graph coloring of the interaction graph
//!   partitions each sweep into independence classes whose proposals are
//!   evaluated concurrently, with the same bit-identical-at-any-thread-count
//!   discipline.

use qdm_qubo::compiled::{Coloring, CompiledQubo};
use qdm_qubo::model::QuboModel;
use qdm_qubo::probe::{NoProbe, RestartStats, SolverCheckpoint, StageProbe};
use qdm_qubo::solve::SolveResult;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Cooling schedule for the Metropolis temperature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Schedule {
    /// Geometric interpolation from `t_start` to `t_end`.
    Geometric,
    /// Linear interpolation from `t_start` to `t_end`.
    Linear,
}

impl Schedule {
    /// Temperature at progress `frac` in `[0, 1]`.
    pub fn temperature(&self, t_start: f64, t_end: f64, frac: f64) -> f64 {
        match self {
            Schedule::Geometric => t_start * (t_end / t_start).powf(frac),
            Schedule::Linear => t_start + (t_end - t_start) * frac,
        }
    }
}

/// Parameters for [`simulated_annealing`].
#[derive(Debug, Clone, Copy)]
pub struct SaParams {
    /// Full sweeps (each sweep proposes one flip per variable).
    pub sweeps: usize,
    /// Initial temperature.
    pub t_start: f64,
    /// Final temperature.
    pub t_end: f64,
    /// Cooling schedule.
    pub schedule: Schedule,
    /// Independent restarts; the best result across restarts is returned.
    pub restarts: usize,
}

impl Default for SaParams {
    fn default() -> Self {
        Self { sweeps: 200, t_start: 10.0, t_end: 0.05, schedule: Schedule::Geometric, restarts: 4 }
    }
}

impl SaParams {
    /// Scales the default temperature range to the coefficient magnitude of
    /// a model, which keeps acceptance rates sane across problem scales.
    pub fn scaled_to(q: &QuboModel) -> Self {
        let scale = q.max_abs_coefficient().max(1e-9);
        Self { t_start: 2.0 * scale, t_end: 0.01 * scale, ..Self::default() }
    }

    /// [`Self::scaled_to`] from an existing compilation (same scale value:
    /// `max_abs_coefficient` agrees between the two forms exactly).
    pub fn scaled_to_compiled(c: &CompiledQubo) -> Self {
        let scale = c.max_abs_coefficient().max(1e-9);
        Self { t_start: 2.0 * scale, t_end: 0.01 * scale, ..Self::default() }
    }
}

/// Variable count at which annealing backends switch from restart fan-out to
/// graph-colored within-restart sweeps ([`simulated_annealing_colored`]).
/// Below it the sequential sweep's incremental O(1)-per-rejection bookkeeping
/// wins; above it a sweep is wide enough for color classes to amortize the
/// per-class coordination.
pub const COLORED_SWEEP_MIN_VARS: usize = 512;

/// One annealing restart on the compiled form: random init, Metropolis
/// sweeps with incremental local fields, best-seen tracking. Reuses the
/// caller's `x` / `local` buffers; updates `best` / `best_bits` in place and
/// returns `(evaluations, accepted_flips)`. The acceptance counter is a
/// plain local increment on a branch already taken, so profiling adds no
/// RNG draws and no extra work to the hot loop.
fn anneal_restart(
    c: &CompiledQubo,
    params: &SaParams,
    rng: &mut impl Rng,
    x: &mut [bool],
    local: &mut [f64],
    best: &mut f64,
    best_bits: &mut [bool],
) -> (u64, u64) {
    let n = c.n_vars();
    let mut evals: u64 = 1; // the full energy evaluation below
    let mut accepted: u64 = 0;
    for b in x.iter_mut() {
        *b = rng.random::<bool>();
    }
    let mut energy = c.energy(x);
    c.local_fields_into(x, local);
    let total_sweeps = params.sweeps.max(1);
    for sweep in 0..total_sweeps {
        let frac = sweep as f64 / total_sweeps as f64;
        let t = params.schedule.temperature(params.t_start, params.t_end, frac).max(1e-12);
        for i in 0..n {
            let delta = if x[i] { -local[i] } else { local[i] };
            let accept = delta <= 0.0 || rng.random::<f64>() < (-delta / t).exp();
            evals += 1;
            if accept {
                accepted += 1;
                energy += c.apply_flip(x, local, i);
                if energy < *best {
                    *best = energy;
                    best_bits.copy_from_slice(x);
                }
            }
        }
    }
    (evals, accepted)
}

/// Runs simulated annealing and returns the best assignment found.
///
/// Compiles the model once and runs every restart on the CSR hot loop; the
/// RNG stream consumed is identical to the historical implementation, so
/// fixed-seed callers get the same trajectories as before the compilation
/// layer existed.
pub fn simulated_annealing(q: &QuboModel, params: &SaParams, rng: &mut impl Rng) -> SolveResult {
    simulated_annealing_compiled(&q.compile(), params, rng)
}

/// [`simulated_annealing`] on an existing compilation — the primary entry
/// point for compile-once callers; the RNG stream and result are identical
/// to the model-accepting wrapper.
pub fn simulated_annealing_compiled(
    c: &CompiledQubo,
    params: &SaParams,
    rng: &mut impl Rng,
) -> SolveResult {
    simulated_annealing_probed(c, params, rng, &NoProbe)
}

/// [`simulated_annealing_compiled`] reporting per-restart counters (sweeps,
/// proposals, accepted flips) to `probe`. The RNG stream and result are
/// bit-identical to the unprobed entry point: profiling only reads local
/// counters the hot loop already maintains, and the
/// [`StageProbe::should_stop`] checkpoint polled at each restart boundary
/// consumes no randomness. A probe that stops early gets the best-so-far
/// result of the restarts that completed.
pub fn simulated_annealing_probed(
    c: &CompiledQubo,
    params: &SaParams,
    rng: &mut impl Rng,
    probe: &dyn StageProbe,
) -> SolveResult {
    let start = Instant::now();
    let n = c.n_vars();
    let mut best_bits = vec![false; n];
    let mut best = c.energy(&best_bits);
    let mut evals: u64 = 1;
    sa_restart_loop(c, params, rng, probe, 0, &mut best_bits, &mut best, &mut evals);
    SolveResult {
        bits: best_bits,
        energy: best,
        evaluations: evals,
        seconds: start.elapsed().as_secs_f64(),
        certified_optimal: false,
    }
}

/// The sequential restart loop shared by [`simulated_annealing_probed`] and
/// [`simulated_annealing_resume`]: restarts `first..restarts`, threading one
/// caller RNG through all of them, updating the running best in place.
/// After each restart it reports [`RestartStats`] and — only for probes
/// that opted in via [`StageProbe::wants_checkpoints`] — a resumable
/// [`SolverCheckpoint`] carrying the RNG state at the boundary. Emitting a
/// checkpoint consumes no randomness, so checkpointed runs are bit-identical
/// to unobserved ones.
#[allow(clippy::too_many_arguments)]
fn sa_restart_loop(
    c: &CompiledQubo,
    params: &SaParams,
    rng: &mut impl Rng,
    probe: &dyn StageProbe,
    first: usize,
    best_bits: &mut [bool],
    best: &mut f64,
    evals: &mut u64,
) {
    let n = c.n_vars();
    let mut x = vec![false; n];
    let mut local = vec![0.0f64; n];
    for r in first..params.restarts.max(1) {
        if probe.should_stop() {
            break;
        }
        let (restart_evals, accepted) =
            anneal_restart(c, params, rng, &mut x, &mut local, best, best_bits);
        *evals += restart_evals;
        probe.on_restart(&RestartStats {
            solver: "sa",
            restart: r as u64,
            sweeps: params.sweeps.max(1) as u64,
            proposals: restart_evals - 1,
            accepted,
        });
        if probe.wants_checkpoints() {
            probe.on_checkpoint(&SolverCheckpoint {
                solver: "sa",
                next_restart: r as u64 + 1,
                evaluations: *evals,
                best_bits: best_bits.to_vec(),
                best_energy: *best,
                rng_state: rng.checkpoint_state(),
            });
        }
    }
}

/// Resumes a sequential anneal from a [`SolverCheckpoint`] captured by a
/// checkpoint-subscribed probe: the caller RNG is rebuilt from the recorded
/// state, the running best and evaluation count continue from the recorded
/// values, and the remaining restarts run exactly as the uninterrupted solve
/// would have run them — the returned bits, energy, and evaluation count are
/// bit-identical to never having stopped. `params` must be the params of the
/// original run.
///
/// # Panics
/// Panics if the checkpoint carries no RNG state (it came from a
/// derived-seed solver loop, not `"sa"`) or if its assignment length does
/// not match the model.
pub fn simulated_annealing_resume(
    c: &CompiledQubo,
    params: &SaParams,
    checkpoint: &SolverCheckpoint,
    probe: &dyn StageProbe,
) -> SolveResult {
    let start = Instant::now();
    assert_eq!(
        checkpoint.best_bits.len(),
        c.n_vars(),
        "checkpoint assignment does not match the model"
    );
    let state = checkpoint.rng_state.expect("sequential SA checkpoints carry RNG state");
    let mut rng = StdRng::from_state(state);
    let mut best_bits = checkpoint.best_bits.clone();
    let mut best = checkpoint.best_energy;
    let mut evals = checkpoint.evaluations;
    sa_restart_loop(
        c,
        params,
        &mut rng,
        probe,
        checkpoint.next_restart as usize,
        &mut best_bits,
        &mut best,
        &mut evals,
    );
    SolveResult {
        bits: best_bits,
        energy: best,
        evaluations: evals,
        seconds: start.elapsed().as_secs_f64(),
        certified_optimal: false,
    }
}

/// SplitMix64 finalizer: decorrelates the per-restart seeds derived from
/// one base seed, so restart streams are independent regardless of how the
/// restarts are distributed over threads.
fn restart_seed(base: u64, restart: u64) -> u64 {
    let mut z = base ^ restart.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Simulated annealing with restarts fanned out across `threads` scoped
/// worker threads.
///
/// Each restart runs on its own `StdRng` seeded by a SplitMix64 mix of
/// `seed` and the restart index. Restarts are partitioned into contiguous
/// ascending-index chunks, one per thread; each chunk tracks its running
/// best with strict `<` (so the lowest restart index wins ties), and the
/// final pick scans chunks in index order with strict `<` again — the
/// composition selects the globally lowest-index minimum regardless of how
/// the restarts were partitioned. That makes the returned bits, energy, and
/// evaluation count **bit-identical for any `threads` value** — `threads =
/// 1` is the serial reference. Only `seconds` varies with the machine.
/// Evaluation counts are directly comparable to [`simulated_annealing`]
/// with the same params (one shared baseline plus the per-restart sweeps).
///
/// Restart trajectories differ from [`simulated_annealing`] (which threads
/// one RNG through all restarts and therefore cannot be order-independent);
/// solution quality is statistically the same.
pub fn simulated_annealing_parallel(
    q: &QuboModel,
    params: &SaParams,
    seed: u64,
    threads: usize,
) -> SolveResult {
    simulated_annealing_parallel_compiled(&q.compile(), params, seed, threads)
}

/// [`simulated_annealing_parallel`] on an existing compilation — the primary
/// entry point for compile-once callers; results are identical to the
/// model-accepting wrapper.
pub fn simulated_annealing_parallel_compiled(
    c: &CompiledQubo,
    params: &SaParams,
    seed: u64,
    threads: usize,
) -> SolveResult {
    simulated_annealing_parallel_probed(c, params, seed, threads, &NoProbe)
}

/// [`simulated_annealing_parallel_compiled`] reporting per-restart counters
/// to `probe`. Restarts run on scoped worker threads, so the probe sees
/// events concurrently and in no guaranteed order; the solve result stays
/// bit-identical to the unprobed entry point at any thread count.
pub fn simulated_annealing_parallel_probed(
    c: &CompiledQubo,
    params: &SaParams,
    seed: u64,
    threads: usize,
    probe: &(dyn StageProbe + '_),
) -> SolveResult {
    let start = Instant::now();
    let n = c.n_vars();
    let restarts = params.restarts.max(1);
    let threads = threads.clamp(1, restarts);
    let chunk = restarts.div_ceil(threads);
    let n_chunks = restarts.div_ceil(chunk);

    // All-false baseline, evaluated once and shared by every chunk.
    let baseline_bits = vec![false; n];
    let baseline = c.energy(&baseline_bits);

    // One chunk per thread: the scratch buffers are allocated per thread
    // and reused across that chunk's restarts; `anneal_restart` keeps
    // updating the chunk's running best in place (strict `<`, ascending
    // restart order), so the chunk result is its lowest-index minimum.
    let run_chunk = |k: usize| -> (Vec<bool>, f64, u64) {
        let mut x = vec![false; n];
        let mut local = vec![0.0f64; n];
        let mut best_bits = baseline_bits.clone();
        let mut best = baseline;
        let mut evals: u64 = 0;
        for r in (k * chunk)..((k + 1) * chunk).min(restarts) {
            if probe.should_stop() {
                break;
            }
            let mut rng = StdRng::seed_from_u64(restart_seed(seed, r as u64));
            let (restart_evals, accepted) =
                anneal_restart(c, params, &mut rng, &mut x, &mut local, &mut best, &mut best_bits);
            evals += restart_evals;
            probe.on_restart(&RestartStats {
                solver: "sa-parallel",
                restart: r as u64,
                sweeps: params.sweeps.max(1) as u64,
                proposals: restart_evals - 1,
                accepted,
            });
        }
        (best_bits, best, evals)
    };

    let mut outcomes: Vec<Option<(Vec<bool>, f64, u64)>> = vec![None; n_chunks];
    if threads == 1 {
        outcomes[0] = Some(run_chunk(0));
    } else {
        std::thread::scope(|scope| {
            for (k, slot) in outcomes.iter_mut().enumerate() {
                let run_chunk = &run_chunk;
                scope.spawn(move || *slot = Some(run_chunk(k)));
            }
        });
    }

    let mut best_bits = baseline_bits;
    let mut best = baseline;
    let mut evals: u64 = 1; // the shared baseline evaluation
    for outcome in outcomes {
        let (bits, energy, chunk_evals) = outcome.expect("every chunk ran");
        evals += chunk_evals;
        if energy < best {
            best = energy;
            best_bits = bits;
        }
    }
    SolveResult {
        bits: best_bits,
        energy: best,
        evaluations: evals,
        seconds: start.elapsed().as_secs_f64(),
        certified_optimal: false,
    }
}

/// Minimum proposals each scoped thread must have before [`decide_class`]
/// fans a color class out: below this the per-class spawn/join cost dwarfs
/// the O(deg) delta evaluations, so the class runs inline. Gating on size
/// cannot change any value — decisions are chunking-invariant — it only
/// decides who computes them.
const MIN_CLASS_CHUNK: usize = 128;

/// Evaluates one color class's flip proposals against the frozen pre-class
/// state `x`, splitting the class into up to `threads` contiguous chunks
/// evaluated on scoped threads (classes smaller than [`MIN_CLASS_CHUNK`]
/// per thread run inline). `decisions[k]` receives `(delta, accept)` for
/// the class's k-th member. Each decision is a pure function of
/// `(x, u[k], t)` — chunk boundaries cannot change any value — so the
/// filled decisions are bit-identical at every `threads` value.
fn decide_class(
    c: &CompiledQubo,
    x: &[bool],
    class: &[u32],
    u: &[f64],
    t: f64,
    threads: usize,
    decisions: &mut [(f64, bool)],
) {
    let eval = |members: &[u32], u: &[f64], decisions: &mut [(f64, bool)]| {
        for (k, &i) in members.iter().enumerate() {
            let d = c.flip_delta(x, i as usize);
            decisions[k] = (d, d <= 0.0 || u[k] < (-d / t).exp());
        }
    };
    let threads = threads.min(class.len() / MIN_CLASS_CHUNK).max(1);
    if threads == 1 {
        eval(class, u, decisions);
        return;
    }
    let chunk = class.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for ((members, u), decisions) in
            class.chunks(chunk).zip(u.chunks(chunk)).zip(decisions.chunks_mut(chunk))
        {
            let eval = &eval;
            scope.spawn(move || eval(members, u, decisions));
        }
    });
}

/// Simulated annealing with graph-colored sweep parallelism *inside* each
/// restart, for instances too large for restart fan-out alone.
///
/// A greedy coloring of the interaction graph (precomputed once from the
/// compilation) partitions every sweep into independence classes. Within a
/// class no two variables are coupled, so all proposals are evaluated
/// against the same frozen state, concurrently, and every accepted flip's
/// delta stays exact when applied together. Determinism discipline, same as
/// [`simulated_annealing_parallel`]:
///
/// - restart RNGs are SplitMix64-derived from `seed` by restart index;
/// - one uniform draw per proposal happens *on the calling thread* in class
///   order (unconditionally — unlike the sequential sweep, which skips the
///   draw for downhill moves; the two entry points are therefore distinct
///   trajectories of the same dynamics);
/// - decisions are evaluated in parallel chunks (pure per-proposal
///   functions, so chunking is invisible);
/// - accepted flips are applied and the running energy accumulated in
///   ascending index order.
///
/// The returned bits, energy, and evaluation count are **bit-identical for
/// any `threads` value**; `threads = 1` is the serial reference the tests
/// compare against.
pub fn simulated_annealing_colored(
    c: &CompiledQubo,
    params: &SaParams,
    seed: u64,
    threads: usize,
) -> SolveResult {
    simulated_annealing_colored_probed(c, params, seed, threads, &NoProbe)
}

/// [`simulated_annealing_colored`] reporting per-restart counters to
/// `probe`. The probe fires once per restart from the calling thread; the
/// solve result stays bit-identical to the unprobed entry point.
pub fn simulated_annealing_colored_probed(
    c: &CompiledQubo,
    params: &SaParams,
    seed: u64,
    threads: usize,
    probe: &dyn StageProbe,
) -> SolveResult {
    let start = Instant::now();
    let n = c.n_vars();
    let coloring: Coloring = c.greedy_coloring();
    let max_class = coloring.max_class_len();

    let mut best_bits = vec![false; n];
    let mut best = c.energy(&best_bits);
    let mut evals: u64 = 1;
    let mut x = vec![false; n];
    let mut u = vec![0.0f64; max_class];
    let mut decisions = vec![(0.0f64, false); max_class];

    let total_sweeps = params.sweeps.max(1);
    for r in 0..params.restarts.max(1) {
        if probe.should_stop() {
            break;
        }
        let mut rng = StdRng::seed_from_u64(restart_seed(seed, r as u64));
        for b in x.iter_mut() {
            *b = rng.random::<bool>();
        }
        let mut energy = c.energy(&x);
        evals += 1;
        let mut proposals: u64 = 0;
        let mut accepted: u64 = 0;
        for sweep in 0..total_sweeps {
            let frac = sweep as f64 / total_sweeps as f64;
            let t = params.schedule.temperature(params.t_start, params.t_end, frac).max(1e-12);
            for class in &coloring.classes {
                let len = class.len();
                for slot in u[..len].iter_mut() {
                    *slot = rng.random::<f64>();
                }
                decide_class(c, &x, class, &u[..len], t, threads, &mut decisions[..len]);
                evals += len as u64;
                proposals += len as u64;
                // Class members are pairwise non-adjacent: each accepted
                // delta remains the exact energy difference even after
                // earlier members of the class flipped.
                for (k, &i) in class.iter().enumerate() {
                    let (delta, accept) = decisions[k];
                    if accept {
                        accepted += 1;
                        x[i as usize] = !x[i as usize];
                        energy += delta;
                        if energy < best {
                            best = energy;
                            best_bits.copy_from_slice(&x);
                        }
                    }
                }
            }
        }
        probe.on_restart(&RestartStats {
            solver: "sa-colored",
            restart: r as u64,
            sweeps: total_sweeps as u64,
            proposals,
            accepted,
        });
        if probe.wants_checkpoints() {
            // Colored restarts derive their streams from (seed, restart
            // index), so the checkpoint needs no RNG state: resuming is
            // rerunning from `next_restart` with the same seed.
            probe.on_checkpoint(&SolverCheckpoint {
                solver: "sa-colored",
                next_restart: r as u64 + 1,
                evaluations: evals,
                best_bits: best_bits.clone(),
                best_energy: best,
                rng_state: None,
            });
        }
    }
    SolveResult {
        bits: best_bits,
        energy: best,
        evaluations: evals,
        seconds: start.elapsed().as_secs_f64(),
        certified_optimal: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdm_qubo::solve::solve_exact;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn hard_model(seed: u64, n: usize) -> QuboModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut q = QuboModel::new(n);
        for i in 0..n {
            q.add_linear(i, rng.random_range(-3.0..3.0));
            for j in (i + 1)..n {
                if rng.random::<f64>() < 0.4 {
                    q.add_quadratic(i, j, rng.random_range(-2.0..2.0));
                }
            }
        }
        q
    }

    #[test]
    fn schedules_interpolate_endpoints() {
        let g = Schedule::Geometric;
        assert!((g.temperature(10.0, 0.1, 0.0) - 10.0).abs() < 1e-12);
        assert!((g.temperature(10.0, 0.1, 1.0) - 0.1).abs() < 1e-12);
        let l = Schedule::Linear;
        assert!((l.temperature(4.0, 2.0, 0.5) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn sa_finds_optimum_on_small_models() {
        for seed in 0..5 {
            let q = hard_model(seed, 12);
            let exact = solve_exact(&q);
            let mut rng = StdRng::seed_from_u64(seed + 100);
            let res = simulated_annealing(&q, &SaParams::scaled_to(&q), &mut rng);
            assert!(
                (res.energy - exact.energy).abs() < 1e-9,
                "seed {seed}: SA {} vs exact {}",
                res.energy,
                exact.energy
            );
            assert!((q.energy(&res.bits) - res.energy).abs() < 1e-9);
        }
    }

    #[test]
    fn sa_energy_is_consistent_with_bits() {
        let q = hard_model(7, 20);
        let mut rng = StdRng::seed_from_u64(9);
        let res = simulated_annealing(&q, &SaParams::default(), &mut rng);
        assert!((q.energy(&res.bits) - res.energy).abs() < 1e-9);
    }

    #[test]
    fn more_sweeps_do_not_hurt() {
        let q = hard_model(3, 18);
        let mut rng1 = StdRng::seed_from_u64(5);
        let mut rng2 = StdRng::seed_from_u64(5);
        let short = simulated_annealing(
            &q,
            &SaParams { sweeps: 5, restarts: 1, ..SaParams::scaled_to(&q) },
            &mut rng1,
        );
        let long = simulated_annealing(
            &q,
            &SaParams { sweeps: 500, restarts: 4, ..SaParams::scaled_to(&q) },
            &mut rng2,
        );
        assert!(long.energy <= short.energy + 1e-9);
    }

    #[test]
    fn parallel_sa_finds_optimum_on_small_models() {
        for seed in 0..5 {
            let q = hard_model(seed, 12);
            let exact = solve_exact(&q);
            let res = simulated_annealing_parallel(&q, &SaParams::scaled_to(&q), seed + 200, 2);
            assert!(
                (res.energy - exact.energy).abs() < 1e-9,
                "seed {seed}: parallel SA {} vs exact {}",
                res.energy,
                exact.energy
            );
            assert!((q.energy(&res.bits) - res.energy).abs() < 1e-9);
        }
    }

    #[test]
    fn parallel_sa_handles_empty_model() {
        let q = QuboModel::new(0);
        let res = simulated_annealing_parallel(&q, &SaParams::default(), 1, 4);
        assert_eq!(res.energy, 0.0);
        assert!(res.bits.is_empty());
    }

    #[test]
    fn colored_sa_finds_optimum_on_small_models() {
        for seed in 0..5 {
            let q = hard_model(seed, 12);
            let exact = solve_exact(&q);
            let c = q.compile();
            let res = simulated_annealing_colored(&c, &SaParams::scaled_to(&q), seed + 300, 2);
            assert!(
                (res.energy - exact.energy).abs() < 1e-9,
                "seed {seed}: colored SA {} vs exact {}",
                res.energy,
                exact.energy
            );
            assert!((q.energy(&res.bits) - res.energy).abs() < 1e-9);
        }
    }

    #[test]
    fn probed_sa_matches_unprobed_and_counts_restarts() {
        use std::sync::Mutex;

        #[derive(Default)]
        struct Collect(Mutex<Vec<RestartStats>>);
        impl StageProbe for Collect {
            fn on_restart(&self, stats: &RestartStats) {
                self.0.lock().unwrap().push(*stats);
            }
        }

        let q = hard_model(2, 18);
        let c = q.compile();
        let params = SaParams::scaled_to(&q);
        let mut rng1 = StdRng::seed_from_u64(8);
        let mut rng2 = StdRng::seed_from_u64(8);
        let plain = simulated_annealing_compiled(&c, &params, &mut rng1);
        let probe = Collect::default();
        let probed = simulated_annealing_probed(&c, &params, &mut rng2, &probe);
        assert_eq!(plain.bits, probed.bits, "probing must not perturb the anneal");
        assert_eq!(plain.energy, probed.energy);
        assert_eq!(plain.evaluations, probed.evaluations);

        let stats = probe.0.lock().unwrap().clone();
        assert_eq!(stats.len(), params.restarts);
        for (r, s) in stats.iter().enumerate() {
            assert_eq!(s.solver, "sa");
            assert_eq!(s.restart, r as u64);
            assert_eq!(s.sweeps, params.sweeps as u64);
            assert_eq!(s.proposals, (params.sweeps * 18) as u64);
            assert!(s.accepted <= s.proposals);
            assert!(s.accepted > 0, "a hot anneal accepts something");
        }

        // The parallel and colored variants report through the same hook.
        let par_probe = Collect::default();
        let par = simulated_annealing_parallel_probed(&c, &params, 99, 2, &par_probe);
        assert_eq!(par.bits, simulated_annealing_parallel_compiled(&c, &params, 99, 2).bits);
        assert_eq!(par_probe.0.lock().unwrap().len(), params.restarts);

        let col_probe = Collect::default();
        let col = simulated_annealing_colored_probed(&c, &params, 99, 2, &col_probe);
        assert_eq!(col.bits, simulated_annealing_colored(&c, &params, 99, 2).bits);
        let col_stats = col_probe.0.lock().unwrap().clone();
        assert_eq!(col_stats.len(), params.restarts);
        assert!(col_stats.iter().all(|s| s.solver == "sa-colored"));
    }

    #[test]
    fn checkpoint_resume_is_bit_identical_to_uninterrupted_run() {
        use std::sync::Mutex;

        /// Collects checkpoints and simulates a crash by stopping after
        /// `halt_after` restarts.
        struct Checkpointing {
            seen: Mutex<Vec<SolverCheckpoint>>,
            halt_after: u64,
        }
        impl StageProbe for Checkpointing {
            fn wants_checkpoints(&self) -> bool {
                true
            }
            fn on_checkpoint(&self, checkpoint: &SolverCheckpoint) {
                self.seen.lock().unwrap().push(checkpoint.clone());
            }
            fn should_stop(&self) -> bool {
                self.seen.lock().unwrap().len() as u64 >= self.halt_after
            }
        }

        let q = hard_model(4, 16);
        let c = q.compile();
        let params = SaParams { restarts: 4, ..SaParams::scaled_to(&q) };

        // Ground truth: the uninterrupted run.
        let mut rng = StdRng::seed_from_u64(77);
        let full = simulated_annealing_compiled(&c, &params, &mut rng);

        // Crash after restart 1, resume from the captured checkpoint.
        let probe = Checkpointing { seen: Mutex::new(Vec::new()), halt_after: 2 };
        let mut rng = StdRng::seed_from_u64(77);
        let _partial = simulated_annealing_probed(&c, &params, &mut rng, &probe);
        let checkpoints = probe.seen.into_inner().unwrap();
        assert_eq!(checkpoints.len(), 2);
        let cp = checkpoints.last().unwrap();
        assert_eq!(cp.solver, "sa");
        assert_eq!(cp.next_restart, 2);
        assert!(cp.rng_state.is_some(), "sequential SA must capture the caller-RNG state");
        assert!(cp.evaluations < full.evaluations);

        let resumed = simulated_annealing_resume(&c, &params, cp, &NoProbe);
        assert_eq!(resumed.bits, full.bits, "resume must be bit-identical");
        assert_eq!(resumed.energy, full.energy);
        assert_eq!(resumed.evaluations, full.evaluations);

        // Checkpoint emission must not perturb the stream: the interrupted-
        // plus-resumed pair above already proves it, but also check a fully
        // checkpointed run end to end.
        let probe = Checkpointing { seen: Mutex::new(Vec::new()), halt_after: u64::MAX };
        let mut rng = StdRng::seed_from_u64(77);
        let observed = simulated_annealing_probed(&c, &params, &mut rng, &probe);
        assert_eq!(observed.bits, full.bits);
        assert_eq!(observed.evaluations, full.evaluations);
        assert_eq!(probe.seen.into_inner().unwrap().len(), params.restarts);
    }

    #[test]
    fn colored_checkpoints_resume_by_restart_index() {
        use std::sync::Mutex;

        struct Collect(Mutex<Vec<SolverCheckpoint>>);
        impl StageProbe for Collect {
            fn wants_checkpoints(&self) -> bool {
                true
            }
            fn on_checkpoint(&self, checkpoint: &SolverCheckpoint) {
                self.0.lock().unwrap().push(checkpoint.clone());
            }
        }

        let q = hard_model(6, 14);
        let c = q.compile();
        let params = SaParams { restarts: 3, ..SaParams::scaled_to(&q) };
        let full = simulated_annealing_colored(&c, &params, 55, 2);
        let probe = Collect(Mutex::new(Vec::new()));
        let observed = simulated_annealing_colored_probed(&c, &params, 55, 2, &probe);
        assert_eq!(observed.bits, full.bits, "checkpointing must not perturb the solve");
        let cps = probe.0.into_inner().unwrap();
        assert_eq!(cps.len(), params.restarts);
        for (r, cp) in cps.iter().enumerate() {
            assert_eq!(cp.solver, "sa-colored");
            assert_eq!(cp.next_restart, r as u64 + 1);
            assert!(cp.rng_state.is_none(), "derived-seed restarts carry no RNG state");
        }
        // The final checkpoint is the full answer: derived seeds mean a
        // resume is simply a rerun from next_restart, so the last boundary
        // already holds the uninterrupted best.
        let last = cps.last().unwrap();
        assert_eq!(last.best_bits, full.bits);
        assert_eq!(last.evaluations, full.evaluations);
    }

    #[test]
    fn colored_sa_handles_empty_and_coupling_free_models() {
        let res =
            simulated_annealing_colored(&QuboModel::new(0).compile(), &SaParams::default(), 1, 4);
        assert_eq!(res.energy, 0.0);
        assert!(res.bits.is_empty());

        let mut lin = QuboModel::new(6);
        for i in 0..6 {
            lin.add_linear(i, if i % 2 == 0 { 1.0 } else { -1.0 });
        }
        // No couplings: a single color class proposes every variable at once.
        let res = simulated_annealing_colored(&lin.compile(), &SaParams::scaled_to(&lin), 2, 3);
        assert_eq!(res.energy, -3.0);
    }
}
