//! Classical simulated annealing over QUBO models.
//!
//! The classical reference point for the annealing-based rows of Table I:
//! single-flip Metropolis dynamics with a cooling schedule, incremental
//! local-field bookkeeping (O(deg) per flip), and independent restarts.

use qdm_qubo::model::QuboModel;
use qdm_qubo::solve::SolveResult;
use rand::Rng;
use std::time::Instant;

/// Cooling schedule for the Metropolis temperature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Schedule {
    /// Geometric interpolation from `t_start` to `t_end`.
    Geometric,
    /// Linear interpolation from `t_start` to `t_end`.
    Linear,
}

impl Schedule {
    /// Temperature at progress `frac` in `[0, 1]`.
    pub fn temperature(&self, t_start: f64, t_end: f64, frac: f64) -> f64 {
        match self {
            Schedule::Geometric => t_start * (t_end / t_start).powf(frac),
            Schedule::Linear => t_start + (t_end - t_start) * frac,
        }
    }
}

/// Parameters for [`simulated_annealing`].
#[derive(Debug, Clone, Copy)]
pub struct SaParams {
    /// Full sweeps (each sweep proposes one flip per variable).
    pub sweeps: usize,
    /// Initial temperature.
    pub t_start: f64,
    /// Final temperature.
    pub t_end: f64,
    /// Cooling schedule.
    pub schedule: Schedule,
    /// Independent restarts; the best result across restarts is returned.
    pub restarts: usize,
}

impl Default for SaParams {
    fn default() -> Self {
        Self { sweeps: 200, t_start: 10.0, t_end: 0.05, schedule: Schedule::Geometric, restarts: 4 }
    }
}

impl SaParams {
    /// Scales the default temperature range to the coefficient magnitude of
    /// a model, which keeps acceptance rates sane across problem scales.
    pub fn scaled_to(q: &QuboModel) -> Self {
        let scale = q.max_abs_coefficient().max(1e-9);
        Self { t_start: 2.0 * scale, t_end: 0.01 * scale, ..Self::default() }
    }
}

/// Runs simulated annealing and returns the best assignment found.
pub fn simulated_annealing(q: &QuboModel, params: &SaParams, rng: &mut impl Rng) -> SolveResult {
    let start = Instant::now();
    let n = q.n_vars();
    let adj = q.neighbor_lists();
    let mut best_bits = vec![false; n];
    let mut best = q.energy(&best_bits);
    let mut evals: u64 = 1;

    let mut x = vec![false; n];
    let mut local = vec![0.0f64; n];
    for _ in 0..params.restarts.max(1) {
        // Random start.
        for b in &mut x {
            *b = rng.random::<bool>();
        }
        let mut energy = q.energy(&x);
        evals += 1;
        for i in 0..n {
            local[i] = q.linear(i);
            for &(nb, w) in &adj[i] {
                if x[nb] {
                    local[i] += w;
                }
            }
        }
        let total_sweeps = params.sweeps.max(1);
        for sweep in 0..total_sweeps {
            let frac = sweep as f64 / total_sweeps as f64;
            let t = params.schedule.temperature(params.t_start, params.t_end, frac).max(1e-12);
            for i in 0..n {
                let delta = if x[i] { -local[i] } else { local[i] };
                let accept = delta <= 0.0 || rng.random::<f64>() < (-delta / t).exp();
                evals += 1;
                if accept {
                    let sign = if x[i] { -1.0 } else { 1.0 };
                    x[i] = !x[i];
                    energy += delta;
                    for &(nb, w) in &adj[i] {
                        local[nb] += sign * w;
                    }
                    if energy < best {
                        best = energy;
                        best_bits.copy_from_slice(&x);
                    }
                }
            }
        }
    }
    SolveResult {
        bits: best_bits,
        energy: best,
        evaluations: evals,
        seconds: start.elapsed().as_secs_f64(),
        certified_optimal: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdm_qubo::solve::solve_exact;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn hard_model(seed: u64, n: usize) -> QuboModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut q = QuboModel::new(n);
        for i in 0..n {
            q.add_linear(i, rng.random_range(-3.0..3.0));
            for j in (i + 1)..n {
                if rng.random::<f64>() < 0.4 {
                    q.add_quadratic(i, j, rng.random_range(-2.0..2.0));
                }
            }
        }
        q
    }

    #[test]
    fn schedules_interpolate_endpoints() {
        let g = Schedule::Geometric;
        assert!((g.temperature(10.0, 0.1, 0.0) - 10.0).abs() < 1e-12);
        assert!((g.temperature(10.0, 0.1, 1.0) - 0.1).abs() < 1e-12);
        let l = Schedule::Linear;
        assert!((l.temperature(4.0, 2.0, 0.5) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn sa_finds_optimum_on_small_models() {
        for seed in 0..5 {
            let q = hard_model(seed, 12);
            let exact = solve_exact(&q);
            let mut rng = StdRng::seed_from_u64(seed + 100);
            let res = simulated_annealing(&q, &SaParams::scaled_to(&q), &mut rng);
            assert!(
                (res.energy - exact.energy).abs() < 1e-9,
                "seed {seed}: SA {} vs exact {}",
                res.energy,
                exact.energy
            );
            assert!((q.energy(&res.bits) - res.energy).abs() < 1e-9);
        }
    }

    #[test]
    fn sa_energy_is_consistent_with_bits() {
        let q = hard_model(7, 20);
        let mut rng = StdRng::seed_from_u64(9);
        let res = simulated_annealing(&q, &SaParams::default(), &mut rng);
        assert!((q.energy(&res.bits) - res.energy).abs() < 1e-9);
    }

    #[test]
    fn more_sweeps_do_not_hurt() {
        let q = hard_model(3, 18);
        let mut rng1 = StdRng::seed_from_u64(5);
        let mut rng2 = StdRng::seed_from_u64(5);
        let short = simulated_annealing(
            &q,
            &SaParams { sweeps: 5, restarts: 1, ..SaParams::scaled_to(&q) },
            &mut rng1,
        );
        let long = simulated_annealing(
            &q,
            &SaParams { sweeps: 500, restarts: 4, ..SaParams::scaled_to(&q) },
            &mut rng2,
        );
        assert!(long.energy <= short.energy + 1e-9);
    }
}
