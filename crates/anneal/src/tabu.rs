//! Tabu search over QUBO models — the strongest classical metaheuristic
//! baseline in this crate (tabu solvers are also what D-Wave's own hybrid
//! tooling uses classically).

use qdm_qubo::compiled::CompiledQubo;
use qdm_qubo::model::QuboModel;
use qdm_qubo::probe::{NoProbe, RestartStats, SolverCheckpoint, StageProbe};
use qdm_qubo::solve::SolveResult;
use rand::rngs::StdRng;
use rand::Rng;
use std::time::Instant;

/// Parameters for [`tabu_search`].
#[derive(Debug, Clone, Copy)]
pub struct TabuParams {
    /// Total move iterations.
    pub iterations: usize,
    /// Tabu tenure: number of iterations a flipped variable stays tabu.
    pub tenure: usize,
    /// Independent restarts.
    pub restarts: usize,
}

impl Default for TabuParams {
    fn default() -> Self {
        Self { iterations: 2000, tenure: 10, restarts: 2 }
    }
}

/// Runs single-flip tabu search with an aspiration criterion (a tabu move is
/// allowed when it improves the global best).
pub fn tabu_search(q: &QuboModel, params: &TabuParams, rng: &mut impl Rng) -> SolveResult {
    tabu_search_compiled(&q.compile(), params, rng)
}

/// [`tabu_search`] on an existing compilation — the primary entry point for
/// compile-once callers; the RNG stream and result are identical to the
/// model-accepting wrapper.
pub fn tabu_search_compiled(
    c: &CompiledQubo,
    params: &TabuParams,
    rng: &mut impl Rng,
) -> SolveResult {
    tabu_search_probed(c, params, rng, &NoProbe)
}

/// [`tabu_search_compiled`] reporting per-restart counters to `probe`:
/// iterations run before convergence (as `sweeps`), candidate scans (as
/// `proposals`, one per variable per iteration), and moves taken (as
/// `accepted`). The RNG stream and result are bit-identical to the unprobed
/// entry point.
pub fn tabu_search_probed(
    c: &CompiledQubo,
    params: &TabuParams,
    rng: &mut impl Rng,
    probe: &dyn StageProbe,
) -> SolveResult {
    let start = Instant::now();
    let n = c.n_vars();
    let mut best_bits = vec![false; n];
    let mut best = c.energy(&best_bits);
    let mut evals: u64 = 1;

    if n == 0 {
        return SolveResult {
            bits: best_bits,
            energy: best,
            evaluations: evals,
            seconds: start.elapsed().as_secs_f64(),
            certified_optimal: false,
        };
    }

    tabu_restart_loop(c, params, rng, probe, 0, &mut best_bits, &mut best, &mut evals);
    SolveResult {
        bits: best_bits,
        energy: best,
        evaluations: evals,
        seconds: start.elapsed().as_secs_f64(),
        certified_optimal: false,
    }
}

/// Resumes a tabu search from a [`SolverCheckpoint`] captured by a
/// checkpoint-wanting probe during [`tabu_search_probed`]. With the same
/// compiled model and params, running restarts `0..k`, checkpointing, and
/// resuming here produces bits, energy, and evaluation counts identical to
/// the uninterrupted run.
///
/// # Panics
/// Panics if the checkpoint's assignment length does not match the model or
/// if it carries no RNG state (tabu checkpoints always do).
pub fn tabu_search_resume(
    c: &CompiledQubo,
    params: &TabuParams,
    checkpoint: &SolverCheckpoint,
    probe: &dyn StageProbe,
) -> SolveResult {
    let start = Instant::now();
    let n = c.n_vars();
    assert_eq!(checkpoint.best_bits.len(), n, "checkpoint assignment length must match the model");
    let mut best_bits = checkpoint.best_bits.clone();
    let mut best = checkpoint.best_energy;
    let mut evals = checkpoint.evaluations;
    let mut rng = StdRng::from_state(
        checkpoint.rng_state.expect("tabu checkpoints carry the caller-RNG state"),
    );
    tabu_restart_loop(
        c,
        params,
        &mut rng,
        probe,
        checkpoint.next_restart as usize,
        &mut best_bits,
        &mut best,
        &mut evals,
    );
    SolveResult {
        bits: best_bits,
        energy: best,
        evaluations: evals,
        seconds: start.elapsed().as_secs_f64(),
        certified_optimal: false,
    }
}

/// The shared restart loop behind [`tabu_search_probed`] and
/// [`tabu_search_resume`]: runs restarts `first..restarts`, updating the
/// caller's best/evals accumulators in place, and emits a resumable
/// checkpoint after each restart when the probe asks for them.
#[allow(clippy::too_many_arguments)]
fn tabu_restart_loop(
    c: &CompiledQubo,
    params: &TabuParams,
    rng: &mut impl Rng,
    probe: &dyn StageProbe,
    first: usize,
    best_bits: &mut [bool],
    best: &mut f64,
    evals: &mut u64,
) {
    let n = c.n_vars();
    let mut x = vec![false; n];
    let mut local = vec![0.0f64; n];
    let mut tabu_until = vec![0usize; n];
    for restart in first..params.restarts.max(1) {
        if probe.should_stop() {
            break;
        }
        for b in &mut x {
            *b = rng.random::<bool>();
        }
        let mut energy = c.energy(&x);
        *evals += 1;
        c.local_fields_into(&x, &mut local);
        tabu_until.fill(0);
        let mut iters_run: u64 = 0;
        let mut moves: u64 = 0;
        for iter in 1..=params.iterations {
            iters_run += 1;
            // Select the best admissible flip.
            let mut chosen = usize::MAX;
            let mut chosen_delta = f64::INFINITY;
            for i in 0..n {
                let delta = if x[i] { -local[i] } else { local[i] };
                let is_tabu = tabu_until[i] > iter;
                let aspires = energy + delta < *best - 1e-12;
                if (!is_tabu || aspires) && delta < chosen_delta {
                    chosen_delta = delta;
                    chosen = i;
                }
            }
            if chosen == usize::MAX {
                break; // everything tabu and nothing aspires
            }
            energy += c.apply_flip(&mut x, &mut local, chosen);
            *evals += 1;
            moves += 1;
            tabu_until[chosen] = iter + params.tenure;
            if energy < *best {
                *best = energy;
                best_bits.copy_from_slice(&x);
            }
        }
        probe.on_restart(&RestartStats {
            solver: "tabu",
            restart: restart as u64,
            sweeps: iters_run,
            proposals: iters_run * n as u64,
            accepted: moves,
        });
        if probe.wants_checkpoints() {
            probe.on_checkpoint(&SolverCheckpoint {
                solver: "tabu",
                next_restart: restart as u64 + 1,
                evaluations: *evals,
                best_bits: best_bits.to_vec(),
                best_energy: *best,
                rng_state: rng.checkpoint_state(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdm_qubo::solve::solve_exact;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_model(seed: u64, n: usize) -> QuboModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut q = QuboModel::new(n);
        for i in 0..n {
            q.add_linear(i, rng.random_range(-2.0..2.0));
            for j in (i + 1)..n {
                if rng.random::<f64>() < 0.35 {
                    q.add_quadratic(i, j, rng.random_range(-2.0..2.0));
                }
            }
        }
        q
    }

    #[test]
    fn tabu_matches_exact_on_small_models() {
        for seed in 0..5 {
            let q = random_model(seed, 14);
            let exact = solve_exact(&q);
            let mut rng = StdRng::seed_from_u64(seed + 7);
            let res = tabu_search(&q, &TabuParams::default(), &mut rng);
            assert!(
                (res.energy - exact.energy).abs() < 1e-9,
                "seed {seed}: tabu {} vs exact {}",
                res.energy,
                exact.energy
            );
        }
    }

    #[test]
    fn tabu_result_is_internally_consistent() {
        let q = random_model(42, 24);
        let mut rng = StdRng::seed_from_u64(43);
        let res = tabu_search(&q, &TabuParams::default(), &mut rng);
        assert!((q.energy(&res.bits) - res.energy).abs() < 1e-9);
    }

    #[test]
    fn probed_tabu_matches_unprobed_and_reports_restarts() {
        use std::sync::Mutex;

        #[derive(Default)]
        struct Collect(Mutex<Vec<RestartStats>>);
        impl StageProbe for Collect {
            fn on_restart(&self, stats: &RestartStats) {
                self.0.lock().unwrap().push(*stats);
            }
        }

        let q = random_model(11, 16);
        let c = q.compile();
        let params = TabuParams::default();
        let mut rng1 = StdRng::seed_from_u64(5);
        let mut rng2 = StdRng::seed_from_u64(5);
        let plain = tabu_search_compiled(&c, &params, &mut rng1);
        let probe = Collect::default();
        let probed = tabu_search_probed(&c, &params, &mut rng2, &probe);
        assert_eq!(plain.bits, probed.bits, "probing must not perturb the search");
        assert_eq!(plain.energy, probed.energy);
        assert_eq!(plain.evaluations, probed.evaluations);

        let stats = probe.0.lock().unwrap().clone();
        assert_eq!(stats.len(), params.restarts);
        for (r, s) in stats.iter().enumerate() {
            assert_eq!(s.solver, "tabu");
            assert_eq!(s.restart, r as u64);
            assert!(s.sweeps >= 1 && s.sweeps <= params.iterations as u64);
            assert_eq!(s.proposals, s.sweeps * 16);
            assert!(s.accepted <= s.sweeps, "at most one move per iteration");
        }
    }

    #[test]
    fn checkpoint_resume_is_bit_identical_to_uninterrupted_run() {
        use std::sync::Mutex;

        /// Collects every checkpoint; optionally reports stop after `halt_after`
        /// restarts to simulate a crash at a restart boundary.
        struct Checkpointing {
            seen: Mutex<Vec<SolverCheckpoint>>,
            halt_after: Option<u64>,
        }
        impl StageProbe for Checkpointing {
            fn wants_checkpoints(&self) -> bool {
                true
            }
            fn on_checkpoint(&self, checkpoint: &SolverCheckpoint) {
                self.seen.lock().unwrap().push(checkpoint.clone());
            }
            fn should_stop(&self) -> bool {
                match self.halt_after {
                    Some(k) => self.seen.lock().unwrap().len() as u64 >= k,
                    None => false,
                }
            }
        }

        let q = random_model(3, 18);
        let c = q.compile();
        let params = TabuParams { restarts: 4, ..TabuParams::default() };

        // Uninterrupted probed run: the ground truth.
        let mut rng = StdRng::seed_from_u64(21);
        let full = tabu_search_probed(&c, &params, &mut rng, &NoProbe);

        // Interrupted run: stop after 2 restarts, then resume from the
        // captured checkpoint.
        let probe = Checkpointing { seen: Mutex::new(Vec::new()), halt_after: Some(2) };
        let mut rng = StdRng::seed_from_u64(21);
        let _partial = tabu_search_probed(&c, &params, &mut rng, &probe);
        let checkpoints = probe.seen.into_inner().unwrap();
        assert_eq!(checkpoints.len(), 2);
        let cp = checkpoints.last().unwrap();
        assert_eq!(cp.solver, "tabu");
        assert_eq!(cp.next_restart, 2);
        assert!(cp.rng_state.is_some(), "tabu threads one RNG, so state must be captured");

        let resumed = tabu_search_resume(&c, &params, cp, &NoProbe);
        assert_eq!(resumed.bits, full.bits, "resume must be bit-identical");
        assert_eq!(resumed.energy, full.energy);
        assert_eq!(resumed.evaluations, full.evaluations);
    }

    #[test]
    fn checkpoints_are_skipped_without_a_wanting_probe() {
        // NoProbe leaves wants_checkpoints() false; the probed path must be
        // bit-identical to the plain path (no checkpoint construction, no
        // extra randomness).
        let q = random_model(8, 12);
        let c = q.compile();
        let params = TabuParams::default();
        let mut rng1 = StdRng::seed_from_u64(2);
        let mut rng2 = StdRng::seed_from_u64(2);
        let plain = tabu_search_compiled(&c, &params, &mut rng1);
        let probed = tabu_search_probed(&c, &params, &mut rng2, &NoProbe);
        assert_eq!(plain.bits, probed.bits);
        assert_eq!(plain.evaluations, probed.evaluations);
    }

    #[test]
    fn empty_model_is_fine() {
        let q = QuboModel::new(0);
        let mut rng = StdRng::seed_from_u64(1);
        let res = tabu_search(&q, &TabuParams::default(), &mut rng);
        assert_eq!(res.energy, 0.0);
    }
}
