//! Simulated quantum annealing (SQA) via path-integral Monte Carlo.
//!
//! This is the software stand-in for the D-Wave hardware used by the
//! annealing rows of Table I (see DESIGN.md substitution table). The
//! transverse-field Ising Hamiltonian
//! `H = H_classical - Gamma(t) * sum_i X_i`
//! is simulated with the Suzuki–Trotter decomposition: `P` coupled replicas
//! of the classical system, with ferromagnetic inter-replica coupling
//! `J_perp = -(P*T/2) * ln tanh(Gamma / (P*T))` that strengthens as the
//! transverse field `Gamma` anneals towards zero.

use qdm_qubo::compiled::CompiledQubo;
use qdm_qubo::model::QuboModel;
use qdm_qubo::probe::{NoProbe, RestartStats, StageProbe};
use qdm_qubo::solve::SolveResult;
use rand::Rng;
use std::time::Instant;

/// Parameters for [`simulated_quantum_annealing`].
#[derive(Debug, Clone, Copy)]
pub struct SqaParams {
    /// Number of Trotter replicas `P`.
    pub replicas: usize,
    /// Monte-Carlo sweeps over all (replica, spin) pairs.
    pub sweeps: usize,
    /// Initial transverse field `Gamma_0`.
    pub gamma_start: f64,
    /// Final transverse field (close to 0).
    pub gamma_end: f64,
    /// Simulation temperature `T` (in energy units of the Hamiltonian).
    pub temperature: f64,
}

impl Default for SqaParams {
    fn default() -> Self {
        Self { replicas: 16, sweeps: 300, gamma_start: 3.0, gamma_end: 1e-3, temperature: 0.05 }
    }
}

impl SqaParams {
    /// Scales the temperature and field to the coefficient magnitude of the
    /// model.
    pub fn scaled_to(q: &QuboModel) -> Self {
        let scale = q.max_abs_coefficient().max(1e-9);
        Self {
            gamma_start: 3.0 * scale,
            gamma_end: 1e-3 * scale,
            temperature: 0.05 * scale,
            ..Self::default()
        }
    }

    /// [`Self::scaled_to`] from an existing compilation (same scale value).
    pub fn scaled_to_compiled(c: &CompiledQubo) -> Self {
        let scale = c.max_abs_coefficient().max(1e-9);
        Self {
            gamma_start: 3.0 * scale,
            gamma_end: 1e-3 * scale,
            temperature: 0.05 * scale,
            ..Self::default()
        }
    }
}

/// Runs path-integral simulated quantum annealing on a QUBO and returns the
/// best classical configuration seen in any replica.
pub fn simulated_quantum_annealing(
    q: &QuboModel,
    params: &SqaParams,
    rng: &mut impl Rng,
) -> SolveResult {
    simulated_quantum_annealing_compiled(&q.compile(), params, rng)
}

/// [`simulated_quantum_annealing`] on an existing compilation — the primary
/// entry point for compile-once callers.
///
/// The transverse-field Ising form is derived *directly from the shared
/// [`CompiledQubo`]*: the Ising coupling graph has exactly the QUBO's
/// sparsity with `J_ij = w_ij / 4` (an exact power-of-two scale), so the
/// compiled CSR adjacency is reused as-is with a rescaled weight array
/// instead of re-deriving a second flat CSR from an intermediate
/// `IsingModel`. Field and constant accumulations visit terms in the same
/// order `IsingModel::from_qubo` does, so the dynamics (and the RNG stream)
/// are bit-identical to the historical model-based path.
pub fn simulated_quantum_annealing_compiled(
    c: &CompiledQubo,
    params: &SqaParams,
    rng: &mut impl Rng,
) -> SolveResult {
    simulated_quantum_annealing_probed(c, params, rng, &NoProbe)
}

/// [`simulated_quantum_annealing_compiled`] reporting aggregate Monte-Carlo
/// counters to `probe` (SQA has no restarts, so the whole run reports as one
/// `RestartStats` with the executed sweep count). The
/// [`StageProbe::should_stop`] checkpoint is polled at each sweep boundary
/// and consumes no randomness: probes that never stop leave the RNG stream
/// and result bit-identical to the unprobed entry point, and a probe that
/// stops early gets the best classical configuration seen so far.
pub fn simulated_quantum_annealing_probed(
    c: &CompiledQubo,
    params: &SqaParams,
    rng: &mut impl Rng,
    probe: &dyn StageProbe,
) -> SolveResult {
    let start = Instant::now();
    let n = c.n_vars();
    let p = params.replicas.max(2);
    let pt = p as f64 * params.temperature;

    if n == 0 {
        return SolveResult {
            bits: Vec::new(),
            energy: c.offset(),
            evaluations: 1,
            seconds: start.elapsed().as_secs_f64(),
            certified_optimal: false,
        };
    }

    // QUBO → Ising under x = (1 - s)/2, accumulated term-by-term in the
    // same order as `IsingModel::from_qubo` (linear terms by index, then
    // couplings by sorted key) so every float matches that path bit-for-bit.
    let mut constant = c.offset();
    let mut fields = vec![0.0f64; n];
    for (i, field) in fields.iter_mut().enumerate() {
        let a = c.linear(i);
        constant += a / 2.0;
        *field -= a / 2.0;
    }
    for ((i, j), w) in c.couplings_iter() {
        constant += w / 4.0;
        fields[i] -= w / 4.0;
        fields[j] -= w / 4.0;
    }
    // The Ising coupling CSR is the QUBO CSR with weights divided by 4:
    // same row offsets, same ascending neighbor order, exactly scaled
    // weights — no second CSR derivation.
    let j_weights: Vec<f64> = c.weights().iter().map(|&w| w / 4.0).collect();
    let row_offsets = c.row_offsets();
    let row = |i: usize| {
        let span = row_offsets[i]..row_offsets[i + 1];
        (&c.neighbors()[span.clone()], &j_weights[span])
    };

    // spins[r][i] in {-1.0, +1.0}, replicated random init.
    let mut spins: Vec<Vec<f64>> = (0..p)
        .map(|_| (0..n).map(|_| if rng.random::<bool>() { 1.0 } else { -1.0 }).collect())
        .collect();

    let classical_energy = |s: &[f64]| -> f64 {
        let mut e = constant;
        for (&hi, &si) in fields.iter().zip(s) {
            e += hi * si;
        }
        // Upper-triangular half only: each pair counted once, ascending
        // (i, j) order as in the model's own energy sum.
        for (i, &si) in s.iter().enumerate() {
            let (nbrs, ws) = row(i);
            for (&j, &w) in nbrs.iter().zip(ws) {
                let j = j as usize;
                if j > i {
                    e += w * si * s[j];
                }
            }
        }
        e
    };

    let mut best_bits = vec![false; n];
    let mut best = f64::INFINITY;
    let mut evals: u64 = 0;
    let record_best = |s: &[f64], best: &mut f64, best_bits: &mut Vec<bool>, e: f64| {
        if e < *best {
            *best = e;
            for (b, &si) in best_bits.iter_mut().zip(s) {
                *b = si < 0.0; // spin -1 encodes x = 1
            }
        }
    };

    for (r, s) in spins.iter().enumerate() {
        let e = classical_energy(s);
        evals += 1;
        let _ = r;
        record_best(s, &mut best, &mut best_bits, e);
    }

    let sweeps = params.sweeps.max(1);
    let mut sweeps_done: u64 = 0;
    let mut proposals: u64 = 0;
    let mut accepted: u64 = 0;
    for sweep in 0..sweeps {
        if probe.should_stop() {
            break;
        }
        let frac = sweep as f64 / sweeps as f64;
        // Linear annealing of the transverse field.
        let gamma = params.gamma_start + (params.gamma_end - params.gamma_start) * frac;
        // Trotter inter-replica coupling (ferromagnetic, negative).
        let x = (gamma / pt).tanh().max(1e-300);
        let j_perp = -0.5 * pt * x.ln(); // positive magnitude
        for r in 0..p {
            let up = (r + 1) % p;
            let down = (r + p - 1) % p;
            for i in 0..n {
                let si = spins[r][i];
                // Local classical field (per-replica weight 1/P).
                let mut h_local = fields[i];
                let (nbrs, ws) = row(i);
                for (&nb, &w) in nbrs.iter().zip(ws) {
                    h_local += w * spins[r][nb as usize];
                }
                let classical_delta = -2.0 * si * h_local / p as f64;
                // Inter-replica ferromagnetic term: -j_perp * s_{r,i} * (s_{up,i} + s_{down,i}).
                let quantum_delta = 2.0 * j_perp * si * (spins[up][i] + spins[down][i]);
                let delta = classical_delta + quantum_delta;
                evals += 1;
                proposals += 1;
                if delta <= 0.0
                    || rng.random::<f64>() < (-delta / params.temperature.max(1e-12)).exp()
                {
                    spins[r][i] = -si;
                    accepted += 1;
                }
            }
            // Track the best classical configuration of this replica.
            let e = classical_energy(&spins[r]);
            evals += 1;
            record_best(&spins[r], &mut best, &mut best_bits, e);
        }
        sweeps_done += 1;
    }
    probe.on_restart(&RestartStats {
        solver: "sqa",
        restart: 0,
        sweeps: sweeps_done,
        proposals,
        accepted,
    });

    SolveResult {
        bits: best_bits,
        energy: best,
        evaluations: evals,
        seconds: start.elapsed().as_secs_f64(),
        certified_optimal: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdm_qubo::solve::solve_exact;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_model(seed: u64, n: usize) -> QuboModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut q = QuboModel::new(n);
        for i in 0..n {
            q.add_linear(i, rng.random_range(-2.0..2.0));
            for j in (i + 1)..n {
                if rng.random::<f64>() < 0.5 {
                    q.add_quadratic(i, j, rng.random_range(-2.0..2.0));
                }
            }
        }
        q
    }

    #[test]
    fn sqa_solves_small_instances_optimally() {
        let mut hit = 0;
        for seed in 0..4 {
            let q = random_model(seed, 10);
            let exact = solve_exact(&q);
            let mut rng = StdRng::seed_from_u64(seed + 50);
            let res = simulated_quantum_annealing(&q, &SqaParams::scaled_to(&q), &mut rng);
            assert!((q.energy(&res.bits) - res.energy).abs() < 1e-9);
            if (res.energy - exact.energy).abs() < 1e-9 {
                hit += 1;
            }
        }
        assert!(hit >= 3, "SQA found optimum on only {hit}/4 instances");
    }

    #[test]
    fn sqa_handles_empty_model() {
        let q = QuboModel::new(0);
        let mut rng = StdRng::seed_from_u64(0);
        let res = simulated_quantum_annealing(&q, &SqaParams::default(), &mut rng);
        assert_eq!(res.energy, 0.0);
    }

    #[test]
    fn reported_energy_matches_bits() {
        let q = random_model(11, 16);
        let mut rng = StdRng::seed_from_u64(12);
        let res = simulated_quantum_annealing(&q, &SqaParams::scaled_to(&q), &mut rng);
        assert!((q.energy(&res.bits) - res.energy).abs() < 1e-9);
    }
}
