//! # qdm-anneal — annealing solvers and hardware embedding
//!
//! The software stand-in for the quantum annealers used by the
//! annealing-based rows of the paper's Table I (\[20\], \[23\]–\[26\], \[29\], \[30\]).
//! Per the substitution rule in DESIGN.md, D-Wave hardware is replaced by:
//!
//! - [`sa`] — classical simulated annealing (Metropolis single-flip);
//! - [`sqa`] — *simulated quantum annealing*: path-integral Monte Carlo of
//!   the transverse-field Ising model (Suzuki–Trotter replicas), the standard
//!   classical emulation of quantum annealing dynamics;
//! - [`tabu`] — tabu search, the strongest classical metaheuristic baseline;
//! - [`embedding`] — the Chimera topology and minor embedding with chains,
//!   reproducing the logical/physical mapping split described in Sec. III-B.
//!
//! ```
//! use qdm_qubo::prelude::*;
//! use qdm_anneal::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut q = QuboModel::new(3);
//! q.add_linear(0, -1.0).add_quadratic(0, 1, 2.0).add_quadratic(1, 2, -1.5);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let res = simulated_annealing(&q, &SaParams::scaled_to(&q), &mut rng);
//! assert_eq!(res.energy, solve_exact(&q).energy);
//! ```

#![warn(missing_docs)]

pub mod embedding;
pub mod sa;
pub mod sqa;
pub mod tabu;

/// Convenient re-exports of the most used items.
pub mod prelude {
    pub use crate::embedding::{
        chain_strength, clique_embedding, embed_ising, find_embedding, find_embedding_auto,
        solve_on_chimera, unembed, ChimeraGraph, EmbedError, Embedding, UnembedStats,
    };
    pub use crate::sa::{
        simulated_annealing, simulated_annealing_colored, simulated_annealing_compiled,
        simulated_annealing_parallel, simulated_annealing_parallel_compiled, SaParams, Schedule,
        COLORED_SWEEP_MIN_VARS,
    };
    pub use crate::sqa::{
        simulated_quantum_annealing, simulated_quantum_annealing_compiled,
        simulated_quantum_annealing_probed, SqaParams,
    };
    pub use crate::tabu::{tabu_search, tabu_search_compiled, TabuParams};
}

pub use prelude::*;
