//! Chimera topology and minor embedding — the *physical mapping* layer.
//!
//! Trummer & Koch's MQO-on-D-Wave pipeline \[20\] has two levels: the logical
//! QUBO and "the energy formula coherent with the physical design of the
//! quantum computer". An annealer's qubit graph is sparse (D-Wave 2X used
//! the Chimera topology), so each logical variable is represented by a
//! *chain* of physical qubits coupled ferromagnetically. This module
//! implements the Chimera graph, a greedy minor-embedding heuristic, logical
//! → physical Hamiltonian translation with a chain-strength heuristic, and
//! majority-vote unembedding with chain-break statistics.

use qdm_qubo::ising::IsingModel;
use qdm_qubo::model::QuboModel;
use std::collections::VecDeque;
use std::fmt;

/// The Chimera graph `C_m`: an `m x m` grid of `K_{4,4}` unit cells.
///
/// Qubit numbering: cell `(row, col)`, side `s` (0 = vertical partition,
/// 1 = horizontal partition), index `k in 0..4`; linear id
/// `((row * m + col) * 2 + s) * 4 + k`. Intra-cell edges form the complete
/// bipartite graph between the two sides; vertical inter-cell edges connect
/// side-0 qubits of vertically adjacent cells at equal `k`, horizontal
/// inter-cell edges connect side-1 qubits of horizontally adjacent cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChimeraGraph {
    m: usize,
}

impl ChimeraGraph {
    /// Creates a `C_m` graph (D-Wave 2X was `C_12`, 1152 qubits).
    pub fn new(m: usize) -> Self {
        assert!(m >= 1);
        Self { m }
    }

    /// Grid dimension `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Total physical qubits: `8 m^2`.
    pub fn n_qubits(&self) -> usize {
        8 * self.m * self.m
    }

    /// Linear id for `(row, col, side, k)`.
    pub fn qubit_id(&self, row: usize, col: usize, side: usize, k: usize) -> usize {
        debug_assert!(row < self.m && col < self.m && side < 2 && k < 4);
        ((row * self.m + col) * 2 + side) * 4 + k
    }

    /// Decomposes a linear id into `(row, col, side, k)`.
    pub fn coords(&self, q: usize) -> (usize, usize, usize, usize) {
        let k = q % 4;
        let side = (q / 4) % 2;
        let cell = q / 8;
        (cell / self.m, cell % self.m, side, k)
    }

    /// Neighbors of a physical qubit.
    pub fn neighbors(&self, q: usize) -> Vec<usize> {
        let (row, col, side, k) = self.coords(q);
        let mut out = Vec::with_capacity(6);
        // Intra-cell: complete bipartite to the other side.
        for j in 0..4 {
            out.push(self.qubit_id(row, col, 1 - side, j));
        }
        if side == 0 {
            // Vertical couplers.
            if row > 0 {
                out.push(self.qubit_id(row - 1, col, 0, k));
            }
            if row + 1 < self.m {
                out.push(self.qubit_id(row + 1, col, 0, k));
            }
        } else {
            // Horizontal couplers.
            if col > 0 {
                out.push(self.qubit_id(row, col - 1, 1, k));
            }
            if col + 1 < self.m {
                out.push(self.qubit_id(row, col + 1, 1, k));
            }
        }
        out
    }

    /// Whether a physical edge exists between `a` and `b`.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        a != b && self.neighbors(a).contains(&b)
    }

    /// All edges as `(a, b)` with `a < b`.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for q in 0..self.n_qubits() {
            for nb in self.neighbors(q) {
                if q < nb {
                    out.push((q, nb));
                }
            }
        }
        out
    }
}

/// A minor embedding: one chain of physical qubits per logical variable.
#[derive(Debug, Clone, Default)]
pub struct Embedding {
    /// `chains[v]` lists the physical qubits representing logical `v`.
    pub chains: Vec<Vec<usize>>,
}

impl Embedding {
    /// Total physical qubits used.
    pub fn physical_qubits(&self) -> usize {
        self.chains.iter().map(Vec::len).sum()
    }

    /// Longest chain length.
    pub fn max_chain_length(&self) -> usize {
        self.chains.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// Embedding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmbedError {
    /// Logical variable that could not be placed.
    pub variable: usize,
}

impl fmt::Display for EmbedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no room to embed logical variable {} — use a larger Chimera graph",
            self.variable
        )
    }
}

impl std::error::Error for EmbedError {}

/// Greedy minor-embedding heuristic (minorminer-style, simplified).
///
/// Variables are placed in decreasing-degree order. For each variable, a
/// multi-source BFS runs from every already-embedded neighbor chain through
/// *free* qubits; the root minimizing the summed distance is chosen and the
/// BFS paths to each neighbor chain are claimed into the new chain.
pub fn find_embedding(
    logical_adjacency: &[Vec<usize>],
    graph: &ChimeraGraph,
) -> Result<Embedding, EmbedError> {
    let n = logical_adjacency.len();
    let np = graph.n_qubits();
    let mut chains: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut used = vec![false; np];

    // Decreasing degree order (stable for determinism).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(logical_adjacency[v].len()));

    for &v in &order {
        let embedded_neighbors: Vec<usize> =
            logical_adjacency[v].iter().copied().filter(|&u| !chains[u].is_empty()).collect();

        if embedded_neighbors.is_empty() {
            // Place on the first free qubit.
            let Some(q) = (0..np).find(|&q| !used[q]) else {
                return Err(EmbedError { variable: v });
            };
            chains[v].push(q);
            used[q] = true;
            continue;
        }

        // BFS from each neighbor chain over free qubits.
        // dist[u][q], parent[u][q] for neighbor list index u.
        let mut dists: Vec<Vec<u32>> = Vec::with_capacity(embedded_neighbors.len());
        let mut parents: Vec<Vec<usize>> = Vec::with_capacity(embedded_neighbors.len());
        for &u in &embedded_neighbors {
            let mut dist = vec![u32::MAX; np];
            let mut parent = vec![usize::MAX; np];
            let mut queue = VecDeque::new();
            for &cq in &chains[u] {
                // Chain qubits are sources at distance 0; we may not pass
                // through them, only start from them.
                for nb in graph.neighbors(cq) {
                    if !used[nb] && dist[nb] > 1 {
                        dist[nb] = 1;
                        parent[nb] = cq;
                        queue.push_back(nb);
                    }
                }
            }
            while let Some(q) = queue.pop_front() {
                for nb in graph.neighbors(q) {
                    if !used[nb] && dist[nb] == u32::MAX {
                        dist[nb] = dist[q] + 1;
                        parent[nb] = q;
                        queue.push_back(nb);
                    }
                }
            }
            dists.push(dist);
            parents.push(parent);
        }

        // Choose the free root minimizing total distance.
        let mut best_root = usize::MAX;
        let mut best_cost = u64::MAX;
        for q in 0..np {
            if used[q] {
                continue;
            }
            let mut cost: u64 = 0;
            let mut ok = true;
            for dist in &dists {
                if dist[q] == u32::MAX {
                    ok = false;
                    break;
                }
                cost += dist[q] as u64;
            }
            if ok && cost < best_cost {
                best_cost = cost;
                best_root = q;
            }
        }
        if best_root == usize::MAX {
            return Err(EmbedError { variable: v });
        }

        // Claim the root and the path towards each neighbor chain.
        let mut chain = vec![best_root];
        used[best_root] = true;
        for (ui, _) in embedded_neighbors.iter().enumerate() {
            let mut q = best_root;
            loop {
                let p = parents[ui][q];
                debug_assert_ne!(p, usize::MAX, "path must lead to the neighbor chain");
                // Stop when the parent is inside the neighbor chain (dist 0 source).
                if used[p] {
                    break;
                }
                used[p] = true;
                chain.push(p);
                q = p;
            }
        }
        chains[v] = chain;
    }

    Ok(Embedding { chains })
}

/// The deterministic TRIAD clique embedding (Choi 2011): embeds the
/// complete graph `K_n` into `C_m` whenever `n <= 4m`, with every chain of
/// uniform length `m + 1`.
///
/// Chain `i = 4a + k` is the L-shaped path: horizontal qubits
/// `(row a, col 0..=a, side 1, index k)` plus vertical qubits
/// `(row a..m-1, col a, side 0, index k)`, meeting inside cell `(a, a)`.
pub fn clique_embedding(n: usize, graph: &ChimeraGraph) -> Result<Embedding, EmbedError> {
    let m = graph.m();
    if n > 4 * m {
        return Err(EmbedError { variable: 4 * m });
    }
    let mut chains = Vec::with_capacity(n);
    for i in 0..n {
        let (a, k) = (i / 4, i % 4);
        let mut chain = Vec::with_capacity(m + 1);
        for c in 0..=a {
            chain.push(graph.qubit_id(a, c, 1, k));
        }
        for r in a..m {
            chain.push(graph.qubit_id(r, a, 0, k));
        }
        chains.push(chain);
    }
    Ok(Embedding { chains })
}

/// Embedding strategy: try the greedy heuristic, and when it fails (dense
/// logical graphs defeat it) fall back to the clique embedding, which
/// handles any topology up to `K_{4m}`.
pub fn find_embedding_auto(
    logical_adjacency: &[Vec<usize>],
    graph: &ChimeraGraph,
) -> Result<Embedding, EmbedError> {
    match find_embedding(logical_adjacency, graph) {
        Ok(e) => Ok(e),
        Err(first_err) => clique_embedding(logical_adjacency.len(), graph).map_err(|_| first_err),
    }
}

/// Chain-strength heuristic: strong enough to dominate the logical
/// couplings a chain participates in (1.5x the max absolute coefficient is
/// the conventional default).
pub fn chain_strength(logical: &IsingModel) -> f64 {
    let mut m = 0.0f64;
    for i in 0..logical.n_spins() {
        m = m.max(logical.field(i).abs());
    }
    for (_, w) in logical.couplings_iter() {
        m = m.max(w.abs());
    }
    1.5 * m.max(1.0)
}

/// Translates a logical Ising Hamiltonian onto the physical graph:
/// fields split across chain members, couplings placed on available
/// physical edges between chains, plus ferromagnetic intra-chain couplings
/// of magnitude `strength`.
///
/// Returns the physical Hamiltonian over `graph.n_qubits()` spins.
///
/// # Panics
/// Panics if two coupled logical variables have no physical edge between
/// their chains (cannot happen for embeddings from [`find_embedding`]).
pub fn embed_ising(
    logical: &IsingModel,
    embedding: &Embedding,
    graph: &ChimeraGraph,
    strength: f64,
) -> IsingModel {
    let mut phys = IsingModel::new(graph.n_qubits());
    phys.add_constant(logical.constant());
    for (v, chain) in embedding.chains.iter().enumerate() {
        let share = logical.field(v) / chain.len() as f64;
        for &q in chain {
            phys.add_field(q, share);
        }
        // Ferromagnetic chain couplings on every intra-chain physical edge.
        for (a_idx, &a) in chain.iter().enumerate() {
            for &b in &chain[a_idx + 1..] {
                if graph.has_edge(a, b) {
                    phys.add_coupling(a, b, -strength);
                    // Each chain edge shifts the ground energy by -strength;
                    // compensate so aligned chains contribute zero.
                    phys.add_constant(strength);
                }
            }
        }
    }
    for ((i, j), w) in logical.couplings_iter() {
        let cross: Vec<(usize, usize)> = embedding.chains[i]
            .iter()
            .flat_map(|&a| {
                embedding.chains[j]
                    .iter()
                    .filter(move |&&b| graph.has_edge(a, b))
                    .map(move |&b| (a, b))
            })
            .collect();
        assert!(!cross.is_empty(), "no physical edge between chains {i} and {j}");
        let share = w / cross.len() as f64;
        for (a, b) in cross {
            phys.add_coupling(a, b, share);
        }
    }
    phys
}

/// Statistics from unembedding a physical sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnembedStats {
    /// Number of chains whose qubits disagreed (broken chains).
    pub broken_chains: usize,
    /// Total chains.
    pub total_chains: usize,
}

impl UnembedStats {
    /// Fraction of chains broken in this sample.
    pub fn break_rate(&self) -> f64 {
        if self.total_chains == 0 {
            0.0
        } else {
            self.broken_chains as f64 / self.total_chains as f64
        }
    }
}

/// Majority-vote unembedding: logical spin = sign of the chain's spin sum
/// (ties resolved towards +1). `physical_spins[q] = true` means spin +1.
pub fn unembed(physical_spins: &[bool], embedding: &Embedding) -> (Vec<bool>, UnembedStats) {
    let mut logical = Vec::with_capacity(embedding.chains.len());
    let mut broken = 0;
    for chain in &embedding.chains {
        let ups = chain.iter().filter(|&&q| physical_spins[q]).count();
        let downs = chain.len() - ups;
        if ups > 0 && downs > 0 {
            broken += 1;
        }
        logical.push(ups >= downs);
    }
    (logical, UnembedStats { broken_chains: broken, total_chains: embedding.chains.len() })
}

/// End-to-end annealer pipeline over physical hardware: logical QUBO →
/// Ising → minor embedding → physical Ising → (solver runs on the physical
/// QUBO) → majority-vote unembed → logical solution.
///
/// The `solve_physical` callback receives the *physical* QUBO; this keeps
/// the module independent of any particular sampler.
pub fn solve_on_chimera(
    q: &QuboModel,
    graph: &ChimeraGraph,
    solve_physical: impl FnOnce(&QuboModel) -> Vec<bool>,
) -> Result<(Vec<bool>, Embedding, UnembedStats), EmbedError> {
    let logical_ising = IsingModel::from_qubo(q);
    let mut adjacency = vec![Vec::new(); q.n_vars()];
    for ((i, j), _) in q.quadratic_iter() {
        adjacency[i].push(j);
        adjacency[j].push(i);
    }
    let embedding = find_embedding_auto(&adjacency, graph)?;
    let strength = chain_strength(&logical_ising);
    let physical = embed_ising(&logical_ising, &embedding, graph, strength);
    let physical_qubo = physical.to_qubo();
    let physical_bits = solve_physical(&physical_qubo);
    // bits -> spins: x=1 encodes spin -1.
    let physical_spins: Vec<bool> = physical_bits.iter().map(|&b| !b).collect();
    let (logical_spins, stats) = unembed(&physical_spins, &embedding);
    let logical_bits = IsingModel::bits_from_spins(&logical_spins);
    Ok((logical_bits, embedding, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sa::{simulated_annealing, SaParams};
    use qdm_qubo::solve::solve_exact;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn chimera_qubit_count_and_coords_roundtrip() {
        let g = ChimeraGraph::new(3);
        assert_eq!(g.n_qubits(), 72);
        for q in 0..g.n_qubits() {
            let (r, c, s, k) = g.coords(q);
            assert_eq!(g.qubit_id(r, c, s, k), q);
        }
    }

    #[test]
    fn chimera_edges_are_symmetric() {
        let g = ChimeraGraph::new(2);
        for q in 0..g.n_qubits() {
            for nb in g.neighbors(q) {
                assert!(g.neighbors(nb).contains(&q), "{q} -> {nb} not symmetric");
            }
        }
    }

    #[test]
    fn unit_cell_is_k44() {
        let g = ChimeraGraph::new(1);
        assert_eq!(g.n_qubits(), 8);
        // Side 0 qubits connect to all side 1 qubits and nothing else.
        for k in 0..4 {
            let q = g.qubit_id(0, 0, 0, k);
            let nbs = g.neighbors(q);
            assert_eq!(nbs.len(), 4);
        }
        assert_eq!(g.edges().len(), 16);
    }

    #[test]
    fn embeds_k4_into_small_chimera() {
        // K4 logical graph.
        let adj = vec![vec![1, 2, 3], vec![0, 2, 3], vec![0, 1, 3], vec![0, 1, 2]];
        let g = ChimeraGraph::new(2);
        let emb = find_embedding(&adj, &g).expect("K4 fits in C_2");
        // Chains are disjoint.
        let mut seen = std::collections::HashSet::new();
        for chain in &emb.chains {
            assert!(!chain.is_empty());
            for &q in chain {
                assert!(seen.insert(q), "qubit {q} reused");
            }
        }
        // Every logical edge has a physical edge between chains.
        for (v, nbs) in adj.iter().enumerate() {
            for &u in nbs {
                let has =
                    emb.chains[v].iter().any(|&a| emb.chains[u].iter().any(|&b| g.has_edge(a, b)));
                assert!(has, "no physical edge for logical {v}-{u}");
            }
        }
    }

    #[test]
    fn unembed_majority_vote() {
        let emb = Embedding { chains: vec![vec![0, 1, 2], vec![3]] };
        let spins = vec![true, true, false, false];
        let (logical, stats) = unembed(&spins, &emb);
        assert_eq!(logical, vec![true, false]);
        assert_eq!(stats.broken_chains, 1);
        assert!((stats.break_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn end_to_end_chimera_solve_matches_exact() {
        let mut rng = StdRng::seed_from_u64(21);
        let n = 6;
        let mut q = QuboModel::new(n);
        for i in 0..n {
            q.add_linear(i, rng.random_range(-2.0..2.0));
            for j in (i + 1)..n {
                q.add_quadratic(i, j, rng.random_range(-1.0..1.0));
            }
        }
        let exact = solve_exact(&q);
        let g = ChimeraGraph::new(4);
        let mut sa_rng = StdRng::seed_from_u64(22);
        let (bits, emb, stats) = solve_on_chimera(&q, &g, |phys| {
            simulated_annealing(phys, &SaParams::scaled_to(phys), &mut sa_rng).bits
        })
        .expect("embedding succeeds");
        assert!(emb.physical_qubits() >= n);
        assert!(stats.total_chains == n);
        let got = q.energy(&bits);
        // The embedded anneal should land at or near the optimum; allow a
        // small slack because chains can break.
        assert!(
            got <= exact.energy + 0.5 * q.max_abs_coefficient(),
            "embedded {} vs exact {}",
            got,
            exact.energy
        );
    }

    #[test]
    fn embedding_failure_is_reported() {
        // K8 cannot fit into a single unit cell's 8 qubits with chains.
        let n = 8;
        let adj: Vec<Vec<usize>> = (0..n).map(|v| (0..n).filter(|&u| u != v).collect()).collect();
        let g = ChimeraGraph::new(1);
        assert!(find_embedding(&adj, &g).is_err());
        assert!(find_embedding_auto(&adj, &g).is_err());
    }

    fn assert_valid_embedding(emb: &Embedding, n: usize, g: &ChimeraGraph) {
        // Disjoint chains.
        let mut seen = std::collections::HashSet::new();
        for chain in &emb.chains {
            assert!(!chain.is_empty());
            for &q in chain {
                assert!(q < g.n_qubits());
                assert!(seen.insert(q), "qubit {q} reused");
            }
        }
        // Each chain is connected.
        for chain in &emb.chains {
            let set: std::collections::HashSet<usize> = chain.iter().copied().collect();
            let mut reached = std::collections::HashSet::new();
            let mut stack = vec![chain[0]];
            reached.insert(chain[0]);
            while let Some(q) = stack.pop() {
                for nb in g.neighbors(q) {
                    if set.contains(&nb) && reached.insert(nb) {
                        stack.push(nb);
                    }
                }
            }
            assert_eq!(reached.len(), chain.len(), "chain not connected: {chain:?}");
        }
        // Every logical pair has a physical coupler (clique property).
        for i in 0..n {
            for j in (i + 1)..n {
                let ok =
                    emb.chains[i].iter().any(|&a| emb.chains[j].iter().any(|&b| g.has_edge(a, b)));
                assert!(ok, "chains {i} and {j} not coupled");
            }
        }
    }

    #[test]
    fn clique_embedding_is_valid_for_full_capacity() {
        for m in 1..=4 {
            let g = ChimeraGraph::new(m);
            let n = 4 * m;
            let emb = clique_embedding(n, &g).expect("K_{4m} fits C_m");
            assert_eq!(emb.max_chain_length(), m + 1);
            assert_valid_embedding(&emb, n, &g);
        }
    }

    #[test]
    fn clique_embedding_rejects_oversized() {
        assert!(clique_embedding(8, &ChimeraGraph::new(2)).is_ok());
        assert!(clique_embedding(9, &ChimeraGraph::new(2)).is_err());
        assert!(clique_embedding(12, &ChimeraGraph::new(3)).is_ok());
    }

    #[test]
    fn auto_embedding_handles_dense_k10() {
        let n = 10;
        let adj: Vec<Vec<usize>> = (0..n).map(|v| (0..n).filter(|&u| u != v).collect()).collect();
        let g = ChimeraGraph::new(12);
        let emb = find_embedding_auto(&adj, &g).expect("K10 must fit C_12");
        assert_valid_embedding(&emb, n, &g);
    }
}
