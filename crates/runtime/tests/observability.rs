//! End-to-end observability tests: the exported Chrome trace of a pinned
//! racing job carries the full span chain and is valid JSON, Prometheus
//! exposition parses and carries the portfolio's EWMA gauges, cache hits
//! land in the served-latency series, and traced runs are deterministic.

use qdm_core::prelude::*;
use qdm_qubo::model::QuboModel;
use qdm_qubo::penalty;
use qdm_runtime::prelude::*;
use qdm_runtime::trace::{Stage, TraceOutcome};
use std::sync::Arc;

struct PickOne {
    costs: Vec<f64>,
}

impl DmProblem for PickOne {
    fn name(&self) -> String {
        format!("pick-one-of-{}", self.costs.len())
    }
    fn n_vars(&self) -> usize {
        self.costs.len()
    }
    fn to_qubo(&self) -> QuboModel {
        let mut q = QuboModel::new(self.costs.len());
        for (i, &c) in self.costs.iter().enumerate() {
            q.add_linear(i, c);
        }
        let vars: Vec<usize> = (0..self.costs.len()).collect();
        let weight = penalty::penalty_weight(&q);
        penalty::exactly_one(&mut q, &vars, weight);
        q
    }
    fn decode(&self, bits: &[bool]) -> Decoded {
        let chosen: Vec<usize> =
            bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
        Decoded {
            feasible: chosen.len() == 1,
            objective: chosen.iter().map(|&i| self.costs[i]).sum(),
            summary: format!("chose {chosen:?}"),
        }
    }
}

fn pick(n: usize) -> SharedProblem {
    Arc::new(PickOne { costs: (0..n).map(|i| ((i * 7) % 5) as f64 + 1.0).collect() })
}

fn pinned_service() -> SolverService {
    SolverService::new(ServiceConfig { workers: 1, cache_capacity: 64, ..Default::default() })
}

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON parser, enough to validate the exported
// trace end to end (the workspace's serde shim has no parser either).

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at {}", p.pos));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = std::str::from_utf8(
                                self.bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or("truncated \\u escape")?,
                            )
                            .map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through verbatim.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("bad array separator {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("bad object separator {other:?}")),
            }
        }
    }
}

// ---------------------------------------------------------------------------

#[test]
fn racing_job_trace_carries_the_full_span_chain() {
    let service = pinned_service();
    let result = service.run(JobSpec::new(pick(6), 3).racing(3)).expect("solvable");
    assert!(result.report.decoded.feasible);

    let traces = service.traces();
    assert_eq!(traces.len(), 1);
    let trace = &traces[0];
    assert_eq!(trace.outcome, TraceOutcome::Solved);
    assert_eq!(trace.backend.as_deref(), Some(result.backend.as_str()));
    assert_eq!(trace.problem, "pick-one-of-6");
    assert_eq!(trace.seed, 3);
    assert_ne!(trace.fingerprint, 0, "the compile span stamps the canonical fingerprint");

    // Span chain: queued → compile → presolve → 3 solve children.
    assert!(trace.span(Stage::Queued).is_some(), "queue wait span present");
    let compiles = trace.spans.iter().filter(|s| s.stage == Stage::Compile).count();
    assert_eq!(compiles, 1, "exactly one compile — the compile-once invariant, now visible");
    assert!(trace.span(Stage::Presolve).is_some());
    let solves: Vec<_> = trace.spans.iter().filter(|s| s.stage == Stage::Solve).collect();
    assert_eq!(solves.len(), 3, "one child span per race participant");
    assert_eq!(solves.iter().filter(|s| s.winner).count(), 1, "exactly one winner");
    let winner = solves.iter().find(|s| s.winner).unwrap();
    assert_eq!(winner.backend.as_deref(), Some(result.backend.as_str()));
    for span in &trace.spans {
        assert!(span.end_ns >= span.start_ns, "monotonic span: {span:?}");
    }
    // Chronology: queued ends before compile starts, compile before
    // presolve, presolve before every solve.
    let queued = trace.span(Stage::Queued).unwrap();
    let compile = trace.span(Stage::Compile).unwrap();
    let presolve = trace.span(Stage::Presolve).unwrap();
    assert!(queued.end_ns <= compile.start_ns);
    assert!(compile.end_ns <= presolve.start_ns);
    for solve in &solves {
        assert!(presolve.end_ns <= solve.start_ns);
    }
    // The heuristic participants ran actual restarts; the exact solver's
    // enumeration reports none. Summed over the field, some solver activity
    // must have been profiled.
    let restarts: u64 = solves.iter().map(|s| s.stats.restarts).sum();
    let proposals: u64 = solves.iter().map(|s| s.stats.proposals).sum();
    assert!(restarts >= 1, "probed restart counters reached the trace");
    assert!(proposals >= 1);
}

#[test]
fn exported_chrome_trace_round_trips_through_json() {
    let service = pinned_service();
    service.run(JobSpec::new(pick(6), 3).racing(3)).expect("solvable");
    let exported = service.export_traces();

    let doc = Parser::parse(&exported).expect("export is valid JSON");
    let events = doc.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array");
    assert_eq!(events.len(), 6, "queued + compile + presolve + 3 solves");
    for event in events {
        assert_eq!(event.get("ph").and_then(Json::as_str), Some("X"), "complete events");
        assert_eq!(event.get("cat").and_then(Json::as_str), Some("qdm"));
        assert_eq!(event.get("pid").and_then(Json::as_num), Some(1.0));
        assert!(event.get("ts").and_then(Json::as_num).is_some());
        assert!(event.get("dur").and_then(Json::as_num).unwrap() >= 0.0);
        let args = event.get("args").expect("args object");
        assert_eq!(args.get("problem").and_then(Json::as_str), Some("pick-one-of-6"));
        assert_eq!(args.get("outcome").and_then(Json::as_str), Some("solved"));
        assert_eq!(args.get("fingerprint").and_then(Json::as_str).map(str::len), Some(16));
    }
    let names: Vec<&str> =
        events.iter().filter_map(|e| e.get("name").and_then(Json::as_str)).collect();
    assert_eq!(names[..3], ["queued", "compile", "presolve"], "main chain in order");
    assert_eq!(names.iter().filter(|&&n| n == "solve").count(), 3);
    // Solve spans carry the winner flag; exactly one is true. They also get
    // distinct tids so overlapping race spans render as separate lanes.
    let mut winner_count = 0;
    let mut solve_tids = Vec::new();
    for event in events {
        if event.get("name").and_then(Json::as_str) == Some("solve") {
            let args = event.get("args").unwrap();
            assert!(args.get("backend").and_then(Json::as_str).is_some());
            if args.get("winner") == Some(&Json::Bool(true)) {
                winner_count += 1;
            }
            solve_tids.push(event.get("tid").and_then(Json::as_num).unwrap() as u64);
        }
    }
    assert_eq!(winner_count, 1, "exactly one winner across the race");
    solve_tids.sort_unstable();
    solve_tids.dedup();
    assert_eq!(solve_tids.len(), 3, "each race participant gets its own tid");
}

#[test]
fn empty_service_exports_valid_empty_trace() {
    let service = pinned_service();
    let doc = Parser::parse(&service.export_traces()).expect("valid JSON");
    assert_eq!(doc.get("traceEvents").and_then(Json::as_arr).map(<[Json]>::len), Some(0));
}

#[test]
fn disabled_tracing_records_nothing_but_serves_metrics() {
    let service = SolverService::new(ServiceConfig {
        workers: 1,
        cache_capacity: 64,
        tracing: TraceConfig::Disabled,
        ..Default::default()
    });
    service.run(JobSpec::new(pick(5), 1)).expect("ok");
    service.run(JobSpec::new(pick(5), 1)).expect("ok");
    assert!(service.traces().is_empty());
    let report = service.report();
    assert_eq!(report.traces_recorded, 0);
    // The served-latency fix is independent of tracing: both deliveries
    // (one solve, one cache hit) are in the series.
    assert_eq!(report.served_latency_histogram.iter().sum::<u64>(), 2);
}

#[test]
fn cache_hits_and_coalesced_jobs_land_in_served_latency() {
    let service = pinned_service();
    let first = service.run(JobSpec::new(pick(5), 9)).expect("ok");
    let again = service.run(JobSpec::new(pick(5), 9)).expect("ok");
    assert!(!first.from_cache && again.from_cache);
    let report = service.report();
    assert_eq!(
        report.latency_histogram.iter().sum::<u64>(),
        1,
        "the solve histogram only sees the miss"
    );
    assert_eq!(
        report.served_latency_histogram.iter().sum::<u64>(),
        2,
        "the served histogram sees both deliveries — the p99 callers actually wait"
    );
    assert!(report.served_latency_quantile(0.99).is_some());
    assert!(report.latency_quantile(0.5).is_some());
    assert!(report.served_seconds_total > 0.0);
    // The traces agree: one solved, one cache hit, and the hit's timeline
    // still shows queue wait + compile + serve (it compiled to fingerprint).
    let traces = service.traces();
    assert_eq!(traces.len(), 2);
    assert_eq!(traces[0].outcome, TraceOutcome::Solved);
    assert_eq!(traces[1].outcome, TraceOutcome::CacheHit);
    assert!(traces[1].span(Stage::Serve).is_some());
    assert!(traces[1].span(Stage::Solve).is_none(), "cache hits never solve");
    assert_eq!(traces[0].fingerprint, traces[1].fingerprint, "same canonical work identity");
}

#[test]
fn prometheus_exposition_from_a_live_service_parses_and_carries_ewma_gauges() {
    let service = pinned_service();
    service.run(JobSpec::new(pick(6), 3).racing(2)).expect("ok");
    service.run(JobSpec::new(pick(6), 3).racing(2)).expect("cache hit");
    let report = service.report();
    assert!(!report.backend_telemetry.is_empty(), "racing populated the portfolio EWMAs");
    let text = report.render_prometheus();

    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        let (name, value) = line.rsplit_once(' ').expect("sample line");
        assert!(name.starts_with("qdm_"), "{line}");
        value.parse::<f64>().unwrap_or_else(|_| panic!("unparsable sample: {line}"));
    }
    // The gauges that previously never left portfolio.rs.
    for t in &report.backend_telemetry {
        assert!(
            text.contains(&format!(
                "qdm_backend_ewma_latency_seconds{{backend=\"{}\"}}",
                t.backend
            )),
            "missing EWMA latency gauge for {}: {text}",
            t.backend
        );
        assert!(
            text.contains(&format!("qdm_backend_ewma_quality{{backend=\"{}\"}}", t.backend)),
            "missing EWMA quality gauge for {}",
            t.backend
        );
    }
    assert!(text.contains("qdm_traces_recorded_total 2\n"));
    assert!(text.contains("qdm_race_jobs_total 1\n"));
    assert!(text.contains("qdm_served_latency_seconds_count 2\n"));
    assert!(text.contains("qdm_solve_latency_seconds_count 1\n"));
}

#[test]
fn pinned_single_worker_runs_trace_deterministically() {
    // Two fresh single-worker services, same submission sequence: the span
    // structure (everything except wall-clock timestamps) must be
    // identical run to run.
    type SpanShape = (Stage, Option<String>, bool, u64, u64);
    fn shape() -> Vec<(u64, TraceOutcome, Vec<SpanShape>)> {
        let service = pinned_service();
        let specs: Vec<JobSpec> = vec![
            JobSpec::new(pick(6), 3).racing(3),
            JobSpec::new(pick(5), 9),
            JobSpec::new(pick(5), 9), // cache hit
            JobSpec::new(pick(7), 1).on_backend("tabu"),
        ];
        for outcome in service.run_batch(specs) {
            outcome.expect("solvable");
        }
        service
            .traces()
            .into_iter()
            .map(|t| {
                (
                    t.job_id,
                    t.outcome,
                    t.spans
                        .into_iter()
                        .map(|s| {
                            (s.stage, s.backend, s.winner, s.stats.restarts, s.stats.proposals)
                        })
                        .collect(),
                )
            })
            .collect()
    }
    let a = shape();
    let b = shape();
    assert_eq!(a.len(), 4);
    assert_eq!(a, b, "traced span sequences are deterministic modulo timestamps");
}

#[test]
fn ring_capacity_bounds_retention_and_counts_drops_end_to_end() {
    let service = SolverService::new(ServiceConfig {
        workers: 1,
        cache_capacity: 64,
        tracing: TraceConfig::RingWithCapacity(2),
        ..Default::default()
    });
    for seed in 0..5 {
        service.run(JobSpec::new(pick(4), seed)).expect("ok");
    }
    let traces = service.traces();
    assert_eq!(traces.len(), 2, "ring retains only the newest two");
    assert_eq!(service.trace_drops(), 3);
    let report = service.report();
    assert_eq!(report.traces_recorded, 5);
    assert_eq!(report.traces_dropped, 3);
    // The survivors are the most recent completions, in order.
    assert!(traces[0].job_id < traces[1].job_id);
    assert_eq!(traces[1].job_id, 4);
}
