//! Asynchronous job submission: [`Session`]s over the
//! [`crate::service::SolverService`] worker pool.
//!
//! A session is a client-side view of the service with its own **bounded**
//! admission queue — the broker layer the hybrid architectures of Zajac &
//! Störl (2024) and Liu & Jiang (2023) put between classical clients and
//! quantum resources. Submission has two backpressure modes:
//!
//! - [`Session::try_submit`] never blocks: a full queue returns
//!   [`SubmitError::QueueFull`] carrying the spec back to the caller;
//! - [`Session::submit`] blocks under a condvar until a worker drains
//!   enough of this session's queued jobs to make space.
//!
//! Each accepted job yields a [`crate::handle::JobHandle`] (poll / block /
//! cancel per job), [`Session::completions`] streams finished jobs in
//! finish order so decode work pipelines with solving, and
//! [`Session::drain`] / [`Session::shutdown`] give graceful teardown with
//! every in-flight handle resolved. The bound covers *queued* jobs of this
//! session only: once a worker picks a job up, its slot frees, and other
//! sessions on the same service are never throttled by this one.

use crate::handle::{Completion, CompletionSlot, JobHandle};
use crate::journal::{JournalEvent, SubmittedRecord};
use crate::metrics::Metrics;
use crate::service::{JobSpec, QueuedJob, RouteInfo, Shared, SolverService};
use crate::sync::{CondvarExt, LockExt};
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Session configuration.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Maximum number of this session's jobs waiting in the service queue
    /// (at least 1). Jobs a worker has picked up no longer count.
    pub queue_capacity: usize,
    /// Maximum finished jobs buffered for [`Session::completions`] (at
    /// least 1). A caller that only uses [`crate::handle::JobHandle`]s and
    /// never consumes the stream would otherwise accumulate completions
    /// without bound on a long-lived session; past this limit the *oldest*
    /// unconsumed completion is dropped from the stream (handles still
    /// resolve normally) and [`Session::completions_dropped`] counts it.
    pub completion_buffer: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self { queue_capacity: 64, completion_buffer: 4096 }
    }
}

/// Why a submission was not accepted.
pub enum SubmitError {
    /// The session's bounded queue is full; the spec is handed back so the
    /// caller can retry, reroute, or shed the work.
    QueueFull(JobSpec),
    /// The cluster shed the job: the tenant's token bucket lacked the
    /// predicted seconds the job would consume, or the target shard's
    /// queue crossed the shedding watermark
    /// ([`crate::cluster::ClusterSession::submit`]). The spec is handed
    /// back, with a hint for how long to back off before retrying — how
    /// long until the bucket refills enough seconds for this job, or how
    /// long the shard's estimated backlog (in predicted seconds of queued
    /// work, floored at the configured drain-retry interval) needs to
    /// drain.
    Overloaded {
        /// Suggested backoff before resubmitting.
        retry_after_hint: Duration,
        /// The rejected spec, handed back for the retry.
        spec: JobSpec,
    },
}

impl SubmitError {
    /// Recovers the job spec for a retry.
    pub fn into_spec(self) -> JobSpec {
        match self {
            SubmitError::QueueFull(spec) => spec,
            SubmitError::Overloaded { spec, .. } => spec,
        }
    }

    /// The backoff hint for [`SubmitError::Overloaded`]; `None` for
    /// [`SubmitError::QueueFull`] (space frees as soon as a worker picks a
    /// job up — block on [`Session::submit`] instead of sleeping).
    pub fn retry_after_hint(&self) -> Option<Duration> {
        match self {
            SubmitError::QueueFull(_) => None,
            SubmitError::Overloaded { retry_after_hint, .. } => Some(*retry_after_hint),
        }
    }
}

impl std::fmt::Debug for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull(_) => write!(f, "QueueFull(..)"),
            SubmitError::Overloaded { retry_after_hint, .. } => f
                .debug_struct("Overloaded")
                .field("retry_after_hint", retry_after_hint)
                .finish_non_exhaustive(),
        }
    }
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull(_) => write!(f, "session queue is full"),
            SubmitError::Overloaded { retry_after_hint, .. } => {
                write!(f, "cluster overloaded; retry after {retry_after_hint:?}")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

#[derive(Default)]
struct SessionInner {
    /// This session's jobs currently sitting in the service queue.
    queued: usize,
    /// Submitted jobs whose slot has not resolved yet (queued + running).
    unresolved: usize,
    /// Finished jobs not yet consumed by the completion stream.
    completions: VecDeque<Completion>,
    /// Completions evicted because the buffer was full.
    dropped: usize,
}

/// Shared bookkeeping between a [`Session`], its handles, and the workers.
pub(crate) struct SessionCore {
    /// Service-wide session id: the identity the fair scheduler keys its
    /// per-session subqueues on ([`crate::scheduler`]).
    id: u64,
    capacity: usize,
    completion_buffer: usize,
    inner: Mutex<SessionInner>,
    changed: Condvar,
}

impl SessionCore {
    pub(crate) fn new(id: u64, capacity: usize, completion_buffer: usize) -> Self {
        Self {
            id,
            capacity: capacity.max(1),
            completion_buffer: completion_buffer.max(1),
            inner: Mutex::new(SessionInner::default()),
            changed: Condvar::new(),
        }
    }

    /// The scheduler identity of this session.
    pub(crate) fn id(&self) -> u64 {
        self.id
    }

    /// Reserves a queue slot without blocking; `false` when full.
    pub(crate) fn try_reserve(&self) -> bool {
        let mut inner = self.inner.lock_unpoisoned();
        if inner.queued >= self.capacity {
            return false;
        }
        inner.queued += 1;
        inner.unresolved += 1;
        true
    }

    /// Reserves a queue slot, waiting under the condvar while the queue is
    /// full; counts one backpressure wait if it had to sleep.
    pub(crate) fn reserve_blocking(&self, metrics: &Metrics) {
        let mut inner = self.inner.lock_unpoisoned();
        let mut waited = false;
        while inner.queued >= self.capacity {
            if !waited {
                metrics.on_backpressure_wait();
                waited = true;
            }
            inner = self.changed.wait_unpoisoned(inner);
        }
        inner.queued += 1;
        inner.unresolved += 1;
    }

    /// Releases a slot that was reserved but never enqueued — the cluster
    /// front-end reserves before its admission checks so a blocking reserve
    /// can count backpressure against the routed shard, then unwinds here
    /// when the job is shed. Undoes one [`SessionCore::try_reserve`] /
    /// [`SessionCore::reserve_blocking`].
    pub(crate) fn unreserve(&self) {
        let mut inner = self.inner.lock_unpoisoned();
        inner.queued -= 1;
        inner.unresolved -= 1;
        self.changed.notify_all();
    }

    /// A queued job of this session left the queue (picked up or cancelled).
    pub(crate) fn on_dequeue(&self) {
        let mut inner = self.inner.lock_unpoisoned();
        inner.queued -= 1;
        self.changed.notify_all();
    }

    /// A job of this session resolved; feeds the completion stream,
    /// evicting the oldest unconsumed completion when the buffer is full so
    /// handle-only callers never accumulate an unbounded backlog.
    pub(crate) fn on_complete(&self, completion: Completion) {
        let mut inner = self.inner.lock_unpoisoned();
        if inner.completions.len() >= self.completion_buffer {
            inner.completions.pop_front();
            inner.dropped += 1;
        }
        inner.completions.push_back(completion);
        inner.unresolved -= 1;
        self.changed.notify_all();
    }

    pub(crate) fn drain_wait(&self) {
        let mut inner = self.inner.lock_unpoisoned();
        while inner.unresolved > 0 {
            inner = self.changed.wait_unpoisoned(inner);
        }
    }

    pub(crate) fn next_completion(&self) -> Option<Completion> {
        let mut inner = self.inner.lock_unpoisoned();
        loop {
            if let Some(completion) = inner.completions.pop_front() {
                return Some(completion);
            }
            if inner.unresolved == 0 {
                return None;
            }
            inner = self.changed.wait_unpoisoned(inner);
        }
    }

    pub(crate) fn unresolved(&self) -> usize {
        self.inner.lock_unpoisoned().unresolved
    }

    pub(crate) fn take_completions(&self) -> Vec<Completion> {
        self.inner.lock_unpoisoned().completions.drain(..).collect()
    }

    pub(crate) fn dropped(&self) -> usize {
        self.inner.lock_unpoisoned().dropped
    }
}

/// An asynchronous submission session over a [`SolverService`].
///
/// Created by [`SolverService::session`]; borrows the service, so sessions
/// (and therefore submissions) cannot outlive the worker pool. Multiple
/// sessions can run concurrently over one service, each with its own bound,
/// handles, and completion stream. `&Session` is `Sync`: scoped threads can
/// share one session to submit and consume completions concurrently.
pub struct Session<'a> {
    service: &'a SolverService,
    core: Arc<SessionCore>,
}

impl SolverService {
    /// Opens an asynchronous submission session with its own bounded queue.
    /// Each session gets its own subqueue in the fair scheduler, so one
    /// session's backlog cannot monopolize the worker pool
    /// ([`crate::scheduler`]).
    pub fn session(&self, config: SessionConfig) -> Session<'_> {
        let id = self.shared.next_session_id.fetch_add(1, Ordering::Relaxed);
        Session {
            service: self,
            core: Arc::new(SessionCore::new(id, config.queue_capacity, config.completion_buffer)),
        }
    }
}

impl Session<'_> {
    /// Submits a job, blocking under a condvar while the session queue is
    /// full, and returns its handle.
    pub fn submit(&self, spec: JobSpec) -> JobHandle {
        self.core.reserve_blocking(&self.service.shared.metrics);
        self.enqueue(spec)
    }

    /// Submits a job without blocking: a full session queue returns
    /// [`SubmitError::QueueFull`] with the spec handed back.
    pub fn try_submit(&self, spec: JobSpec) -> Result<JobHandle, SubmitError> {
        if !self.core.try_reserve() {
            self.service.shared.metrics.on_backpressure_rejection();
            return Err(SubmitError::QueueFull(spec));
        }
        Ok(self.enqueue(spec))
    }

    /// Enqueues a job whose slot has already been reserved.
    fn enqueue(&self, spec: JobSpec) -> JobHandle {
        let shared = &self.service.shared;
        let id = shared.next_job_id.fetch_add(1, Ordering::Relaxed);
        enqueue_reserved(shared, &self.core, id, spec, None, None, false)
    }

    /// Streams finished jobs in finish order. The iterator blocks while work
    /// is in flight and ends (`None`) once every job submitted so far has
    /// been consumed — callers can pipeline decode work against it while
    /// other threads keep submitting. The end state is **latched** (the
    /// iterator is fused): once it has returned `None` it stays exhausted
    /// even if more jobs are submitted afterwards — call
    /// [`Session::completions`] again for a fresh stream over the new work.
    /// If the buffer overflowed before the stream was consumed
    /// ([`SessionConfig::completion_buffer`]), the oldest completions are
    /// missing from it; see [`Session::completions_dropped`].
    pub fn completions(&self) -> Completions<'_> {
        Completions { core: &self.core, finished: false }
    }

    /// Jobs submitted through this session that have not resolved yet.
    pub fn in_flight(&self) -> usize {
        self.core.unresolved()
    }

    /// Completions evicted from the stream because the buffer overflowed
    /// ([`SessionConfig::completion_buffer`]); their handles still resolved
    /// normally.
    pub fn completions_dropped(&self) -> usize {
        self.core.dropped()
    }

    /// Blocks until every job submitted through this session has resolved
    /// (completed, failed, or been cancelled). Completions stay available to
    /// [`Session::completions`] afterwards.
    pub fn drain(&self) {
        self.core.drain_wait();
    }

    /// Graceful teardown: drains the session and returns any completions the
    /// stream has not consumed, in finish order. Consuming `self` makes
    /// submit-after-shutdown unrepresentable.
    pub fn shutdown(self) -> Vec<Completion> {
        self.core.drain_wait();
        self.core.take_completions()
    }
}

/// Enqueues a job on `shared`'s queue under an already-reserved session
/// slot, with a caller-chosen job id and optional precomputed route. The
/// shared submission path for [`Session::enqueue`] (shard-local ids, no
/// route), the cluster front-end (cluster-wide ids, canonical route
/// computed before shard selection, the tenant name for the journal), and
/// crash recovery (journaled ids, `recovered` set so the replay does not
/// re-append its own `Submitted` record).
pub(crate) fn enqueue_reserved(
    shared: &Arc<Shared>,
    core: &Arc<SessionCore>,
    id: u64,
    spec: JobSpec,
    route: Option<RouteInfo>,
    tenant: Option<&str>,
    recovered: bool,
) -> JobHandle {
    shared.metrics.on_submit(1);
    shared.metrics.on_enqueue();
    // Journal the submission *before* the job becomes runnable: once a
    // worker can pick it up, a crash at any later point finds either this
    // record alone (→ recovery replays the job) or this record plus a
    // terminal one (→ nothing to do). Jobs without a precomputed route
    // encode here, on the submitter thread — the journal must capture the
    // exact QUBO so the replay is bit-identical even if the original
    // problem object is gone after the crash.
    if !recovered {
        if let Some(journal) = &shared.journal {
            let qubo = match &route {
                Some(route) => (*route.qubo).clone(),
                None => spec.problem.to_qubo(),
            };
            journal.append(JournalEvent::Submitted(SubmittedRecord {
                job_id: id,
                problem: spec.problem.name(),
                qubo,
                options_bits: crate::cache::pack_options(&spec.options),
                priority: spec.options.priority,
                seed: spec.seed,
                backend: spec.backend.clone(),
                tenant: tenant.map(str::to_string),
                shard: shared.shard,
            }));
        }
    }
    let slot = Arc::new(CompletionSlot::new());
    // The job's deficit-round-robin cost: the cost model's prediction of
    // how many *microseconds of backend time* it will consume, so a
    // session submitting expensive models spends its scheduling credit
    // faster than one submitting cheap ones — fairness is metered in
    // seconds, not jobs or variable counts. Floored at one microsecond so
    // even a trivially cheap job charges something.
    let cost = (shared.predicted_seconds(&spec) * 1e6).clamp(1.0, u64::MAX as f64) as u64;
    {
        let mut queue = shared.queue.lock_unpoisoned();
        queue.push(QueuedJob {
            id,
            cost,
            queued_ns: shared.now_ns(),
            spec,
            slot: Arc::clone(&slot),
            session: Arc::clone(core),
            route,
            retry: None,
            recovered,
        });
    }
    shared.job_ready.notify_one();
    JobHandle::new(id, slot, Arc::clone(shared), Arc::clone(core))
}

/// Blocking iterator over a session's finished jobs, in finish order.
/// Created by [`Session::completions`].
///
/// The iterator is **fused**: after it first returns `None` (all work
/// submitted so far consumed), it latches the end state and never yields
/// again, even if the session submits more jobs — per the [`Iterator`]
/// convention that `next()` keeps returning `None` after exhaustion. Take a
/// fresh iterator from [`Session::completions`] to stream later work.
pub struct Completions<'s> {
    core: &'s SessionCore,
    finished: bool,
}

impl<'s> Completions<'s> {
    pub(crate) fn new(core: &'s SessionCore) -> Self {
        Self { core, finished: false }
    }
}

impl Iterator for Completions<'_> {
    type Item = Completion;

    fn next(&mut self) -> Option<Completion> {
        if self.finished {
            return None;
        }
        let next = self.core.next_completion();
        if next.is_none() {
            self.finished = true;
        }
        next
    }
}

impl std::iter::FusedIterator for Completions<'_> {}

/// Convenience: a one-shot session sized for `specs`, submitted and waited
/// in order — the building block [`SolverService::run_batch`] wraps.
pub(crate) fn run_batch_via_session(
    service: &SolverService,
    specs: Vec<JobSpec>,
) -> Vec<crate::service::JobOutcome> {
    if specs.is_empty() {
        return Vec::new();
    }
    let session = service
        .session(SessionConfig { queue_capacity: specs.len(), completion_buffer: specs.len() });
    let handles: Vec<JobHandle> = specs
        .into_iter()
        .map(|spec| {
            session.try_submit(spec).unwrap_or_else(|_| {
                unreachable!("session capacity equals batch size; the queue cannot fill")
            })
        })
        .collect();
    handles.iter().map(JobHandle::wait).collect()
}
