//! # qdm-runtime — the concurrent solver service
//!
//! The paper's Fig. 2 roadmap ends at a single reformulate-solve-decode
//! pass; this crate is what a *system* wraps around that pass, following the
//! hybrid serving architecture of Zajac & Störl ("Hybrid Data Management
//! Architecture for Present Quantum Computing", 2024) and the quantum-data-
//! center framing of Liu & Jiang (2023): classical orchestration in front of
//! a portfolio of (simulated) quantum and classical backends.
//!
//! - [`registry`] — every [`qdm_core::solver::QuboSolver`] backend with its
//!   capability snapshot ([`registry::SolverSpec`]): `max_vars`, Fig. 2
//!   branch, static cost prior;
//! - [`service`] — the job queue + worker pool ([`service::SolverService`]):
//!   batches of [`qdm_core::problem::DmProblem`]s run through
//!   [`qdm_core::pipeline::run_pipeline`] concurrently, each job under its
//!   own seeded RNG so results are reproducible regardless of scheduling;
//! - [`cache`] — the result cache keyed by canonical QUBO fingerprint
//!   ([`qdm_qubo::model::QuboModel::fingerprint`]) + options + seed, serving
//!   repeated instances bit-identically without re-solving;
//! - [`portfolio`] — the adaptive scheduler routing each job by size and
//!   observed latency/energy-quality telemetry;
//! - [`metrics`] — counters, a log-scale latency histogram, and the
//!   [`metrics::RuntimeReport`] snapshot.
//!
//! See `examples/solver_service.rs` at the workspace root for the
//! end-to-end tour: a mixed MQO / join-ordering / transaction-scheduling
//! batch fanned out across backends, then resubmitted to show cache hits.

#![warn(missing_docs)]

pub mod cache;
pub mod metrics;
pub mod portfolio;
pub mod registry;
pub mod service;

/// Convenient re-exports of the most used items.
pub mod prelude {
    pub use crate::cache::{CacheKey, CachedResult, ResultCache};
    pub use crate::metrics::{Metrics, RuntimeReport};
    pub use crate::portfolio::{BackendStats, PortfolioScheduler};
    pub use crate::registry::{RegisteredSolver, SolverRegistry, SolverSpec};
    pub use crate::service::{
        BackendChoice, JobError, JobOutcome, JobResult, JobSpec, ServiceConfig, SharedProblem,
        SolverService,
    };
}

pub use prelude::*;
