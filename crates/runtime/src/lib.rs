//! # qdm-runtime — the concurrent solver service
//!
//! The paper's Fig. 2 roadmap ends at a single reformulate-solve-decode
//! pass; this crate is what a *system* wraps around that pass, following the
//! hybrid serving architecture of Zajac & Störl ("Hybrid Data Management
//! Architecture for Present Quantum Computing", 2024) and the quantum-data-
//! center framing of Liu & Jiang (2023): classical orchestration in front of
//! a portfolio of (simulated) quantum and classical backends.
//!
//! - [`registry`] — every [`qdm_core::solver::QuboSolver`] backend with its
//!   capability snapshot ([`registry::SolverSpec`]): `max_vars` and Fig. 2
//!   branch;
//! - [`cost`] — the calibrated cost model ([`cost::CostModel`]): per-family
//!   analytic latency estimators in *seconds*
//!   ([`cost::analytic_seconds`]), calibrated online against observed
//!   latencies and priced for reliability (expected seconds = predicted ÷
//!   success rate ÷ breaker capacity). Predicted seconds are the common
//!   currency for routing, DRR charging, admission draining, and backlog
//!   estimation;
//! - [`service`] — the worker pool and fair-scheduled job queue
//!   ([`service::SolverService`]): each cache-miss job compiles its QUBO
//!   **exactly once** into a shared `Arc<CompiledQubo>` — fingerprinting,
//!   presolve, and every dispatched backend run on that one compilation
//!   via [`qdm_core::pipeline::run_pipeline_compiled`] — and each job runs
//!   under its own seeded RNG, so results are reproducible regardless of
//!   scheduling. [`service::BackendChoice::Race`] races the portfolio's
//!   top-k backends on the shared compilation with a deterministic
//!   energy-then-rank winner pick. Concurrent duplicates of the same work
//!   identity **single-flight**: one leader solves, parked followers are
//!   served its result through the cache-hit translation (counted as
//!   `jobs_coalesced`, never as a second solve);
//! - [`scheduler`] — the deterministic fair scheduler behind the queue:
//!   priority lanes with pop-counted aging (sustained High traffic can no
//!   longer starve Low — a bypassed lane is served after
//!   [`scheduler::AGE_AFTER_POPS`] pops), per-session subqueues with
//!   deficit-round-robin pickup inside each lane (a deep session cannot
//!   monopolize the pool), and
//!   [`scheduler::SchedulerPolicy::StrictPriority`] as the legacy
//!   discipline for comparison;
//! - [`submit`] — the asynchronous client API ([`submit::Session`]):
//!   `submit(JobSpec) -> JobHandle` against a **bounded** per-session queue
//!   with two backpressure modes ([`submit::Session::try_submit`] returns
//!   [`submit::SubmitError::QueueFull`]; [`submit::Session::submit`] blocks
//!   under a condvar), a finish-order completion stream
//!   ([`submit::Session::completions`]), and graceful teardown
//!   ([`submit::Session::drain`] / [`submit::Session::shutdown`]);
//! - [`handle`] — per-job completion slots ([`handle::JobHandle`]):
//!   non-blocking [`handle::JobHandle::try_result`], blocking
//!   [`handle::JobHandle::wait`], and [`handle::JobHandle::cancel`] (a
//!   queued job is removed before any worker picks it up; a running job
//!   completes but reports [`service::JobError::Cancelled`] to late
//!   waiters);
//! - [`cache`] — the fingerprint-sharded result cache keyed by the
//!   permutation-invariant canonical QUBO fingerprint (computed on the
//!   job's shared compilation) + options + seed, serving repeated
//!   instances bit-identically — and permuted re-encodings of the same
//!   instance via canonical-assignment translation — without re-solving;
//!   per-shard eviction is second-chance (CLOCK), so hot fingerprints
//!   survive churn plain FIFO would evict them under;
//! - [`portfolio`] — the adaptive scheduler routing (and, for races,
//!   ranking) each job by size and observed latency/energy-quality
//!   telemetry, including per-backend race entries/wins;
//! - [`metrics`] — counters (including queue depth, backpressure,
//!   cancellations, compile time saved by sharing, and race wins),
//!   log-scale latency histograms (solve time and caller-observed serve
//!   time) with quantile estimation, and the [`metrics::RuntimeReport`]
//!   snapshot with Prometheus text exposition
//!   ([`metrics::RuntimeReport::render_prometheus`]);
//! - [`cluster`] — the sharded front-end ([`cluster::ClusterService`]):
//!   N independent services behind one session API, jobs routed by
//!   consistent-hashing the canonical fingerprint (duplicates of a hot
//!   QUBO — even relabeled ones — land on the shard that has it cached
//!   and single-flight there, compiling once cluster-wide), per-tenant
//!   token-bucket admission control on an injectable [`cluster::Clock`],
//!   watermark load shedding ([`submit::SubmitError::Overloaded`] with a
//!   retry hint), and deterministic cross-shard queue migration — results
//!   stay bit-identical to a single-shard run under fixed seeds;
//! - [`trace`] — structured per-job span timelines
//!   (`queued → compiled → presolved → backend solve → served`, with race
//!   participants as winner/loser child spans) recorded into a bounded
//!   drop-counting ring ([`trace::TraceRing`]) and exported as Chrome
//!   `trace_event` JSON via [`service::SolverService::export_traces`];
//!   solver-internal stage counters flow in through
//!   [`qdm_qubo::probe::StageProbe`] hooks.
//!
//! The synchronous [`service::SolverService::run_batch`] /
//! [`service::SolverService::run`] survive as thin compatibility wrappers
//! implemented on top of the session API (one session sized to the batch,
//! every handle waited in submission order), so existing callers see no
//! behavior change. Determinism is preserved across entry points: per-job
//! seeded RNGs make a job's result bit-identical whether obtained via
//! `run_batch`, `JobHandle::wait`, or a cache hit.
//!
//! See `examples/solver_service.rs` at the workspace root for the
//! end-to-end tour: a mixed MQO / join-ordering / transaction-scheduling
//! batch fanned out across backends, an async session streaming
//! completions, then resubmission showing cache hits.

#![warn(missing_docs)]

pub mod breaker;
pub mod cache;
pub mod cluster;
pub mod cost;
pub mod fault;
pub mod handle;
pub mod journal;
pub mod metrics;
pub mod portfolio;
pub mod registry;
pub mod scheduler;
pub mod service;
pub mod submit;
mod sync;
pub mod trace;

/// Convenient re-exports of the most used items.
pub mod prelude {
    pub use crate::breaker::BreakerConfig;
    pub use crate::cache::{CacheKey, CachedResult, ResultCache};
    pub use crate::cluster::{
        AdmissionConfig, Clock, ClusterConfig, ClusterService, ClusterSession, DepthProbe,
        HealthProbe, ManualClock, MonotonicClock, TokenBucketConfig,
    };
    // `cost::CostModel` stays out of the prelude: the `qdm` facade merges
    // this prelude with `qdm_db`'s, whose join-ordering `CostModel` would
    // collide. Reach it via [`crate::cost::CostModel`] or
    // [`crate::portfolio::PortfolioScheduler::cost_model`].
    pub use crate::cost::{analytic_seconds, CalibrationStats, CostShape};
    pub use crate::fault::{
        FaultAction, FaultInjector, FaultPlan, FaultSite, FaultWhen, NoFaults, RetryPolicy,
    };
    pub use crate::handle::{CancelStatus, Completion, JobHandle};
    pub use crate::journal::{
        unfinished, FileJournal, Journal, JournalEvent, JournaledProblem, MemoryJournal,
        SolutionSnapshot, SubmittedRecord,
    };
    pub use crate::metrics::{Metrics, RuntimeReport};
    pub use crate::portfolio::{BackendStats, PortfolioScheduler};
    pub use crate::registry::{RegisteredSolver, SolverRegistry, SolverSpec};
    pub use crate::scheduler::{SchedulerPolicy, AGE_AFTER_POPS, DRR_QUANTUM};
    pub use crate::service::{
        BackendChoice, JobError, JobOutcome, JobResult, JobSpec, PartialSolution, ServiceConfig,
        SharedProblem, SolverService,
    };
    pub use crate::submit::{Completions, Session, SessionConfig, SubmitError};
    pub use crate::trace::{
        JobTrace, Span, Stage, StageProfile, StageStats, TraceConfig, TraceOutcome, TraceRing,
        TraceSink, DEFAULT_TRACE_CAPACITY,
    };
}

pub use prelude::*;
