//! Sharded multi-service front-end: admission control, load shedding, and
//! cache-affine routing over N independent [`SolverService`] shards.
//!
//! A [`ClusterService`] owns a fixed set of solver shards and fronts them
//! with the same session/handle API as a single service. Three mechanisms
//! sit between a submission and a shard queue:
//!
//! - **Cache-affine routing** — every spec is encoded once at the front
//!   door, its canonical (labeling-independent) fingerprint computed
//!   *without compiling* ([`qdm_qubo::model::QuboModel::canonical_form`]),
//!   and the job routed by consistent-hashing that fingerprint. Duplicates
//!   of a hot QUBO — even relabeled ones — always land on the shard that
//!   already has it cached and single-flight there, so a burst of
//!   permuted duplicates compiles **once cluster-wide**.
//! - **Admission control** — each tenant draws from a token bucket
//!   ([`AdmissionConfig`]) denominated in **predicted seconds** of
//!   backend time (the [`crate::cost`] model's quote for the routed
//!   shard), refilled on an injectable [`Clock`]; an uncovered charge
//!   sheds the job with [`SubmitError::Overloaded`] carrying a retry
//!   hint derived from the refill rate and this job's own cost.
//! - **Load shedding & migration** — a shard whose queue depth crosses
//!   [`ClusterConfig::shed_watermark`], or whose predicted-seconds
//!   backlog crosses [`ClusterConfig::shed_watermark_seconds`], sheds
//!   new arrivals with a retry hint sized to the estimated backlog
//!   *drain time* (never below [`ClusterConfig::shed_retry_hint`]); when
//!   depths diverge beyond [`ClusterConfig::migration_threshold`],
//!   queued jobs migrate from the deepest to the shallowest shard in
//!   deterministic order. A migrating job carries its precomputed route,
//!   so *where* it runs never changes *what* it computes: per-job seeded
//!   RNGs keep results bit-identical to a single-shard run.
//! - **Shard failover** — an injectable [`HealthProbe`] marks shards
//!   healthy or dead. New submissions whose ring owner is dead re-route
//!   to the next healthy shard clockwise (each dead arc re-routes to one
//!   deterministic successor, preserving cache affinity), and
//!   [`ClusterService::failover_drain`] moves queued-but-unclaimed jobs
//!   off dead shards through the same accounting path as migration.
//!   Because a failed-over job travels with its precomputed route and
//!   seed, results stay bit-identical to a healthy cluster's.
//!
//! Observability spans shards: [`ClusterService::report`] merges per-shard
//! [`RuntimeReport`]s ([`RuntimeReport::merge`]) with shard-tagged queue
//! depth gauges, and every trace carries its shard id.

pub mod admission;
pub mod clock;
mod ring;

pub use admission::{AdmissionConfig, DepthProbe, TokenBucketConfig};
pub use clock::{Clock, ManualClock, MonotonicClock};

use crate::handle::{Completion, JobHandle};
use crate::metrics::RuntimeReport;
use crate::registry::SolverRegistry;
use crate::service::{JobSpec, RouteInfo, ServiceConfig, SolverService};
use crate::submit::{enqueue_reserved, Completions, SessionConfig, SessionCore, SubmitError};
use crate::sync::LockExt;
use crate::trace::JobTrace;
use admission::AdmissionController;
use ring::HashRing;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Base for cluster-issued job and session ids. Shard-local ids start at
/// zero, so offsetting cluster ids keeps the two ranges disjoint — a
/// cluster job never collides with a job submitted directly to a shard.
const CLUSTER_ID_BASE: u64 = 1 << 32;

/// Virtual nodes per shard on the consistent-hash ring.
const RING_REPLICAS: usize = 64;

/// Injectable shard-health source driving failover.
///
/// The cluster consults the probe at routing time (a dead ring owner's
/// range re-routes clockwise to the next healthy shard) and during
/// [`ClusterService::failover_drain`] (queued jobs leave dead shards).
/// Health is polled, never cached, so flipping a probe's answer takes
/// effect on the very next submission. Production deployments would back
/// this with heartbeats; tests flip an `AtomicBool` to kill a shard
/// mid-run deterministically — the same injectable-seam pattern as
/// [`Clock`] and [`DepthProbe`].
pub trait HealthProbe: Send + Sync {
    /// Whether `shard` can currently accept and run work.
    fn is_healthy(&self, shard: usize) -> bool;
}

/// Cluster configuration.
#[derive(Clone)]
pub struct ClusterConfig {
    /// Number of solver shards (at least 1). Ignored by
    /// [`ClusterService::with_registries`], where the registry list fixes
    /// the shard count.
    pub shards: usize,
    /// Template for each shard's [`ServiceConfig`]. `shard` and `epoch`
    /// are overridden per shard: every shard gets its own id and all
    /// shards share one epoch so queue-wait timestamps stay valid when a
    /// job migrates.
    pub service: ServiceConfig,
    /// Per-tenant token-bucket admission policy.
    pub admission: AdmissionConfig,
    /// Queue depth at which a shard sheds new arrivals with
    /// [`SubmitError::Overloaded`]; `None` disables depth-watermark
    /// shedding.
    pub shed_watermark: Option<usize>,
    /// Predicted-seconds backlog at which a shard sheds new arrivals:
    /// when the estimated seconds of backend work queued on the routed
    /// shard (from the [`DepthProbe`]'s
    /// [`DepthProbe::backlog_seconds`] if it answers, else the shard's
    /// live predicted-seconds backlog gauge) reach this value, the job is
    /// shed. `None` disables backlog-watermark shedding. Unlike
    /// [`ClusterConfig::shed_watermark`], this sheds on queued *work*,
    /// not queued job count: ten 26-variable exact jobs trip it long
    /// before a hundred 4-variable anneals.
    pub shed_watermark_seconds: Option<f64>,
    /// Floor for the retry hint handed back with watermark sheds. The
    /// actual hint is the routed shard's estimated backlog drain time
    /// (its predicted-seconds backlog, capped at one hour) or this
    /// floor, whichever is larger.
    pub shed_retry_hint: Duration,
    /// Maximum tolerated queue-depth spread between the deepest and
    /// shallowest shard before queued jobs migrate; `None` disables
    /// migration.
    pub migration_threshold: Option<usize>,
    /// Time source for admission control; `None` uses a
    /// [`MonotonicClock`]. Tests inject a [`ManualClock`] so token-bucket
    /// behavior needs no sleeps.
    pub clock: Option<Arc<dyn Clock>>,
    /// Queue-depth source for shedding and migration; `None` reads each
    /// shard's live queue-depth gauge. Tests inject fixed depths to
    /// exercise watermark/migration logic without real backlogs.
    pub depth_probe: Option<Arc<dyn DepthProbe>>,
    /// Shard-health source for failover; `None` treats every shard as
    /// permanently healthy (no routing change, no drains).
    pub health_probe: Option<Arc<dyn HealthProbe>>,
    /// One durable [`Journal`](crate::journal::Journal) per shard (the list
    /// length must match the shard count). Each shard journals its own
    /// submissions and completions; after a crash, a cluster reconstructed
    /// over the *same* journal list replays every unfinished job on its
    /// original shard via [`ClusterService::recover`] — the ring is a pure
    /// function of the shard count, so affinity is preserved. `None` — the
    /// default — disables journaling (any journal set on
    /// [`ClusterConfig::service`] would be shared by all shards; prefer
    /// this per-shard list for clusters).
    pub journals: Option<Vec<Arc<dyn crate::journal::Journal>>>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            service: ServiceConfig { workers: 1, ..ServiceConfig::default() },
            admission: AdmissionConfig::default(),
            shed_watermark: None,
            shed_watermark_seconds: None,
            shed_retry_hint: Duration::from_millis(50),
            migration_threshold: None,
            clock: None,
            depth_probe: None,
            health_probe: None,
            journals: None,
        }
    }
}

/// A sharded front-end over N independent [`SolverService`]s.
///
/// Dropping the cluster drops every shard, which drains and joins their
/// worker pools — same teardown contract as a standalone service.
pub struct ClusterService {
    shards: Vec<SolverService>,
    ring: HashRing,
    admission: AdmissionController,
    clock: Arc<dyn Clock>,
    depth_probe: Option<Arc<dyn DepthProbe>>,
    health_probe: Option<Arc<dyn HealthProbe>>,
    shed_watermark: Option<usize>,
    shed_watermark_seconds: Option<f64>,
    shed_retry_hint: Duration,
    migration_threshold: Option<usize>,
    next_job_id: AtomicU64,
    next_session_id: AtomicU64,
}

impl ClusterService {
    /// Starts a cluster of [`ClusterConfig::shards`] shards, each over the
    /// standard backend portfolio.
    pub fn new(config: ClusterConfig) -> Self {
        let registries = (0..config.shards.max(1)).map(|_| SolverRegistry::standard()).collect();
        Self::with_registries(registries, config)
    }

    /// Starts a cluster with one custom registry per shard (the registry
    /// list fixes the shard count; [`ClusterConfig::shards`] is ignored).
    pub fn with_registries(registries: Vec<SolverRegistry>, config: ClusterConfig) -> Self {
        assert!(!registries.is_empty(), "a cluster needs at least one shard");
        if let Some(journals) = &config.journals {
            assert_eq!(
                journals.len(),
                registries.len(),
                "one journal per shard: journal list length must match the shard count"
            );
        }
        let epoch = config.service.epoch.unwrap_or_else(Instant::now);
        let shards: Vec<SolverService> = registries
            .into_iter()
            .enumerate()
            .map(|(i, registry)| {
                let journal = match &config.journals {
                    Some(journals) => Some(Arc::clone(&journals[i])),
                    None => config.service.journal.clone(),
                };
                SolverService::with_registry(
                    registry,
                    ServiceConfig {
                        shard: Some(i as u64),
                        epoch: Some(epoch),
                        journal,
                        ..config.service.clone()
                    },
                )
            })
            .collect();
        let ring = HashRing::new(shards.len(), RING_REPLICAS);
        Self {
            ring,
            admission: AdmissionController::new(config.admission),
            clock: config.clock.unwrap_or_else(|| Arc::new(MonotonicClock::new())),
            depth_probe: config.depth_probe,
            health_probe: config.health_probe,
            shed_watermark: config.shed_watermark,
            shed_watermark_seconds: config.shed_watermark_seconds,
            shed_retry_hint: config.shed_retry_hint,
            migration_threshold: config.migration_threshold,
            next_job_id: AtomicU64::new(CLUSTER_ID_BASE),
            next_session_id: AtomicU64::new(CLUSTER_ID_BASE),
            shards,
        }
    }

    /// Number of shards in the cluster.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a canonical fingerprint routes to when every shard is
    /// healthy. Pure function of the shard count — every duplicate of a
    /// QUBO (however relabeled) routes here, which is what makes the
    /// shard's cache and single-flight table effective cluster-wide.
    pub fn shard_for_fingerprint(&self, fingerprint: u64) -> usize {
        self.ring.shard_for(fingerprint)
    }

    /// Whether `shard` is currently healthy. No probe means always yes.
    fn healthy(&self, shard: usize) -> bool {
        match &self.health_probe {
            Some(probe) => probe.is_healthy(shard),
            None => true,
        }
    }

    /// The shard `fingerprint` actually routes to right now: the
    /// health-blind ring owner when healthy, otherwise the first healthy
    /// shard clockwise (counted as a failover on the recipient's ledger).
    /// When no shard is healthy the dead owner is returned unchanged —
    /// jobs queue there and survive until the shard recovers or a drain
    /// finds somewhere better.
    fn route_shard(&self, fingerprint: u64) -> usize {
        let primary = self.ring.shard_for(fingerprint);
        if self.healthy(primary) {
            return primary;
        }
        let shard = self.ring.shard_for_healthy(fingerprint, |s| self.healthy(s));
        if shard != primary {
            self.shards[shard].shared.metrics.on_failover();
        }
        shard
    }

    /// Evacuates queued-but-unclaimed jobs from unhealthy shards.
    ///
    /// Runs automatically after every cluster submission and may be called
    /// directly when a probe flips with no traffic to piggyback on. Each
    /// drained job re-routes by its precomputed canonical fingerprint to
    /// the next healthy shard clockwise and moves through the same
    /// pop/push accounting as load-balancing migration (donor counts the
    /// dequeue + migration, recipient counts the enqueue + failover), so
    /// the merged ledger stays balanced and no job is lost or duplicated.
    /// Jobs a dead shard's worker already claimed are out of reach —
    /// "dead" here means the shard stopped making progress, and the retry
    /// layer inside each shard handles in-flight failures. A no-op
    /// without a [`HealthProbe`] or when no healthy shard exists.
    pub fn failover_drain(&self) {
        let Some(probe) = &self.health_probe else { return };
        if !(0..self.shards.len()).any(|s| probe.is_healthy(s)) {
            return;
        }
        for donor in 0..self.shards.len() {
            if probe.is_healthy(donor) {
                continue;
            }
            loop {
                let popped = {
                    let mut queue = self.shards[donor].shared.queue.lock_unpoisoned();
                    queue.pop()
                };
                let Some(job) = popped else { break };
                let recipient = match job.route.as_ref() {
                    Some(route) => {
                        self.ring.shard_for_healthy(route.canonical_fp, |s| probe.is_healthy(s))
                    }
                    // Jobs enqueued directly on the shard carry no route:
                    // send them to the lowest-indexed healthy shard.
                    None => (0..self.shards.len())
                        .find(|&s| probe.is_healthy(s))
                        .expect("a healthy shard exists — checked above"),
                };
                let from = &self.shards[donor].shared;
                let to = &self.shards[recipient].shared;
                from.metrics.on_dequeue();
                from.metrics.on_migrated();
                to.metrics.on_enqueue();
                to.metrics.on_failover();
                {
                    let mut queue = to.queue.lock_unpoisoned();
                    queue.push(job);
                }
                to.job_ready.notify_one();
            }
        }
    }

    /// Opens a submission session for `tenant` with the same bounded-queue
    /// semantics as [`SolverService::session`]. The tenant name selects
    /// the admission token bucket; jobs fan out across shards by content,
    /// while handles and the completion stream behave exactly as on a
    /// single service.
    pub fn session(&self, tenant: impl Into<String>, config: SessionConfig) -> ClusterSession<'_> {
        let id = self.next_session_id.fetch_add(1, Ordering::Relaxed);
        ClusterSession {
            cluster: self,
            tenant: tenant.into(),
            core: Arc::new(SessionCore::new(id, config.queue_capacity, config.completion_buffer)),
        }
    }

    /// The merged cluster-wide ledger: every per-shard
    /// [`RuntimeReport`] summed via [`RuntimeReport::merge`], with
    /// shard-tagged queue depth gauges. Per-shard ledgers do not
    /// individually balance once jobs migrate (the donor counted the
    /// submit, the recipient counts the completion) — the merged report is
    /// the one that always does.
    pub fn report(&self) -> RuntimeReport {
        let reports = self.shard_reports();
        RuntimeReport::merge(&reports)
    }

    /// Per-shard reports, indexed by shard id (each tagged with
    /// [`RuntimeReport::shard`]).
    pub fn shard_reports(&self) -> Vec<RuntimeReport> {
        self.shards.iter().map(SolverService::report).collect()
    }

    /// Every shard's retained traces (each tagged with its shard id),
    /// ordered by job id for a stable cross-shard view.
    pub fn traces(&self) -> Vec<JobTrace> {
        let mut traces: Vec<JobTrace> =
            self.shards.iter().flat_map(SolverService::traces).collect();
        traces.sort_by_key(|t| t.job_id);
        traces
    }

    /// Current queue depth of `shard`, from the injected probe or the
    /// shard's live gauge.
    fn depth(&self, shard: usize) -> usize {
        match &self.depth_probe {
            Some(probe) => probe.queue_depth(shard),
            None => self.shards[shard].shared.metrics.queue_depth() as usize,
        }
    }

    /// Predicted seconds of backend work queued on `shard`: the injected
    /// probe's answer when it has one, else the shard's live
    /// predicted-seconds backlog gauge (the sum of every queued job's
    /// cost-model quote).
    fn backlog_seconds(&self, shard: usize) -> f64 {
        self.depth_probe.as_ref().and_then(|probe| probe.backlog_seconds(shard)).unwrap_or_else(
            || self.shards[shard].shared.queue.lock_unpoisoned().backlog_micros() as f64 / 1e6,
        )
    }

    /// Retry hint for a watermark shed on `shard`: the estimated time for
    /// the shard's predicted-seconds backlog to drain (capped at one
    /// hour), floored at the configured [`ClusterConfig::shed_retry_hint`]
    /// so a shard shedding on depth with an unknown backlog still hands
    /// back a useful backoff.
    fn shed_hint(&self, shard: usize) -> Duration {
        let drain = Duration::from_secs_f64(self.backlog_seconds(shard).clamp(0.0, 3600.0));
        self.shed_retry_hint.max(drain)
    }

    /// Migrates queued jobs from the deepest to the shallowest shard while
    /// the spread exceeds the threshold *and* moving a job strictly
    /// shrinks it (a spread of 1 would only oscillate). Donor and
    /// recipient selection break ties toward the lowest shard index and
    /// each shard's scheduler pops in its deterministic order, so the
    /// migration sequence is reproducible. The job moves with its
    /// precomputed route and untouched completion slot/session — nothing
    /// about its eventual result changes, only which worker pool runs it.
    fn maybe_migrate(&self) {
        let Some(threshold) = self.migration_threshold else { return };
        if self.shards.len() < 2 {
            return;
        }
        loop {
            let depths: Vec<usize> = (0..self.shards.len()).map(|s| self.depth(s)).collect();
            let mut donor = 0;
            let mut recipient = 0;
            for (i, &d) in depths.iter().enumerate() {
                if d > depths[donor] {
                    donor = i;
                }
                if d < depths[recipient] {
                    recipient = i;
                }
            }
            let spread = depths[donor] - depths[recipient];
            if spread <= threshold || spread < 2 {
                return;
            }
            // One queue lock at a time: pop from the donor, then push to
            // the recipient. The job is invisible to cancel() in between,
            // which is fine — cancel of a missing id degrades to the
            // running-job path.
            let popped = {
                let mut queue = self.shards[donor].shared.queue.lock_unpoisoned();
                queue.pop()
            };
            let Some(job) = popped else { return };
            let from = &self.shards[donor].shared;
            let to = &self.shards[recipient].shared;
            from.metrics.on_dequeue();
            from.metrics.on_migrated();
            to.metrics.on_enqueue();
            {
                let mut queue = to.queue.lock_unpoisoned();
                queue.push(job);
            }
            to.job_ready.notify_one();
        }
    }

    /// Replays every unfinished job from each shard's configured journal
    /// (see [`ClusterConfig::journals`]) on that same shard, returning the
    /// replay handles across all shards in shard order. Because each shard
    /// keeps its own journal and the hash ring is a pure function of the
    /// shard count, a reconstructed cluster of the same size replays every
    /// lost job exactly where the original cluster would have run it —
    /// cache affinity and bit-identical results included. The cluster's id
    /// counter is bumped past every replayed id, so post-recovery traffic
    /// never collides with replays. Shards without a journal contribute
    /// nothing.
    pub fn recover(&self) -> Vec<JobHandle> {
        let mut handles = Vec::new();
        for shard in &self.shards {
            let Some(journal) = shard.shared.journal.clone() else { continue };
            handles.extend(shard.recover(journal.as_ref()));
        }
        for handle in &handles {
            let next = handle.id().saturating_add(1);
            self.next_job_id.fetch_max(next, Ordering::Relaxed);
        }
        handles
    }

    /// Exports every shard's result cache as one snapshot per shard, in
    /// shard order (see [`SolverService::save_snapshot`]). Load the list
    /// into a same-sized reconstructed cluster with
    /// [`ClusterService::load_snapshots`]: ring routing is a pure function
    /// of the shard count, so each snapshot lands exactly where its
    /// fingerprints route.
    pub fn save_snapshots(&self) -> Vec<crate::journal::SolutionSnapshot> {
        self.shards.iter().map(SolverService::save_snapshot).collect()
    }

    /// Seeds each shard's result cache from the matching snapshot (paired
    /// by index; extra entries on either side are ignored). After a warm
    /// restart, resubmissions of snapshotted work are served straight from
    /// the shard caches — bit-identical, with no compile and no solve.
    pub fn load_snapshots(&self, snapshots: &[crate::journal::SolutionSnapshot]) {
        for (shard, snapshot) in self.shards.iter().zip(snapshots) {
            shard.load_snapshot(snapshot);
        }
    }

    /// Crashes every shard at once (see
    /// [`SolverService::simulate_crash`]): queued and parked jobs vanish
    /// without resolving, workers finish only what they already claimed.
    /// Test-support API for whole-cluster crash-recovery drills; rebuild
    /// the cluster over the same [`ClusterConfig::journals`] and call
    /// [`ClusterService::recover`] to replay the lost work.
    pub fn simulate_crash(self) {
        for shard in self.shards {
            shard.simulate_crash();
        }
    }
}

/// An asynchronous submission session over a [`ClusterService`].
///
/// Same contract as [`crate::submit::Session`] — bounded queue, per-job
/// [`JobHandle`]s, a finish-order completion stream, drain/shutdown — plus
/// the cluster's admission checks: [`ClusterSession::submit`] can return
/// [`SubmitError::Overloaded`] when the tenant's bucket is empty or the
/// routed shard is past its shedding watermark. One session's jobs may
/// execute on different shards; the handles and completion stream hide
/// that entirely.
pub struct ClusterSession<'a> {
    cluster: &'a ClusterService,
    tenant: String,
    core: Arc<SessionCore>,
}

impl ClusterSession<'_> {
    /// The tenant this session draws admission tokens for.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Encodes the spec once and picks its shard by canonical fingerprint,
    /// skipping past shards the health probe reports dead.
    fn route(&self, spec: &JobSpec) -> (usize, RouteInfo) {
        let qubo = Arc::new(spec.problem.to_qubo());
        let (canonical_fp, perm) = qubo.canonical_form();
        let shard = self.cluster.route_shard(canonical_fp);
        (shard, RouteInfo { qubo, canonical_fp, perm: Arc::new(perm) })
    }

    /// Admission checks for an already-reserved slot: token bucket first
    /// (charged the routed shard's predicted seconds for this spec —
    /// calibration and breaker state included), then the shard's shedding
    /// watermarks (queue depth and predicted-seconds backlog). On refusal
    /// the reservation is unwound, the shed is counted against the routed
    /// shard, and the spec is handed back inside the error with a hint
    /// derived from either the bucket's refill deficit or the shard's
    /// estimated backlog drain time.
    fn admit_reserved(&self, shard: usize, spec: JobSpec) -> Result<JobSpec, SubmitError> {
        let shard_shared = &self.cluster.shards[shard].shared;
        let metrics = &shard_shared.metrics;
        let cost_seconds = shard_shared.predicted_seconds(&spec);
        if let Err(retry_after_hint) = self.cluster.admission.try_admit(
            &self.tenant,
            self.cluster.clock.now_micros(),
            cost_seconds,
        ) {
            self.core.unreserve();
            metrics.on_shed();
            return Err(SubmitError::Overloaded { retry_after_hint, spec });
        }
        let over_depth = self
            .cluster
            .shed_watermark
            .is_some_and(|watermark| self.cluster.depth(shard) >= watermark);
        let over_backlog = self
            .cluster
            .shed_watermark_seconds
            .is_some_and(|watermark| self.cluster.backlog_seconds(shard) >= watermark);
        if over_depth || over_backlog {
            self.core.unreserve();
            metrics.on_shed();
            return Err(SubmitError::Overloaded {
                retry_after_hint: self.cluster.shed_hint(shard),
                spec,
            });
        }
        metrics.on_admitted();
        Ok(spec)
    }

    /// Submits a job, blocking while the session queue is full, then
    /// applying admission control. Sheds return the spec with a backoff
    /// hint; admitted jobs are enqueued on their fingerprint's shard and
    /// may trigger queue rebalancing.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, SubmitError> {
        let (shard, route) = self.route(&spec);
        let shared = &self.cluster.shards[shard].shared;
        self.core.reserve_blocking(&shared.metrics);
        let spec = self.admit_reserved(shard, spec)?;
        let id = self.cluster.next_job_id.fetch_add(1, Ordering::Relaxed);
        let handle =
            enqueue_reserved(shared, &self.core, id, spec, Some(route), Some(&self.tenant), false);
        self.cluster.failover_drain();
        self.cluster.maybe_migrate();
        Ok(handle)
    }

    /// Non-blocking submit: a full session queue returns
    /// [`SubmitError::QueueFull`] (no admission token consumed); otherwise
    /// identical to [`ClusterSession::submit`].
    pub fn try_submit(&self, spec: JobSpec) -> Result<JobHandle, SubmitError> {
        let (shard, route) = self.route(&spec);
        let shared = &self.cluster.shards[shard].shared;
        if !self.core.try_reserve() {
            shared.metrics.on_backpressure_rejection();
            return Err(SubmitError::QueueFull(spec));
        }
        let spec = self.admit_reserved(shard, spec)?;
        let id = self.cluster.next_job_id.fetch_add(1, Ordering::Relaxed);
        let handle =
            enqueue_reserved(shared, &self.core, id, spec, Some(route), Some(&self.tenant), false);
        self.cluster.failover_drain();
        self.cluster.maybe_migrate();
        Ok(handle)
    }

    /// Streams finished jobs in finish order, across all shards. Same
    /// fused-iterator contract as [`crate::submit::Session::completions`].
    pub fn completions(&self) -> Completions<'_> {
        Completions::new(&self.core)
    }

    /// Jobs submitted through this session that have not resolved yet.
    pub fn in_flight(&self) -> usize {
        self.core.unresolved()
    }

    /// Completions evicted because the stream buffer overflowed
    /// ([`SessionConfig::completion_buffer`]).
    pub fn completions_dropped(&self) -> usize {
        self.core.dropped()
    }

    /// Blocks until every job submitted through this session has resolved,
    /// wherever it migrated.
    pub fn drain(&self) {
        self.core.drain_wait();
    }

    /// Graceful teardown: drains and returns unconsumed completions in
    /// finish order.
    pub fn shutdown(self) -> Vec<Completion> {
        self.core.drain_wait();
        self.core.take_completions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{analytic_seconds, CostShape};
    use crate::service::SharedProblem;
    use qdm_core::problem::{Decoded, DmProblem};
    use qdm_qubo::model::QuboModel;
    use qdm_qubo::penalty;
    use std::sync::{Condvar, Mutex};

    struct PickOne {
        costs: Vec<f64>,
    }

    impl DmProblem for PickOne {
        fn name(&self) -> String {
            format!("cluster-pick-{}", self.costs.len())
        }
        fn n_vars(&self) -> usize {
            self.costs.len()
        }
        fn to_qubo(&self) -> QuboModel {
            let mut q = QuboModel::new(self.costs.len());
            for (i, &c) in self.costs.iter().enumerate() {
                q.add_linear(i, c);
            }
            let vars: Vec<usize> = (0..self.costs.len()).collect();
            let weight = penalty::penalty_weight(&q);
            penalty::exactly_one(&mut q, &vars, weight);
            q
        }
        fn decode(&self, bits: &[bool]) -> Decoded {
            let chosen: Vec<usize> =
                bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
            Decoded {
                feasible: chosen.len() == 1,
                objective: chosen.iter().map(|&i| self.costs[i]).sum(),
                summary: format!("chose {chosen:?}"),
            }
        }
    }

    fn pick(n: usize) -> SharedProblem {
        Arc::new(PickOne { costs: (0..n).map(|i| ((i * 3) % 7) as f64 + 0.5).collect() })
    }

    /// A [`PickOne`] whose decode blocks until the shared gate opens.
    /// While a job is wedged in decode, no solve observation reaches the
    /// cost model — every submission made before the gate opens is quoted
    /// against the *frozen* cold calibration, which is what makes
    /// admission charges exactly predictable in a test.
    struct GatedPick {
        inner: PickOne,
        gate: Arc<(Mutex<bool>, Condvar)>,
    }

    impl DmProblem for GatedPick {
        fn name(&self) -> String {
            self.inner.name()
        }
        fn n_vars(&self) -> usize {
            self.inner.n_vars()
        }
        fn to_qubo(&self) -> QuboModel {
            self.inner.to_qubo()
        }
        fn decode(&self, bits: &[bool]) -> Decoded {
            let (lock, cv) = &*self.gate;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
            drop(open);
            self.inner.decode(bits)
        }
    }

    fn gated(n: usize, gate: &Arc<(Mutex<bool>, Condvar)>) -> SharedProblem {
        Arc::new(GatedPick {
            inner: PickOne { costs: (0..n).map(|i| ((i * 3) % 7) as f64 + 0.5).collect() },
            gate: Arc::clone(gate),
        })
    }

    fn open_gate(gate: &Arc<(Mutex<bool>, Condvar)>) {
        let (lock, cv) = &**gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
    }

    fn small_cluster(shards: usize) -> ClusterService {
        ClusterService::new(ClusterConfig {
            shards,
            service: ServiceConfig { workers: 1, cache_capacity: 16, ..Default::default() },
            ..Default::default()
        })
    }

    #[test]
    fn cluster_jobs_run_and_ids_stay_disjoint_from_shard_ids() {
        let cluster = small_cluster(2);
        let session = cluster.session("t", SessionConfig::default());
        let handle = session.submit(JobSpec::new(pick(4), 7)).expect("admitted");
        assert!(handle.id() >= CLUSTER_ID_BASE, "cluster ids live above the shard-local range");
        let result = handle.wait().expect("solvable");
        assert!(result.report.decoded.feasible);
        session.drain();
        let report = cluster.report();
        assert_eq!(report.jobs_submitted, 1);
        assert_eq!(report.jobs_completed, 1);
        assert_eq!(report.jobs_admitted, 1);
    }

    #[test]
    fn token_bucket_sheds_and_manual_refill_readmits() {
        // The bucket is denominated in predicted seconds, so its capacity
        // and refill are expressed in units of one job's cold cost-model
        // quote — read off the same public estimator the cluster charges
        // with, never hardcoded. The gate keeps the first job wedged in
        // decode so no observation recalibrates the quote mid-test.
        let reg = SolverRegistry::standard();
        let sa = reg.find("simulated-annealing").expect("SA registered");
        let unit = analytic_seconds(&reg.get(sa).spec, CostShape::from_n_vars(4));
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let clock = Arc::new(ManualClock::new(0));
        let cluster = ClusterService::new(ClusterConfig {
            shards: 2,
            service: ServiceConfig { workers: 1, cache_capacity: 16, ..Default::default() },
            admission: AdmissionConfig::default().with_tenant(
                "metered",
                TokenBucketConfig { capacity: 1.5 * unit, refill_per_second: unit },
            ),
            clock: Some(clock.clone()),
            ..Default::default()
        });
        let session = cluster.session("metered", SessionConfig::default());
        let spec = |seed| JobSpec::new(gated(4, &gate), seed).on_backend("simulated-annealing");
        let first = session.submit(spec(1)).expect("burst covers one job");
        // 0.5 units left cannot cover a 1-unit job: shed, with a hint of
        // exactly the 0.5 units of refill this job still needs.
        let err = session.submit(spec(2)).unwrap_err();
        let hint = err.retry_after_hint().expect("overloaded carries a hint");
        assert_eq!(hint, Duration::from_millis(500));
        // Advance the injected clock instead of sleeping: the bucket
        // refills and the recovered spec resubmits cleanly.
        clock.advance(500_000);
        let retried = session.submit(err.into_spec()).expect("refilled");
        open_gate(&gate);
        assert!(first.wait().is_ok());
        assert!(retried.wait().is_ok());
        session.drain();
        let report = cluster.report();
        assert_eq!(report.jobs_shed, 1);
        assert_eq!(report.jobs_admitted, 2);
        assert_eq!(report.jobs_submitted, 2, "shed jobs never reach a queue");
    }

    #[test]
    fn watermark_sheds_via_injected_depth_probe() {
        struct Flooded;
        impl DepthProbe for Flooded {
            fn queue_depth(&self, _shard: usize) -> usize {
                1000
            }
        }
        let cluster = ClusterService::new(ClusterConfig {
            shards: 2,
            service: ServiceConfig { workers: 1, cache_capacity: 16, ..Default::default() },
            shed_watermark: Some(8),
            shed_retry_hint: Duration::from_millis(250),
            depth_probe: Some(Arc::new(Flooded)),
            ..Default::default()
        });
        let session = cluster.session("t", SessionConfig::default());
        let err = session.submit(JobSpec::new(pick(4), 1)).unwrap_err();
        // The probe scripts a depth but no backlog, and nothing is queued
        // live, so the hint falls back to the configured floor.
        assert_eq!(err.retry_after_hint(), Some(Duration::from_millis(250)));
        drop(session);
        let report = cluster.report();
        assert_eq!(report.jobs_shed, 1);
        assert_eq!(report.jobs_submitted, 0);
    }

    #[test]
    fn seconds_watermark_sheds_on_estimated_backlog_with_drain_time_hint() {
        // Zero queued *jobs* as far as depth is concerned — the probe
        // reports backlog purely in predicted seconds, and that alone
        // trips the seconds watermark. The hint is the drain time, not
        // the floor.
        struct DeepWork;
        impl DepthProbe for DeepWork {
            fn queue_depth(&self, _shard: usize) -> usize {
                0
            }
            fn backlog_seconds(&self, _shard: usize) -> Option<f64> {
                Some(12.5)
            }
        }
        let cluster = ClusterService::new(ClusterConfig {
            shards: 2,
            service: ServiceConfig { workers: 1, cache_capacity: 16, ..Default::default() },
            shed_watermark: Some(1000),
            shed_watermark_seconds: Some(10.0),
            shed_retry_hint: Duration::from_millis(250),
            depth_probe: Some(Arc::new(DeepWork)),
            ..Default::default()
        });
        let session = cluster.session("t", SessionConfig::default());
        let err = session.submit(JobSpec::new(pick(4), 1)).unwrap_err();
        assert_eq!(
            err.retry_after_hint(),
            Some(Duration::from_secs_f64(12.5)),
            "hint is the estimated backlog drain time, not the floor"
        );
        drop(session);
        let report = cluster.report();
        assert_eq!(report.jobs_shed, 1);
        assert_eq!(report.jobs_submitted, 0);
    }

    #[test]
    fn shed_submissions_release_their_queue_slot() {
        struct Flooded;
        impl DepthProbe for Flooded {
            fn queue_depth(&self, _shard: usize) -> usize {
                usize::MAX
            }
        }
        let cluster = ClusterService::new(ClusterConfig {
            shards: 1,
            service: ServiceConfig { workers: 1, cache_capacity: 16, ..Default::default() },
            shed_watermark: Some(1),
            depth_probe: Some(Arc::new(Flooded)),
            ..Default::default()
        });
        // Capacity 1: if sheds leaked their reservation, the second submit
        // would deadlock in reserve_blocking.
        let session =
            cluster.session("t", SessionConfig { queue_capacity: 1, completion_buffer: 4 });
        for seed in 0..4 {
            let err = session.submit(JobSpec::new(pick(4), seed)).unwrap_err();
            assert!(matches!(err, SubmitError::Overloaded { .. }));
        }
        assert_eq!(session.in_flight(), 0);
    }

    #[test]
    fn duplicate_fingerprints_route_to_one_shard() {
        let cluster = small_cluster(4);
        let qubo = pick(6).to_qubo();
        let (fp, _) = qubo.canonical_form();
        let home = cluster.shard_for_fingerprint(fp);
        let session = cluster.session("t", SessionConfig::default());
        for seed in 0..6 {
            session.submit(JobSpec::new(pick(6), seed)).expect("admitted");
        }
        session.drain();
        let reports = cluster.shard_reports();
        for (i, report) in reports.iter().enumerate() {
            assert_eq!(report.shard, Some(i as u64));
            let expected = if i == home { 6 } else { 0 };
            assert_eq!(
                report.jobs_submitted, expected,
                "all duplicates of one fingerprint belong to shard {home}"
            );
        }
    }

    #[test]
    fn single_shard_cluster_never_migrates() {
        let cluster = ClusterService::new(ClusterConfig {
            shards: 1,
            service: ServiceConfig { workers: 1, cache_capacity: 16, ..Default::default() },
            migration_threshold: Some(0),
            ..Default::default()
        });
        let session = cluster.session("t", SessionConfig::default());
        for seed in 0..8 {
            session.submit(JobSpec::new(pick(4), seed)).expect("admitted");
        }
        session.drain();
        let report = cluster.report();
        assert_eq!(report.migrations, 0);
        assert_eq!(report.jobs_completed, 8);
    }
}
