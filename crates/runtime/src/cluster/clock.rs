//! Injectable time sources for cluster admission control.
//!
//! Token-bucket refill is a pure function of elapsed time, so the cluster
//! never reads wall time directly: it asks a [`Clock`] for monotonic
//! microseconds. Production uses [`MonotonicClock`]; tests inject a
//! [`ManualClock`] and advance it explicitly, making every admission
//! decision reproducible without sleeping.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic microsecond clock. Implementations must never go backwards;
/// the absolute epoch is arbitrary (only differences matter).
pub trait Clock: Send + Sync {
    /// Microseconds since the clock's (arbitrary, fixed) epoch.
    fn now_micros(&self) -> u64;
}

/// The production clock: monotonic microseconds since construction.
pub struct MonotonicClock {
    epoch: Instant,
}

impl MonotonicClock {
    /// A clock whose epoch is now.
    pub fn new() -> Self {
        Self { epoch: Instant::now() }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

/// A hand-driven clock for deterministic tests: time only moves when
/// [`ManualClock::advance`] or [`ManualClock::set`] is called.
#[derive(Default)]
pub struct ManualClock {
    micros: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at `start_micros`.
    pub fn new(start_micros: u64) -> Self {
        Self { micros: AtomicU64::new(start_micros) }
    }

    /// Moves the clock forward by `micros`.
    pub fn advance(&self, micros: u64) {
        self.micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Jumps the clock to an absolute reading. Callers are responsible for
    /// keeping it monotonic (never set it backwards).
    pub fn set(&self, micros: u64) {
        self.micros.store(micros, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_micros(&self) -> u64 {
        self.micros.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_moves_only_when_told() {
        let clock = ManualClock::new(100);
        assert_eq!(clock.now_micros(), 100);
        assert_eq!(clock.now_micros(), 100, "repeated reads do not advance");
        clock.advance(50);
        assert_eq!(clock.now_micros(), 150);
        clock.set(1_000_000);
        assert_eq!(clock.now_micros(), 1_000_000);
    }

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let clock = MonotonicClock::new();
        let a = clock.now_micros();
        let b = clock.now_micros();
        assert!(b >= a);
    }
}
