//! Consistent-hash ring for fingerprint → shard routing.
//!
//! Each shard owns a fixed set of virtual nodes placed on a `u64` ring by
//! an FNV-1a hash of `(shard, replica)`. A canonical fingerprint routes to
//! the owner of the first ring point at or after its own hash (wrapping to
//! the first point past the top). Two properties matter to the cluster:
//!
//! - **Determinism** — the ring is a pure function of the shard count, so
//!   every process routes a fingerprint identically. Cache affinity and
//!   the duplicate-coalescing proof in the cluster tests rely on this.
//! - **Stability** — virtual nodes mean adding a shard moves only the keys
//!   that fall into the new shard's arcs, instead of reshuffling all of
//!   them as `fp % n` would.

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// FNV-1a over the little-endian bytes of each word.
fn fnv1a(words: &[u64]) -> u64 {
    let mut hash = FNV_OFFSET;
    for word in words {
        for byte in word.to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    }
    hash
}

/// Sorted ring of `(point, shard)` virtual nodes.
pub(crate) struct HashRing {
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// A ring with `replicas` virtual nodes for each of `shards` shards.
    pub(crate) fn new(shards: usize, replicas: usize) -> Self {
        let mut points = Vec::with_capacity(shards * replicas);
        for shard in 0..shards {
            for replica in 0..replicas {
                points.push((fnv1a(&[shard as u64, replica as u64]), shard));
            }
        }
        points.sort_unstable();
        Self { points }
    }

    /// The shard owning `fingerprint`: the first ring point clockwise from
    /// the fingerprint's hash.
    pub(crate) fn shard_for(&self, fingerprint: u64) -> usize {
        let hash = fnv1a(&[fingerprint]);
        let idx = self.points.partition_point(|&(point, _)| point < hash);
        let idx = if idx == self.points.len() { 0 } else { idx };
        self.points[idx].1
    }

    /// [`Self::shard_for`] with failover: keeps walking the ring clockwise
    /// past virtual nodes of unhealthy shards until it finds a healthy
    /// owner. Deterministic for a fixed health assignment — every
    /// fingerprint of a dead shard's arc re-routes to the *same* healthy
    /// successor, preserving cache affinity under failover. When no shard
    /// is healthy the primary owner is returned unchanged (routing
    /// degrades to health-blind rather than refusing service).
    pub(crate) fn shard_for_healthy(
        &self,
        fingerprint: u64,
        healthy: impl Fn(usize) -> bool,
    ) -> usize {
        let hash = fnv1a(&[fingerprint]);
        let start = self.points.partition_point(|&(point, _)| point < hash);
        let n = self.points.len();
        for step in 0..n {
            let (_, shard) = self.points[(start + step) % n];
            if healthy(shard) {
                return shard;
            }
        }
        self.points[if start == n { 0 } else { start }].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_single_shard_routes_everything_home() {
        let ring = HashRing::new(4, 64);
        let again = HashRing::new(4, 64);
        for fp in 0..1000u64 {
            assert_eq!(ring.shard_for(fp), again.shard_for(fp));
        }
        let solo = HashRing::new(1, 64);
        for fp in 0..1000u64 {
            assert_eq!(solo.shard_for(fp), 0);
        }
    }

    #[test]
    fn virtual_nodes_spread_keys_across_all_shards() {
        let ring = HashRing::new(4, 64);
        let mut counts = [0usize; 4];
        for fp in 0..10_000u64 {
            counts[ring.shard_for(fp)] += 1;
        }
        for (shard, count) in counts.iter().enumerate() {
            assert!(
                *count > 1000,
                "shard {shard} owns only {count} of 10k keys — ring badly unbalanced"
            );
        }
    }

    #[test]
    fn growing_the_ring_moves_only_a_fraction_of_keys() {
        let four = HashRing::new(4, 64);
        let five = HashRing::new(5, 64);
        let moved = (0..10_000u64).filter(|&fp| four.shard_for(fp) != five.shard_for(fp)).count();
        // Ideal is 1/5 of keys; allow generous slack while still ruling
        // out a modulo-style full reshuffle (~80% moved).
        assert!(moved < 5_000, "{moved} of 10k keys moved when adding one shard");
    }
}
