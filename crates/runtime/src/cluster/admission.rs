//! Per-tenant token-bucket admission control and shard depth probing.
//!
//! Every cluster submission passes through an `AdmissionController`
//! before it may occupy a queue slot. Each tenant draws from its own
//! token bucket: `capacity` tokens burst, refilled continuously at
//! `refill_per_second`. A submission costs one token; when the bucket
//! cannot cover it the job is shed with a retry hint computed from the
//! refill rate — the caller learns exactly how long until a token exists.
//!
//! Refill arithmetic depends only on the [`super::Clock`] reading passed
//! in by the cluster, so tests drive admission with a
//! [`super::ManualClock`] and never sleep.

use crate::sync::LockExt;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

/// Cap on the retry hint so a zero-refill bucket still yields a finite,
/// `Duration`-safe backoff.
const MAX_RETRY_HINT: Duration = Duration::from_secs(3600);

/// One tenant's token bucket: `capacity` tokens of burst, refilled
/// continuously at `refill_per_second`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TokenBucketConfig {
    /// Maximum tokens the bucket holds (burst size). Buckets start full.
    pub capacity: f64,
    /// Tokens added per second of elapsed [`super::Clock`] time. A rate of
    /// zero means the bucket never refills: after the initial burst the
    /// tenant is shed with the maximum retry hint.
    pub refill_per_second: f64,
}

/// Cluster-wide admission policy: named per-tenant buckets plus an
/// optional default for everyone else.
#[derive(Debug, Clone, Default)]
pub struct AdmissionConfig {
    /// Bucket applied to tenants without an explicit entry in
    /// [`AdmissionConfig::tenants`]. `None` means unknown tenants are
    /// admitted without limit.
    pub default_bucket: Option<TokenBucketConfig>,
    /// Explicit per-tenant buckets, looked up by exact tenant name.
    pub tenants: Vec<(String, TokenBucketConfig)>,
}

impl AdmissionConfig {
    /// Adds (or replaces) an explicit bucket for `tenant`.
    pub fn with_tenant(mut self, tenant: &str, bucket: TokenBucketConfig) -> Self {
        self.tenants.retain(|(name, _)| name != tenant);
        self.tenants.push((tenant.to_string(), bucket));
        self
    }

    /// Sets the bucket applied to tenants without an explicit entry.
    pub fn with_default_bucket(mut self, bucket: TokenBucketConfig) -> Self {
        self.default_bucket = Some(bucket);
        self
    }

    fn bucket_for(&self, tenant: &str) -> Option<TokenBucketConfig> {
        self.tenants
            .iter()
            .find(|(name, _)| name == tenant)
            .map(|(_, bucket)| *bucket)
            .or(self.default_bucket)
    }
}

/// Queue-depth source for load shedding and migration decisions. The
/// default probe reads each shard's live `queue_depth` gauge; tests
/// inject a fixed-depth probe to exercise watermark and migration logic
/// without having to construct real backlogs.
pub trait DepthProbe: Send + Sync {
    /// Current queue depth of `shard`.
    fn queue_depth(&self, shard: usize) -> usize;
}

/// Mutable bucket state: the token count as of `last_micros`.
struct BucketState {
    tokens: f64,
    last_micros: u64,
}

/// Runtime admission state: one lazily created [`BucketState`] per tenant
/// that has a configured bucket.
pub(crate) struct AdmissionController {
    config: AdmissionConfig,
    buckets: Mutex<HashMap<String, BucketState>>,
}

impl AdmissionController {
    pub(crate) fn new(config: AdmissionConfig) -> Self {
        Self { config, buckets: Mutex::new(HashMap::new()) }
    }

    /// Charges one token to `tenant`'s bucket at clock reading
    /// `now_micros`. On success the token is consumed; on refusal nothing
    /// is consumed and the error carries how long until the bucket holds a
    /// full token again (capped at one hour for zero-refill buckets).
    pub(crate) fn try_admit(&self, tenant: &str, now_micros: u64) -> Result<(), Duration> {
        let Some(bucket) = self.config.bucket_for(tenant) else {
            return Ok(());
        };
        let mut buckets = self.buckets.lock_unpoisoned();
        let state = buckets
            .entry(tenant.to_string())
            .or_insert(BucketState { tokens: bucket.capacity, last_micros: now_micros });
        // Refill for the elapsed interval; saturating_sub tolerates a clock
        // that reports the same instant to two racing submitters.
        let elapsed_secs = now_micros.saturating_sub(state.last_micros) as f64 / 1e6;
        state.tokens =
            (state.tokens + elapsed_secs * bucket.refill_per_second).min(bucket.capacity);
        state.last_micros = now_micros;
        if state.tokens >= 1.0 {
            state.tokens -= 1.0;
            return Ok(());
        }
        let deficit = 1.0 - state.tokens;
        let hint = if bucket.refill_per_second > 0.0 {
            Duration::from_secs_f64(
                (deficit / bucket.refill_per_second).min(MAX_RETRY_HINT.as_secs_f64()),
            )
        } else {
            MAX_RETRY_HINT
        };
        Err(hint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limited(capacity: f64, refill: f64) -> AdmissionController {
        AdmissionController::new(
            AdmissionConfig::default()
                .with_tenant("metered", TokenBucketConfig { capacity, refill_per_second: refill }),
        )
    }

    #[test]
    fn unknown_tenant_without_default_is_unlimited() {
        let ctl = limited(1.0, 1.0);
        for _ in 0..1000 {
            assert!(ctl.try_admit("anonymous", 0).is_ok());
        }
    }

    #[test]
    fn bucket_starts_full_and_empties_burst_first() {
        let ctl = limited(3.0, 1.0);
        for _ in 0..3 {
            assert!(ctl.try_admit("metered", 0).is_ok());
        }
        let hint = ctl.try_admit("metered", 0).unwrap_err();
        // Empty bucket, 1 token/s refill: exactly one second to a token.
        assert_eq!(hint, Duration::from_secs(1));
    }

    #[test]
    fn refill_restores_tokens_proportionally_to_elapsed_time() {
        let ctl = limited(1.0, 2.0);
        assert!(ctl.try_admit("metered", 0).is_ok());
        assert!(ctl.try_admit("metered", 0).is_err(), "burst spent");
        // 2 tokens/s: after 500ms the bucket holds exactly one token.
        assert!(ctl.try_admit("metered", 500_000).is_ok());
        // Refill is capped at capacity: a long idle stretch does not bank
        // more than one token.
        assert!(ctl.try_admit("metered", 100_000_000).is_ok());
        assert!(ctl.try_admit("metered", 100_000_000).is_err());
    }

    #[test]
    fn denied_admission_consumes_nothing() {
        let ctl = limited(1.0, 1.0);
        assert!(ctl.try_admit("metered", 0).is_ok());
        // Repeated refusals at the same instant report the same deficit:
        // the failed attempts are free.
        let first = ctl.try_admit("metered", 0).unwrap_err();
        let second = ctl.try_admit("metered", 0).unwrap_err();
        assert_eq!(first, second);
    }

    #[test]
    fn zero_refill_bucket_hints_the_cap_instead_of_panicking() {
        let ctl = limited(1.0, 0.0);
        assert!(ctl.try_admit("metered", 0).is_ok());
        assert_eq!(ctl.try_admit("metered", u64::MAX).unwrap_err(), MAX_RETRY_HINT);
    }

    #[test]
    fn default_bucket_applies_to_unnamed_tenants_only_as_fallback() {
        let ctl = AdmissionController::new(
            AdmissionConfig::default()
                .with_default_bucket(TokenBucketConfig { capacity: 1.0, refill_per_second: 0.0 })
                .with_tenant("vip", TokenBucketConfig { capacity: 2.0, refill_per_second: 0.0 }),
        );
        assert!(ctl.try_admit("vip", 0).is_ok());
        assert!(ctl.try_admit("vip", 0).is_ok(), "explicit bucket overrides default");
        assert!(ctl.try_admit("vip", 0).is_err());
        assert!(ctl.try_admit("guest", 0).is_ok());
        assert!(ctl.try_admit("guest", 0).is_err(), "fallback bucket limits unnamed tenants");
        // Buckets are independent: guest's exhaustion does not affect
        // another unnamed tenant.
        assert!(ctl.try_admit("other", 0).is_ok());
    }
}
