//! Per-tenant token-bucket admission control and shard depth probing.
//!
//! Every cluster submission passes through an `AdmissionController`
//! before it may occupy a queue slot. Each tenant draws from its own
//! token bucket denominated in **predicted seconds of backend time**
//! (the [`crate::cost`] model's quote for the job): `capacity` seconds
//! of burst, refilled continuously at `refill_per_second`. A submission
//! drains its predicted cost from the bucket, so a tenant sending three
//! expensive jobs exhausts the same budget as one sending three hundred
//! cheap ones — admission meters *work*, not job count. When the bucket
//! cannot cover the charge the job is shed with a retry hint computed
//! from the refill rate — the caller learns exactly how long until the
//! bucket holds enough seconds for this job.
//!
//! Refill arithmetic depends only on the [`super::Clock`] reading passed
//! in by the cluster, so tests drive admission with a
//! [`super::ManualClock`] and never sleep.

use crate::sync::LockExt;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

/// Cap on the retry hint so a zero-refill bucket still yields a finite,
/// `Duration`-safe backoff.
const MAX_RETRY_HINT: Duration = Duration::from_secs(3600);

/// One tenant's token bucket: `capacity` predicted seconds of burst,
/// refilled continuously at `refill_per_second`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TokenBucketConfig {
    /// Maximum predicted seconds the bucket holds (burst size). Buckets
    /// start full. A job predicted to cost more than the whole capacity
    /// is *not* unadmittable: its charge is clamped to `capacity`, so it
    /// is admitted exactly when the bucket is full and drains it
    /// completely.
    pub capacity: f64,
    /// Predicted seconds credited back per second of elapsed
    /// [`super::Clock`] time. A rate of zero means the bucket never
    /// refills: after the initial burst the tenant is shed with the
    /// maximum retry hint.
    pub refill_per_second: f64,
}

/// Cluster-wide admission policy: named per-tenant buckets plus an
/// optional default for everyone else.
#[derive(Debug, Clone, Default)]
pub struct AdmissionConfig {
    /// Bucket applied to tenants without an explicit entry in
    /// [`AdmissionConfig::tenants`]. `None` means unknown tenants are
    /// admitted without limit.
    pub default_bucket: Option<TokenBucketConfig>,
    /// Explicit per-tenant buckets, looked up by exact tenant name.
    pub tenants: Vec<(String, TokenBucketConfig)>,
}

impl AdmissionConfig {
    /// Adds (or replaces) an explicit bucket for `tenant`.
    pub fn with_tenant(mut self, tenant: &str, bucket: TokenBucketConfig) -> Self {
        self.tenants.retain(|(name, _)| name != tenant);
        self.tenants.push((tenant.to_string(), bucket));
        self
    }

    /// Sets the bucket applied to tenants without an explicit entry.
    pub fn with_default_bucket(mut self, bucket: TokenBucketConfig) -> Self {
        self.default_bucket = Some(bucket);
        self
    }

    fn bucket_for(&self, tenant: &str) -> Option<TokenBucketConfig> {
        self.tenants
            .iter()
            .find(|(name, _)| name == tenant)
            .map(|(_, bucket)| *bucket)
            .or(self.default_bucket)
    }
}

/// Queue-depth source for load shedding and migration decisions. The
/// default probe reads each shard's live `queue_depth` gauge; tests
/// inject a fixed-depth probe to exercise watermark and migration logic
/// without having to construct real backlogs.
pub trait DepthProbe: Send + Sync {
    /// Current queue depth of `shard`.
    fn queue_depth(&self, shard: usize) -> usize;

    /// Predicted seconds of backend work queued on `shard`, if the probe
    /// knows. `None` (the default) tells the cluster to fall back to the
    /// shard's live predicted-seconds backlog gauge; injected test probes
    /// may override to script a backlog.
    fn backlog_seconds(&self, shard: usize) -> Option<f64> {
        let _ = shard;
        None
    }
}

/// Mutable bucket state: predicted seconds available as of `last_micros`.
struct BucketState {
    tokens: f64,
    last_micros: u64,
}

/// Runtime admission state: one lazily created [`BucketState`] per tenant
/// that has a configured bucket.
pub(crate) struct AdmissionController {
    config: AdmissionConfig,
    buckets: Mutex<HashMap<String, BucketState>>,
}

impl AdmissionController {
    pub(crate) fn new(config: AdmissionConfig) -> Self {
        Self { config, buckets: Mutex::new(HashMap::new()) }
    }

    /// Charges `cost_seconds` (the job's predicted backend seconds,
    /// clamped to the bucket's capacity so an oversized job stays
    /// admittable) to `tenant`'s bucket at clock reading `now_micros`. On
    /// success the seconds are consumed; on refusal nothing is consumed
    /// and the error carries how long until the bucket refills enough for
    /// *this* job (capped at one hour for zero-refill buckets).
    pub(crate) fn try_admit(
        &self,
        tenant: &str,
        now_micros: u64,
        cost_seconds: f64,
    ) -> Result<(), Duration> {
        let Some(bucket) = self.config.bucket_for(tenant) else {
            return Ok(());
        };
        let charge = cost_seconds.max(0.0).min(bucket.capacity);
        let mut buckets = self.buckets.lock_unpoisoned();
        let state = buckets
            .entry(tenant.to_string())
            .or_insert(BucketState { tokens: bucket.capacity, last_micros: now_micros });
        // Refill for the elapsed interval; saturating_sub tolerates a clock
        // that reports the same instant to two racing submitters.
        let elapsed_secs = now_micros.saturating_sub(state.last_micros) as f64 / 1e6;
        state.tokens =
            (state.tokens + elapsed_secs * bucket.refill_per_second).min(bucket.capacity);
        state.last_micros = now_micros;
        if state.tokens >= charge {
            state.tokens -= charge;
            return Ok(());
        }
        let deficit = charge - state.tokens;
        let hint = if bucket.refill_per_second > 0.0 {
            Duration::from_secs_f64(
                (deficit / bucket.refill_per_second).min(MAX_RETRY_HINT.as_secs_f64()),
            )
        } else {
            MAX_RETRY_HINT
        };
        Err(hint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limited(capacity: f64, refill: f64) -> AdmissionController {
        AdmissionController::new(
            AdmissionConfig::default()
                .with_tenant("metered", TokenBucketConfig { capacity, refill_per_second: refill }),
        )
    }

    #[test]
    fn unknown_tenant_without_default_is_unlimited() {
        let ctl = limited(1.0, 1.0);
        for _ in 0..1000 {
            assert!(ctl.try_admit("anonymous", 0, 1.0).is_ok());
        }
    }

    #[test]
    fn bucket_starts_full_and_empties_burst_first() {
        let ctl = limited(3.0, 1.0);
        for _ in 0..3 {
            assert!(ctl.try_admit("metered", 0, 1.0).is_ok());
        }
        let hint = ctl.try_admit("metered", 0, 1.0).unwrap_err();
        // Empty bucket, 1 second/s refill: exactly one second to cover a
        // one-second job.
        assert_eq!(hint, Duration::from_secs(1));
    }

    #[test]
    fn refill_restores_tokens_proportionally_to_elapsed_time() {
        let ctl = limited(1.0, 2.0);
        assert!(ctl.try_admit("metered", 0, 1.0).is_ok());
        assert!(ctl.try_admit("metered", 0, 1.0).is_err(), "burst spent");
        // 2 seconds/s: after 500ms the bucket holds exactly one second.
        assert!(ctl.try_admit("metered", 500_000, 1.0).is_ok());
        // Refill is capped at capacity: a long idle stretch does not bank
        // more than one second.
        assert!(ctl.try_admit("metered", 100_000_000, 1.0).is_ok());
        assert!(ctl.try_admit("metered", 100_000_000, 1.0).is_err());
    }

    #[test]
    fn denied_admission_consumes_nothing() {
        let ctl = limited(1.0, 1.0);
        assert!(ctl.try_admit("metered", 0, 1.0).is_ok());
        // Repeated refusals at the same instant report the same deficit:
        // the failed attempts are free.
        let first = ctl.try_admit("metered", 0, 1.0).unwrap_err();
        let second = ctl.try_admit("metered", 0, 1.0).unwrap_err();
        assert_eq!(first, second);
    }

    #[test]
    fn zero_refill_bucket_hints_the_cap_instead_of_panicking() {
        let ctl = limited(1.0, 0.0);
        assert!(ctl.try_admit("metered", 0, 1.0).is_ok());
        assert_eq!(ctl.try_admit("metered", u64::MAX, 1.0).unwrap_err(), MAX_RETRY_HINT);
    }

    #[test]
    fn default_bucket_applies_to_unnamed_tenants_only_as_fallback() {
        let ctl = AdmissionController::new(
            AdmissionConfig::default()
                .with_default_bucket(TokenBucketConfig { capacity: 1.0, refill_per_second: 0.0 })
                .with_tenant("vip", TokenBucketConfig { capacity: 2.0, refill_per_second: 0.0 }),
        );
        assert!(ctl.try_admit("vip", 0, 1.0).is_ok());
        assert!(ctl.try_admit("vip", 0, 1.0).is_ok(), "explicit bucket overrides default");
        assert!(ctl.try_admit("vip", 0, 1.0).is_err());
        assert!(ctl.try_admit("guest", 0, 1.0).is_ok());
        assert!(ctl.try_admit("guest", 0, 1.0).is_err(), "fallback bucket limits unnamed tenants");
        // Buckets are independent: guest's exhaustion does not affect
        // another unnamed tenant.
        assert!(ctl.try_admit("other", 0, 1.0).is_ok());
    }

    #[test]
    fn buckets_meter_seconds_not_jobs() {
        // A tenant with a handful of expensive jobs and one with a flood
        // of cheap jobs are throttled to the same *work* budget: 2.0
        // predicted seconds of burst each.
        let ctl = AdmissionController::new(
            AdmissionConfig::default()
                .with_default_bucket(TokenBucketConfig { capacity: 2.0, refill_per_second: 0.5 }),
        );
        // Heavy tenant: 1.0s jobs. Two fit the burst; the third is shed
        // needing 1.0 more second at 0.5 s/s = a 2s hint.
        assert!(ctl.try_admit("heavy", 0, 1.0).is_ok());
        assert!(ctl.try_admit("heavy", 0, 1.0).is_ok());
        assert_eq!(ctl.try_admit("heavy", 0, 1.0).unwrap_err(), Duration::from_secs(2));
        // Bulk tenant: 1/64-second jobs (binary-exact, so repeated
        // draining accumulates no float error). Exactly 128 fit the same
        // burst — the job *count* differs 64×, the admitted work does not.
        let cheap = 1.0 / 64.0;
        for i in 0..128 {
            assert!(ctl.try_admit("bulk", 0, cheap).is_ok(), "cheap job {i} fits the burst");
        }
        let hint = ctl.try_admit("bulk", 0, cheap).unwrap_err();
        // Deficit 1/64 s at 0.5 s/s: a 31.25ms hint, proportional to the
        // job that was refused, not to some whole-token unit.
        assert_eq!(hint, Duration::from_secs_f64(cheap / 0.5), "hint {hint:?}");
    }

    #[test]
    fn oversized_jobs_clamp_to_capacity_instead_of_starving() {
        let ctl = limited(2.0, 1.0);
        // Predicted 10s against a 2s bucket: charge clamps to 2.0, so the
        // full bucket admits it and is drained to zero.
        assert!(ctl.try_admit("metered", 0, 10.0).is_ok());
        // The next oversized job waits for a *full* bucket (2s at 1 s/s),
        // not an impossible 10s deficit.
        assert_eq!(ctl.try_admit("metered", 0, 10.0).unwrap_err(), Duration::from_secs(2));
        assert!(ctl.try_admit("metered", 2_000_000, 10.0).is_ok());
    }
}
