//! Runtime telemetry: lock-free counters, a log-scale latency histogram,
//! and the [`RuntimeReport`] snapshot the service surfaces.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of power-of-two latency buckets: bucket `i` counts solves whose
/// wall time fell in `[2^i, 2^(i+1))` microseconds; the last bucket is
/// open-ended.
pub const LATENCY_BUCKETS: usize = 24;

/// Thread-safe runtime counters, updated by workers as jobs complete.
#[derive(Default)]
pub struct Metrics {
    jobs_submitted: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_cancelled: AtomicU64,
    jobs_coalesced: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    queue_depth: AtomicU64,
    queue_depth_peak: AtomicU64,
    backpressure_rejections: AtomicU64,
    backpressure_waits: AtomicU64,
    latency: [AtomicU64; LATENCY_BUCKETS],
    solve_seconds_total_micros: AtomicU64,
    compile_saved_nanos: AtomicU64,
    race_jobs: AtomicU64,
    per_backend: Mutex<Vec<(String, u64)>>,
    race_wins: Mutex<Vec<(String, u64)>>,
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` newly submitted jobs.
    pub fn on_submit(&self, n: u64) {
        self.jobs_submitted.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a job served from the result cache.
    pub fn on_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
        self.jobs_completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a job that missed the cache and was solved on `backend` in
    /// `seconds` of wall time.
    pub fn on_solved(&self, backend: &str, seconds: f64) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        self.jobs_completed.fetch_add(1, Ordering::Relaxed);
        let micros = (seconds * 1e6).max(0.0) as u64;
        self.solve_seconds_total_micros.fetch_add(micros, Ordering::Relaxed);
        let bucket = (64 - micros.max(1).leading_zeros() as usize - 1).min(LATENCY_BUCKETS - 1);
        self.latency[bucket].fetch_add(1, Ordering::Relaxed);
        let mut per = self.per_backend.lock().expect("metrics lock");
        match per.iter_mut().find(|(name, _)| name == backend) {
            Some((_, count)) => *count += 1,
            None => per.push((backend.to_string(), 1)),
        }
    }

    /// Records a job that could not be placed on any backend.
    pub fn on_failed(&self) {
        self.jobs_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a job entering the service queue, tracking the depth peak.
    pub fn on_enqueue(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_depth_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Records a job leaving the service queue (picked up or cancelled).
    pub fn on_dequeue(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records a `try_submit` rejected by a full session queue.
    pub fn on_backpressure_rejection(&self) {
        self.backpressure_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a blocking `submit` that had to wait for queue space.
    pub fn on_backpressure_wait(&self) {
        self.backpressure_waits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a cancellation that took effect (queued job removed, or a
    /// running job marked to report `Cancelled`).
    pub fn on_cancelled(&self) {
        self.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
    }

    /// Reconciles the ledger for a job whose solve finished but whose
    /// delivered outcome was converted to `Cancelled` (the cancel raced the
    /// run). The work happened — cache, backend, and latency counters stand
    /// — but the job already counts in `jobs_cancelled`, so leaving it in
    /// `jobs_completed` too would double-count it: one submitted job must
    /// land in exactly one of completed / failed / cancelled.
    pub fn on_completion_converted_to_cancel(&self) {
        self.jobs_completed.fetch_sub(1, Ordering::Relaxed);
    }

    /// The failure-side twin of
    /// [`Self::on_completion_converted_to_cancel`]: the job's run *failed*
    /// (routing error or panic, already counted by [`Self::on_failed`]) but
    /// the delivered outcome was converted to `Cancelled` — it must count
    /// cancelled, not failed.
    pub fn on_failure_converted_to_cancel(&self) {
        self.jobs_failed.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records a job that parked on another in-flight job with the same
    /// work identity (single-flight duplicate suppression) instead of
    /// solving or missing the cache itself. Counted at park time (tests use
    /// it as the "the duplicate has coalesced" signal) and netted back out
    /// by [`Self::on_coalesce_abandoned`] if the leader vanished and the
    /// park produced nothing.
    pub fn on_coalesced(&self) {
        self.jobs_coalesced.fetch_add(1, Ordering::Relaxed);
    }

    /// Reverses one [`Self::on_coalesced`]: the parked job's leader
    /// panicked without publishing, so the job retries (possibly solving
    /// itself) and its park suppressed no duplicate work after all.
    pub fn on_coalesce_abandoned(&self) {
        self.jobs_coalesced.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records a coalesced job served from its leader's published result
    /// (neither a cache hit nor a miss: the cache was never consulted).
    pub fn on_coalesced_served(&self) {
        self.jobs_completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records compile time the compile-once pipeline avoided: a job whose
    /// single compilation (taking `compile_seconds`) served `consumers`
    /// stages/backends would have compiled `consumers` times under the old
    /// per-stage scheme, so `(consumers - 1) × compile_seconds` was saved.
    pub fn on_compile_shared(&self, compile_seconds: f64, consumers: u64) {
        let saved = compile_seconds * consumers.saturating_sub(1) as f64;
        self.compile_saved_nanos.fetch_add((saved * 1e9).max(0.0) as u64, Ordering::Relaxed);
    }

    /// Records backend wall time burned by a race's *non-winning*
    /// participants (the winner's time arrives via [`Self::on_solved`]), so
    /// [`RuntimeReport::solve_seconds_total`] stays an honest sum of all
    /// backend work instead of under-reporting races k-fold.
    pub fn on_race_participant_time(&self, seconds: f64) {
        let micros = (seconds * 1e6).max(0.0) as u64;
        self.solve_seconds_total_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Records a completed portfolio race and its winning backend.
    pub fn on_race(&self, winner: &str) {
        self.race_jobs.fetch_add(1, Ordering::Relaxed);
        let mut wins = self.race_wins.lock().expect("metrics lock");
        match wins.iter_mut().find(|(name, _)| name == winner) {
            Some((_, count)) => *count += 1,
            None => wins.push((winner.to_string(), 1)),
        }
    }

    /// Snapshots every counter into an immutable report.
    pub fn report(&self) -> RuntimeReport {
        let mut per_backend = self.per_backend.lock().expect("metrics lock").clone();
        per_backend.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut race_wins = self.race_wins.lock().expect("metrics lock").clone();
        race_wins.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        RuntimeReport {
            jobs_submitted: self.jobs_submitted.load(Ordering::Relaxed),
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
            jobs_failed: self.jobs_failed.load(Ordering::Relaxed),
            jobs_cancelled: self.jobs_cancelled.load(Ordering::Relaxed),
            jobs_coalesced: self.jobs_coalesced.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_depth_peak: self.queue_depth_peak.load(Ordering::Relaxed),
            backpressure_rejections: self.backpressure_rejections.load(Ordering::Relaxed),
            backpressure_waits: self.backpressure_waits.load(Ordering::Relaxed),
            solve_seconds_total: self.solve_seconds_total_micros.load(Ordering::Relaxed) as f64
                / 1e6,
            compile_seconds_saved: self.compile_saved_nanos.load(Ordering::Relaxed) as f64 / 1e9,
            race_jobs: self.race_jobs.load(Ordering::Relaxed),
            latency_histogram: std::array::from_fn(|i| self.latency[i].load(Ordering::Relaxed)),
            per_backend,
            race_wins,
        }
    }
}

/// An immutable snapshot of the service's counters.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeReport {
    /// Jobs accepted into the queue.
    pub jobs_submitted: u64,
    /// Jobs answered (solved or served from cache).
    pub jobs_completed: u64,
    /// Jobs that failed routing (no eligible backend).
    pub jobs_failed: u64,
    /// Cancellations that took effect (queued jobs removed before a worker
    /// picked them up, plus running jobs marked to report `Cancelled`).
    /// A job cancelled mid-run counts here and **not** in `jobs_completed`,
    /// even though its solve finished and populated the cache.
    pub jobs_cancelled: u64,
    /// Jobs that coalesced onto a concurrent in-flight duplicate
    /// (single-flight): served from the leader's result without compiling,
    /// solving, or touching the hit/miss counters.
    pub jobs_coalesced: u64,
    /// Jobs served from the result cache.
    pub cache_hits: u64,
    /// Jobs that had to be solved.
    pub cache_misses: u64,
    /// Jobs sitting in the service queue right now.
    pub queue_depth: u64,
    /// Deepest the queue has ever been.
    pub queue_depth_peak: u64,
    /// `Session::try_submit` calls rejected with `QueueFull`.
    pub backpressure_rejections: u64,
    /// Blocking `Session::submit` calls that had to wait for queue space.
    pub backpressure_waits: u64,
    /// Total backend wall time spent solving (cache hits cost none; race
    /// jobs include every participant's time, not just the winner's).
    pub solve_seconds_total: f64,
    /// Compile time avoided by sharing one compilation per job across
    /// fingerprinting and every dispatched backend (races amortize it k
    /// ways). See [`Metrics::on_compile_shared`].
    pub compile_seconds_saved: f64,
    /// Portfolio-race jobs completed ([`crate::service::BackendChoice::Race`]).
    pub race_jobs: u64,
    /// Solve-latency histogram; bucket `i` counts solves in
    /// `[2^i, 2^(i+1))` µs.
    pub latency_histogram: [u64; LATENCY_BUCKETS],
    /// `(backend, jobs solved)` sorted by count descending.
    pub per_backend: Vec<(String, u64)>,
    /// `(backend, races won)` sorted by wins descending.
    pub race_wins: Vec<(String, u64)>,
}

impl RuntimeReport {
    /// Fraction of answered jobs served from cache, in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        let answered = self.cache_hits + self.cache_misses;
        if answered == 0 {
            0.0
        } else {
            self.cache_hits as f64 / answered as f64
        }
    }
}

impl std::fmt::Display for RuntimeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "runtime: {} submitted, {} completed, {} failed",
            self.jobs_submitted, self.jobs_completed, self.jobs_failed
        )?;
        writeln!(
            f,
            "cache:   {} hits / {} misses (hit rate {:.1}%), {} coalesced in flight",
            self.cache_hits,
            self.cache_misses,
            100.0 * self.cache_hit_rate(),
            self.jobs_coalesced
        )?;
        writeln!(
            f,
            "queue:   depth {} (peak {}), {} rejected, {} waited, {} cancelled",
            self.queue_depth,
            self.queue_depth_peak,
            self.backpressure_rejections,
            self.backpressure_waits,
            self.jobs_cancelled
        )?;
        writeln!(f, "solve:   {:.3}s total backend time", self.solve_seconds_total)?;
        writeln!(f, "compile: {:.6}s saved by compile-once sharing", self.compile_seconds_saved)?;
        if self.race_jobs > 0 {
            write!(f, "races:   {} jobs; wins:", self.race_jobs)?;
            for (name, wins) in &self.race_wins {
                write!(f, " {name} x{wins}")?;
            }
            writeln!(f)?;
        }
        for (name, count) in &self.per_backend {
            writeln!(f, "backend: {name:<28} {count} jobs")?;
        }
        let total: u64 = self.latency_histogram.iter().sum();
        if total > 0 {
            write!(f, "latency:")?;
            for (i, &count) in self.latency_histogram.iter().enumerate() {
                if count > 0 {
                    let lo = 1u64 << i;
                    let unit = if lo >= 1_000_000 {
                        format!("{}s", lo / 1_000_000)
                    } else if lo >= 1_000 {
                        format!("{}ms", lo / 1_000)
                    } else {
                        format!("{lo}µs")
                    };
                    write!(f, " [≥{unit}: {count}]")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.on_submit(3);
        m.on_cache_hit();
        m.on_solved("tabu", 0.001);
        m.on_solved("tabu", 0.002);
        let r = m.report();
        assert_eq!(r.jobs_submitted, 3);
        assert_eq!(r.jobs_completed, 3);
        assert_eq!(r.cache_hits, 1);
        assert_eq!(r.cache_misses, 2);
        assert_eq!(r.per_backend, vec![("tabu".to_string(), 2)]);
        assert!((r.cache_hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.latency_histogram.iter().sum::<u64>(), 2);
    }

    #[test]
    fn latency_buckets_are_log_scale() {
        let m = Metrics::new();
        m.on_solved("a", 3e-6); // ~3µs → bucket 1 ([2,4)µs)
        m.on_solved("a", 1.0); // 1s = 1e6µs → bucket 19 ([524288, ...)µs)
        let r = m.report();
        assert_eq!(r.latency_histogram[1], 1);
        assert_eq!(r.latency_histogram[19], 1);
    }

    #[test]
    fn queue_and_backpressure_counters_accumulate() {
        let m = Metrics::new();
        m.on_enqueue();
        m.on_enqueue();
        m.on_dequeue();
        m.on_backpressure_rejection();
        m.on_backpressure_wait();
        m.on_cancelled();
        let r = m.report();
        assert_eq!(r.queue_depth, 1);
        assert_eq!(r.queue_depth_peak, 2);
        assert_eq!(r.backpressure_rejections, 1);
        assert_eq!(r.backpressure_waits, 1);
        assert_eq!(r.jobs_cancelled, 1);
        assert!(r.to_string().contains("depth 1 (peak 2)"));
    }

    #[test]
    fn compile_and_race_counters_accumulate() {
        let m = Metrics::new();
        m.on_compile_shared(0.001, 5); // one compile served 5 consumers: 4ms saved
        m.on_compile_shared(0.002, 1); // sole consumer: nothing saved
        m.on_race("tabu");
        m.on_race("tabu");
        m.on_race("simulated-annealing");
        m.on_race_participant_time(0.25); // a losing participant's solve time
        let r = m.report();
        assert!((r.compile_seconds_saved - 0.004).abs() < 1e-6, "{}", r.compile_seconds_saved);
        assert!((r.solve_seconds_total - 0.25).abs() < 1e-6, "{}", r.solve_seconds_total);
        assert_eq!(r.race_jobs, 3);
        assert_eq!(r.race_wins[0], ("tabu".to_string(), 2));
        assert_eq!(r.race_wins[1], ("simulated-annealing".to_string(), 1));
        let text = r.to_string();
        assert!(text.contains("races:   3 jobs"), "{text}");
        assert!(text.contains("compile:"), "{text}");
    }

    #[test]
    fn coalesced_and_cancel_conversion_keep_the_ledger_consistent() {
        let m = Metrics::new();
        m.on_submit(3);
        // Job 1: solved normally. Job 2: coalesced onto job 1. Job 3:
        // solved, but its cancel raced the run and won.
        m.on_solved("tabu", 0.001);
        m.on_coalesced();
        m.on_coalesced_served();
        m.on_solved("tabu", 0.002);
        m.on_cancelled();
        m.on_completion_converted_to_cancel();
        let r = m.report();
        assert_eq!(r.jobs_submitted, 3);
        assert_eq!(r.jobs_completed, 2, "the cancelled job must not stay counted completed");
        assert_eq!(r.jobs_cancelled, 1);
        assert_eq!(r.jobs_coalesced, 1);
        assert_eq!(r.cache_misses, 2, "coalescing never consults the cache");
        assert_eq!(r.cache_hits, 0);
        assert_eq!(
            r.jobs_completed + r.jobs_failed + r.jobs_cancelled,
            r.jobs_submitted,
            "every job lands in exactly one ledger bucket"
        );
        assert!(r.to_string().contains("1 coalesced in flight"), "{r}");
    }

    #[test]
    fn display_is_human_readable() {
        let m = Metrics::new();
        m.on_submit(2);
        m.on_cache_hit();
        m.on_solved("exact", 0.5);
        let text = m.report().to_string();
        assert!(text.contains("hit rate 50.0%"), "{text}");
        assert!(text.contains("exact"), "{text}");
    }
}
