//! Runtime telemetry: lock-free counters, log-scale latency histograms
//! (backend solve time and caller-observed serve time), quantile
//! estimation, and the [`RuntimeReport`] snapshot the service surfaces —
//! renderable as Prometheus text exposition via
//! [`RuntimeReport::render_prometheus`].

use crate::sync::LockExt;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of power-of-two latency buckets: bucket `i` counts solves whose
/// wall time fell in `[2^i, 2^(i+1))` microseconds; the last bucket is
/// open-ended.
pub const LATENCY_BUCKETS: usize = 24;

fn latency_bucket(seconds: f64) -> (u64, usize) {
    let micros = (seconds * 1e6).max(0.0) as u64;
    let bucket = (64 - micros.max(1).leading_zeros() as usize - 1).min(LATENCY_BUCKETS - 1);
    (micros, bucket)
}

/// Estimates quantile `q` (in `[0, 1]`) from a log-scale latency histogram,
/// in **seconds**. Returns the conservative upper bound `2^(i+1)` µs of the
/// bucket holding the rank-`⌈q·n⌉` observation; the open-ended last bucket
/// reports its lower bound `2^i` µs (there is no finite upper bound).
/// `None` when the histogram is empty.
pub fn histogram_quantile(histogram: &[u64; LATENCY_BUCKETS], q: f64) -> Option<f64> {
    let total: u64 = histogram.iter().sum();
    if total == 0 {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * total as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for (i, &count) in histogram.iter().enumerate() {
        seen += count;
        if seen >= rank {
            let micros = if i == LATENCY_BUCKETS - 1 {
                1u64 << i // open-ended: lower bound is all we can say
            } else {
                1u64 << (i + 1)
            };
            return Some(micros as f64 / 1e6);
        }
    }
    unreachable!("rank <= total, so the scan always lands in a bucket")
}

/// Thread-safe runtime counters, updated by workers as jobs complete.
#[derive(Default)]
pub struct Metrics {
    jobs_submitted: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_cancelled: AtomicU64,
    jobs_coalesced: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    queue_depth: AtomicU64,
    queue_depth_peak: AtomicU64,
    backpressure_rejections: AtomicU64,
    backpressure_waits: AtomicU64,
    latency: [AtomicU64; LATENCY_BUCKETS],
    served_latency: [AtomicU64; LATENCY_BUCKETS],
    solve_seconds_total_micros: AtomicU64,
    served_seconds_total_micros: AtomicU64,
    compile_saved_nanos: AtomicU64,
    race_jobs: AtomicU64,
    jobs_admitted: AtomicU64,
    jobs_shed: AtomicU64,
    migrations: AtomicU64,
    jobs_retried: AtomicU64,
    retries_exhausted: AtomicU64,
    deadlines_exceeded: AtomicU64,
    breaker_opened: AtomicU64,
    breaker_half_opened: AtomicU64,
    breaker_closed: AtomicU64,
    failovers: AtomicU64,
    jobs_recovered: AtomicU64,
    snapshot_saved: AtomicU64,
    snapshot_loaded: AtomicU64,
    per_backend: Mutex<BTreeMap<String, u64>>,
    race_wins: Mutex<BTreeMap<String, u64>>,
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` newly submitted jobs.
    pub fn on_submit(&self, n: u64) {
        self.jobs_submitted.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a job served from the result cache.
    pub fn on_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
        self.jobs_completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a job that missed the cache and was solved on `backend` in
    /// `seconds` of wall time.
    pub fn on_solved(&self, backend: &str, seconds: f64) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        self.jobs_completed.fetch_add(1, Ordering::Relaxed);
        let (micros, bucket) = latency_bucket(seconds);
        self.solve_seconds_total_micros.fetch_add(micros, Ordering::Relaxed);
        self.latency[bucket].fetch_add(1, Ordering::Relaxed);
        *self.per_backend.lock_unpoisoned().entry(backend.to_string()).or_insert(0) += 1;
    }

    /// Records the end-to-end latency a *caller* observed for one delivered
    /// job: enqueue → result, regardless of how it resolved (solved, cache
    /// hit, or coalesced). The solve histogram only sees cache misses, so
    /// its quantiles describe backend cost; this series describes what
    /// callers actually wait.
    pub fn on_served(&self, seconds: f64) {
        let (micros, bucket) = latency_bucket(seconds);
        self.served_seconds_total_micros.fetch_add(micros, Ordering::Relaxed);
        self.served_latency[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a job that could not be placed on any backend.
    pub fn on_failed(&self) {
        self.jobs_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a job entering the service queue, tracking the depth peak.
    pub fn on_enqueue(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_depth_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Records a job leaving the service queue (picked up or cancelled).
    pub fn on_dequeue(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records a `try_submit` rejected by a full session queue.
    pub fn on_backpressure_rejection(&self) {
        self.backpressure_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a blocking `submit` that had to wait for queue space.
    pub fn on_backpressure_wait(&self) {
        self.backpressure_waits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a cancellation that took effect (queued job removed, or a
    /// running job marked to report `Cancelled`).
    pub fn on_cancelled(&self) {
        self.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
    }

    /// Reconciles the ledger for a job whose solve finished but whose
    /// delivered outcome was converted to `Cancelled` (the cancel raced the
    /// run). The work happened — cache, backend, and latency counters stand
    /// — but the job already counts in `jobs_cancelled`, so leaving it in
    /// `jobs_completed` too would double-count it: one submitted job must
    /// land in exactly one of completed / failed / cancelled.
    pub fn on_completion_converted_to_cancel(&self) {
        self.jobs_completed.fetch_sub(1, Ordering::Relaxed);
    }

    /// The failure-side twin of
    /// [`Self::on_completion_converted_to_cancel`]: the job's run *failed*
    /// (routing error or panic, already counted by [`Self::on_failed`]) but
    /// the delivered outcome was converted to `Cancelled` — it must count
    /// cancelled, not failed.
    pub fn on_failure_converted_to_cancel(&self) {
        self.jobs_failed.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records a job that parked on another in-flight job with the same
    /// work identity (single-flight duplicate suppression) instead of
    /// solving or missing the cache itself. Counted at park time (tests use
    /// it as the "the duplicate has coalesced" signal) and netted back out
    /// by [`Self::on_coalesce_abandoned`] if the leader vanished and the
    /// park produced nothing.
    pub fn on_coalesced(&self) {
        self.jobs_coalesced.fetch_add(1, Ordering::Relaxed);
    }

    /// Reverses one [`Self::on_coalesced`]: the parked job's leader
    /// panicked without publishing, so the job retries (possibly solving
    /// itself) and its park suppressed no duplicate work after all.
    pub fn on_coalesce_abandoned(&self) {
        self.jobs_coalesced.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records a coalesced job served from its leader's published result
    /// (neither a cache hit nor a miss: the cache was never consulted).
    pub fn on_coalesced_served(&self) {
        self.jobs_completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records compile time the compile-once pipeline avoided: a job whose
    /// single compilation (taking `compile_seconds`) served `consumers`
    /// stages/backends would have compiled `consumers` times under the old
    /// per-stage scheme, so `(consumers - 1) × compile_seconds` was saved.
    pub fn on_compile_shared(&self, compile_seconds: f64, consumers: u64) {
        let saved = compile_seconds * consumers.saturating_sub(1) as f64;
        self.compile_saved_nanos.fetch_add((saved * 1e9).max(0.0) as u64, Ordering::Relaxed);
    }

    /// Records backend wall time burned by a race's *non-winning*
    /// participants (the winner's time arrives via [`Self::on_solved`]), so
    /// [`RuntimeReport::solve_seconds_total`] stays an honest sum of all
    /// backend work instead of under-reporting races k-fold.
    pub fn on_race_participant_time(&self, seconds: f64) {
        let micros = (seconds * 1e6).max(0.0) as u64;
        self.solve_seconds_total_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Records a completed portfolio race and its winning backend.
    pub fn on_race(&self, winner: &str) {
        self.race_jobs.fetch_add(1, Ordering::Relaxed);
        *self.race_wins.lock_unpoisoned().entry(winner.to_string()).or_insert(0) += 1;
    }

    /// Records a job that passed cluster admission control (token bucket
    /// and load-shedding watermark) and was enqueued on this shard.
    pub fn on_admitted(&self) {
        self.jobs_admitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a job shed before enqueue — its tenant's token bucket was
    /// empty or this shard's queue depth crossed the shedding watermark.
    /// Shed jobs never enter the queue, so they appear in no other ledger
    /// bucket.
    pub fn on_shed(&self) {
        self.jobs_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a queued job migrated between shards to rebalance queue
    /// depths. Counted on the **donor** shard (the job left its queue).
    pub fn on_migrated(&self) {
        self.migrations.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one retry attempt: a job whose try failed retryably (panic
    /// or injected error) and was put back through processing under the
    /// service's [`crate::fault::RetryPolicy`].
    pub fn on_retried(&self) {
        self.jobs_retried.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a job that failed retryably *after* exhausting its retry
    /// budget — the failure the policy could not absorb.
    pub fn on_retries_exhausted(&self) {
        self.retries_exhausted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a job that failed with
    /// [`crate::service::JobError::DeadlineExceeded`].
    pub fn on_deadline_exceeded(&self) {
        self.deadlines_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a backend circuit breaker tripping open (consecutive
    /// failures reached the threshold, or a half-open probe failed).
    pub fn on_breaker_opened(&self) {
        self.breaker_opened.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an open breaker moving to half-open after its cooldown:
    /// probe traffic is admitted again.
    pub fn on_breaker_half_opened(&self) {
        self.breaker_half_opened.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a tripped breaker re-closing on a success.
    pub fn on_breaker_closed(&self) {
        self.breaker_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a job routed (or drained) away from an unhealthy shard to
    /// this shard. Counted on the **recipient** shard.
    pub fn on_failover(&self) {
        self.failovers.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a job replayed from a durable journal during crash recovery.
    pub fn on_recovered(&self) {
        self.jobs_recovered.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `entries` cache entries exported into a solution snapshot.
    pub fn on_snapshot_saved(&self, entries: u64) {
        self.snapshot_saved.fetch_add(entries, Ordering::Relaxed);
    }

    /// Records `entries` cache entries restored from a solution snapshot.
    pub fn on_snapshot_loaded(&self, entries: u64) {
        self.snapshot_loaded.fetch_add(entries, Ordering::Relaxed);
    }

    /// Current queue depth, as tracked by [`Self::on_enqueue`] /
    /// [`Self::on_dequeue`]. The cluster's default depth probe reads this
    /// for watermark and migration decisions.
    pub(crate) fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Snapshots every counter into an immutable report. Map-like fields
    /// come out sorted by backend name, so equal states always produce
    /// equal reports. The portfolio-telemetry and trace fields are empty
    /// here — [`crate::service::SolverService::report`] fills them in.
    pub fn report(&self) -> RuntimeReport {
        let per_backend: Vec<(String, u64)> = self
            .per_backend
            .lock()
            .expect("metrics lock")
            .iter()
            .map(|(name, &count)| (name.clone(), count))
            .collect();
        let race_wins: Vec<(String, u64)> = self
            .race_wins
            .lock()
            .expect("metrics lock")
            .iter()
            .map(|(name, &count)| (name.clone(), count))
            .collect();
        RuntimeReport {
            jobs_submitted: self.jobs_submitted.load(Ordering::Relaxed),
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
            jobs_failed: self.jobs_failed.load(Ordering::Relaxed),
            jobs_cancelled: self.jobs_cancelled.load(Ordering::Relaxed),
            jobs_coalesced: self.jobs_coalesced.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_depth_peak: self.queue_depth_peak.load(Ordering::Relaxed),
            backpressure_rejections: self.backpressure_rejections.load(Ordering::Relaxed),
            backpressure_waits: self.backpressure_waits.load(Ordering::Relaxed),
            solve_seconds_total: self.solve_seconds_total_micros.load(Ordering::Relaxed) as f64
                / 1e6,
            served_seconds_total: self.served_seconds_total_micros.load(Ordering::Relaxed) as f64
                / 1e6,
            compile_seconds_saved: self.compile_saved_nanos.load(Ordering::Relaxed) as f64 / 1e9,
            race_jobs: self.race_jobs.load(Ordering::Relaxed),
            jobs_admitted: self.jobs_admitted.load(Ordering::Relaxed),
            jobs_shed: self.jobs_shed.load(Ordering::Relaxed),
            migrations: self.migrations.load(Ordering::Relaxed),
            jobs_retried: self.jobs_retried.load(Ordering::Relaxed),
            retries_exhausted: self.retries_exhausted.load(Ordering::Relaxed),
            deadlines_exceeded: self.deadlines_exceeded.load(Ordering::Relaxed),
            breaker_opened: self.breaker_opened.load(Ordering::Relaxed),
            breaker_half_opened: self.breaker_half_opened.load(Ordering::Relaxed),
            breaker_closed: self.breaker_closed.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            jobs_recovered: self.jobs_recovered.load(Ordering::Relaxed),
            snapshot_saved: self.snapshot_saved.load(Ordering::Relaxed),
            snapshot_loaded: self.snapshot_loaded.load(Ordering::Relaxed),
            latency_histogram: std::array::from_fn(|i| self.latency[i].load(Ordering::Relaxed)),
            served_latency_histogram: std::array::from_fn(|i| {
                self.served_latency[i].load(Ordering::Relaxed)
            }),
            per_backend,
            race_wins,
            backend_telemetry: Vec::new(),
            traces_recorded: 0,
            traces_dropped: 0,
            queue_backlog_seconds: 0.0,
            shard: None,
            shard_queue_depths: Vec::new(),
        }
    }
}

/// Per-backend portfolio telemetry as exposed in [`RuntimeReport`]: the
/// EWMA latency/quality estimates the adaptive router actually routes on.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendTelemetry {
    /// Backend name.
    pub backend: String,
    /// Solve observations folded into the EWMAs.
    pub observations: u64,
    /// Exponentially-weighted moving average solve latency, seconds.
    pub ewma_latency_seconds: f64,
    /// Exponentially-weighted moving average solution quality (lower is
    /// better; infeasible results are penalized).
    pub ewma_quality: f64,
    /// Races this backend was entered into.
    pub race_entries: u64,
    /// Races this backend won.
    pub race_wins: u64,
    /// EWMA of the cost model's predicted latency for this backend's
    /// recent jobs, seconds. Zero until the first calibrated observation.
    pub predicted_seconds: f64,
    /// EWMA of the symmetric prediction error factor
    /// (`max(predicted/actual, actual/predicted)`, so 1.0 is a perfect
    /// prediction and 2.0 is off by 2× in either direction). Zero until
    /// the first calibrated observation.
    pub estimation_error_factor: f64,
}

/// An immutable snapshot of the service's counters.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeReport {
    /// Jobs accepted into the queue.
    pub jobs_submitted: u64,
    /// Jobs answered (solved or served from cache).
    pub jobs_completed: u64,
    /// Jobs that failed routing (no eligible backend).
    pub jobs_failed: u64,
    /// Cancellations that took effect (queued jobs removed before a worker
    /// picked them up, plus running jobs marked to report `Cancelled`).
    /// A job cancelled mid-run counts here and **not** in `jobs_completed`,
    /// even though its solve finished and populated the cache.
    pub jobs_cancelled: u64,
    /// Jobs that coalesced onto a concurrent in-flight duplicate
    /// (single-flight): served from the leader's result without compiling,
    /// solving, or touching the hit/miss counters.
    pub jobs_coalesced: u64,
    /// Jobs served from the result cache.
    pub cache_hits: u64,
    /// Jobs that had to be solved.
    pub cache_misses: u64,
    /// Jobs sitting in the service queue right now.
    pub queue_depth: u64,
    /// Deepest the queue has ever been.
    pub queue_depth_peak: u64,
    /// `Session::try_submit` calls rejected with `QueueFull`.
    pub backpressure_rejections: u64,
    /// Blocking `Session::submit` calls that had to wait for queue space.
    pub backpressure_waits: u64,
    /// Total backend wall time spent solving (cache hits cost none; race
    /// jobs include every participant's time, not just the winner's).
    pub solve_seconds_total: f64,
    /// Total caller-observed enqueue→result time across delivered jobs
    /// (cache hits and coalesced followers included).
    pub served_seconds_total: f64,
    /// Compile time avoided by sharing one compilation per job across
    /// fingerprinting and every dispatched backend (races amortize it k
    /// ways). See [`Metrics::on_compile_shared`].
    pub compile_seconds_saved: f64,
    /// Portfolio-race jobs completed ([`crate::service::BackendChoice::Race`]).
    pub race_jobs: u64,
    /// Jobs that passed cluster admission control and were enqueued here.
    /// Zero outside a [`crate::cluster::ClusterService`].
    pub jobs_admitted: u64,
    /// Jobs shed before enqueue (empty tenant token bucket or queue depth
    /// over the shedding watermark). Shed jobs were never submitted, so
    /// they are in no other ledger bucket.
    pub jobs_shed: u64,
    /// Queued jobs migrated away from this shard to rebalance queue depths
    /// (counted on the donor).
    pub migrations: u64,
    /// Retry attempts: tries re-run after a retryable failure (panic or
    /// injected error) under the service's [`crate::fault::RetryPolicy`].
    pub jobs_retried: u64,
    /// Jobs that still failed retryably after exhausting the retry budget.
    pub retries_exhausted: u64,
    /// Jobs that failed with
    /// [`crate::service::JobError::DeadlineExceeded`].
    pub deadlines_exceeded: u64,
    /// Backend circuit breakers tripped open (threshold reached or a
    /// half-open probe failed). Breaker state and the retry counters above
    /// are the failure-cost telemetry the ROADMAP's cost-aware routing
    /// (item 4) will fold into its per-backend cost model.
    pub breaker_opened: u64,
    /// Open breakers moved to half-open after their cooldown elapsed.
    pub breaker_half_opened: u64,
    /// Tripped breakers re-closed by a success.
    pub breaker_closed: u64,
    /// Jobs routed or drained to this shard because their home shard was
    /// unhealthy (counted on the recipient).
    pub failovers: u64,
    /// Jobs replayed from a durable journal during crash recovery.
    pub jobs_recovered: u64,
    /// Cache entries exported into solution snapshots.
    pub snapshot_saved: u64,
    /// Cache entries restored from solution snapshots.
    pub snapshot_loaded: u64,
    /// Solve-latency histogram; bucket `i` counts solves in
    /// `[2^i, 2^(i+1))` µs. Cache hits and coalesced followers are *not* in
    /// here — see [`Self::served_latency_histogram`].
    pub latency_histogram: [u64; LATENCY_BUCKETS],
    /// Caller-observed serve-latency histogram (same bucketing): one entry
    /// per delivered job — solved, cache hit, or coalesced — measuring
    /// enqueue→result, so its p99 reflects what callers actually wait.
    pub served_latency_histogram: [u64; LATENCY_BUCKETS],
    /// `(backend, jobs solved)` sorted by backend name.
    pub per_backend: Vec<(String, u64)>,
    /// `(backend, races won)` sorted by backend name.
    pub race_wins: Vec<(String, u64)>,
    /// Per-backend EWMA latency/quality telemetry from the portfolio
    /// router, sorted by backend name; backends with zero observations are
    /// omitted. Empty on bare [`Metrics::report`] snapshots — populated by
    /// [`crate::service::SolverService::report`].
    pub backend_telemetry: Vec<BackendTelemetry>,
    /// Job traces recorded over the service's lifetime (retained or
    /// dropped). Zero on bare [`Metrics::report`] snapshots.
    pub traces_recorded: u64,
    /// Job traces lost to ring wraparound or slot contention.
    pub traces_dropped: u64,
    /// Predicted seconds of backend work sitting in the service queue
    /// right now — the sum of every queued job's cost-model prediction.
    /// This, not `queue_depth`, is what watermark shedding and
    /// `retry_after_hint` reason about: ten queued 26-variable exact jobs
    /// are a deeper backlog than a hundred 4-variable anneals. Zero on
    /// bare [`Metrics::report`] snapshots — populated by
    /// [`crate::service::SolverService::report`]; merged reports sum it.
    pub queue_backlog_seconds: f64,
    /// The shard this report describes: `Some(id)` for a shard inside a
    /// [`crate::cluster::ClusterService`], `None` for a standalone service
    /// or a merged cluster report.
    pub shard: Option<u64>,
    /// Per-shard `(shard id, current queue depth)` breakdown, sorted by
    /// shard id. Empty except on reports produced by
    /// [`RuntimeReport::merge`] over shard-tagged inputs.
    pub shard_queue_depths: Vec<(u64, u64)>,
}

impl RuntimeReport {
    /// Merges per-shard reports into one aggregate: counters and seconds
    /// totals sum, histograms sum **bucket-wise** (so the quantile readers
    /// keep working on the merged report), per-backend tables merge by
    /// backend name (staying name-sorted), and EWMA telemetry merges as an
    /// observation-weighted average. `queue_depth` sums; `queue_depth_peak`
    /// also sums, which makes it an upper bound — the shards need not have
    /// peaked simultaneously. The merged report carries `shard: None` and a
    /// per-shard `(shard, queue_depth)` breakdown collected from every
    /// input that was shard-tagged (nested breakdowns from already-merged
    /// inputs are carried through).
    pub fn merge<'a>(reports: impl IntoIterator<Item = &'a RuntimeReport>) -> RuntimeReport {
        let mut merged = RuntimeReport {
            jobs_submitted: 0,
            jobs_completed: 0,
            jobs_failed: 0,
            jobs_cancelled: 0,
            jobs_coalesced: 0,
            cache_hits: 0,
            cache_misses: 0,
            queue_depth: 0,
            queue_depth_peak: 0,
            backpressure_rejections: 0,
            backpressure_waits: 0,
            solve_seconds_total: 0.0,
            served_seconds_total: 0.0,
            compile_seconds_saved: 0.0,
            race_jobs: 0,
            jobs_admitted: 0,
            jobs_shed: 0,
            migrations: 0,
            jobs_retried: 0,
            retries_exhausted: 0,
            deadlines_exceeded: 0,
            breaker_opened: 0,
            breaker_half_opened: 0,
            breaker_closed: 0,
            failovers: 0,
            jobs_recovered: 0,
            snapshot_saved: 0,
            snapshot_loaded: 0,
            latency_histogram: [0; LATENCY_BUCKETS],
            served_latency_histogram: [0; LATENCY_BUCKETS],
            per_backend: Vec::new(),
            race_wins: Vec::new(),
            backend_telemetry: Vec::new(),
            traces_recorded: 0,
            traces_dropped: 0,
            queue_backlog_seconds: 0.0,
            shard: None,
            shard_queue_depths: Vec::new(),
        };
        let mut per_backend: BTreeMap<String, u64> = BTreeMap::new();
        let mut race_wins: BTreeMap<String, u64> = BTreeMap::new();
        let mut telemetry: BTreeMap<String, BackendTelemetry> = BTreeMap::new();
        for r in reports {
            merged.jobs_submitted += r.jobs_submitted;
            merged.jobs_completed += r.jobs_completed;
            merged.jobs_failed += r.jobs_failed;
            merged.jobs_cancelled += r.jobs_cancelled;
            merged.jobs_coalesced += r.jobs_coalesced;
            merged.cache_hits += r.cache_hits;
            merged.cache_misses += r.cache_misses;
            merged.queue_depth += r.queue_depth;
            merged.queue_depth_peak += r.queue_depth_peak;
            merged.backpressure_rejections += r.backpressure_rejections;
            merged.backpressure_waits += r.backpressure_waits;
            merged.solve_seconds_total += r.solve_seconds_total;
            merged.served_seconds_total += r.served_seconds_total;
            merged.compile_seconds_saved += r.compile_seconds_saved;
            merged.race_jobs += r.race_jobs;
            merged.jobs_admitted += r.jobs_admitted;
            merged.jobs_shed += r.jobs_shed;
            merged.migrations += r.migrations;
            merged.jobs_retried += r.jobs_retried;
            merged.retries_exhausted += r.retries_exhausted;
            merged.deadlines_exceeded += r.deadlines_exceeded;
            merged.breaker_opened += r.breaker_opened;
            merged.breaker_half_opened += r.breaker_half_opened;
            merged.breaker_closed += r.breaker_closed;
            merged.failovers += r.failovers;
            merged.jobs_recovered += r.jobs_recovered;
            merged.snapshot_saved += r.snapshot_saved;
            merged.snapshot_loaded += r.snapshot_loaded;
            merged.traces_recorded += r.traces_recorded;
            merged.traces_dropped += r.traces_dropped;
            merged.queue_backlog_seconds += r.queue_backlog_seconds;
            for i in 0..LATENCY_BUCKETS {
                merged.latency_histogram[i] += r.latency_histogram[i];
                merged.served_latency_histogram[i] += r.served_latency_histogram[i];
            }
            for (name, count) in &r.per_backend {
                *per_backend.entry(name.clone()).or_insert(0) += count;
            }
            for (name, count) in &r.race_wins {
                *race_wins.entry(name.clone()).or_insert(0) += count;
            }
            for t in &r.backend_telemetry {
                telemetry
                    .entry(t.backend.clone())
                    .and_modify(|acc| {
                        let (a, b) = (acc.observations as f64, t.observations as f64);
                        if a + b > 0.0 {
                            acc.ewma_latency_seconds = (acc.ewma_latency_seconds * a
                                + t.ewma_latency_seconds * b)
                                / (a + b);
                            acc.ewma_quality =
                                (acc.ewma_quality * a + t.ewma_quality * b) / (a + b);
                            acc.predicted_seconds =
                                (acc.predicted_seconds * a + t.predicted_seconds * b) / (a + b);
                            acc.estimation_error_factor = (acc.estimation_error_factor * a
                                + t.estimation_error_factor * b)
                                / (a + b);
                        }
                        acc.observations += t.observations;
                        acc.race_entries += t.race_entries;
                        acc.race_wins += t.race_wins;
                    })
                    .or_insert_with(|| t.clone());
            }
            if let Some(shard) = r.shard {
                merged.shard_queue_depths.push((shard, r.queue_depth));
            }
            merged.shard_queue_depths.extend(r.shard_queue_depths.iter().copied());
        }
        merged.per_backend = per_backend.into_iter().collect();
        merged.race_wins = race_wins.into_iter().collect();
        merged.backend_telemetry = telemetry.into_values().collect();
        merged.shard_queue_depths.sort_unstable();
        merged
    }

    /// Fraction of answered jobs served from cache, in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        let answered = self.cache_hits + self.cache_misses;
        if answered == 0 {
            0.0
        } else {
            self.cache_hits as f64 / answered as f64
        }
    }

    /// Estimated solve-latency quantile in seconds (e.g. `0.5` → p50,
    /// `0.99` → p99) from [`Self::latency_histogram`]; `None` when nothing
    /// has been solved. See [`histogram_quantile`] for bound semantics.
    pub fn latency_quantile(&self, q: f64) -> Option<f64> {
        histogram_quantile(&self.latency_histogram, q)
    }

    /// Estimated caller-observed serve-latency quantile in seconds from
    /// [`Self::served_latency_histogram`]; `None` when nothing has been
    /// delivered.
    pub fn served_latency_quantile(&self, q: f64) -> Option<f64> {
        histogram_quantile(&self.served_latency_histogram, q)
    }

    /// Renders the report in Prometheus text exposition format (version
    /// 0.0.4): every counter as a `qdm_`-prefixed series with `# HELP` /
    /// `# TYPE` headers, both latency histograms as native cumulative
    /// `_bucket{le="..."}` series in seconds, per-backend job/win counters
    /// as labelled series, and the portfolio's per-backend EWMA
    /// latency/quality gauges.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        let mut counter = |name: &str, help: &str, value: f64| {
            out.push_str(&format!(
                "# HELP qdm_{name} {help}\n# TYPE qdm_{name} counter\nqdm_{name} {value}\n"
            ));
        };
        counter(
            "jobs_submitted_total",
            "Jobs accepted into the queue.",
            self.jobs_submitted as f64,
        );
        counter(
            "jobs_completed_total",
            "Jobs answered (solved or served from cache).",
            self.jobs_completed as f64,
        );
        counter(
            "jobs_failed_total",
            "Jobs that failed routing (no eligible backend).",
            self.jobs_failed as f64,
        );
        counter(
            "jobs_cancelled_total",
            "Cancellations that took effect.",
            self.jobs_cancelled as f64,
        );
        counter(
            "jobs_coalesced_total",
            "Jobs coalesced onto a concurrent in-flight duplicate.",
            self.jobs_coalesced as f64,
        );
        counter("cache_hits_total", "Jobs served from the result cache.", self.cache_hits as f64);
        counter("cache_misses_total", "Jobs that had to be solved.", self.cache_misses as f64);
        counter(
            "backpressure_rejections_total",
            "try_submit calls rejected by a full session queue.",
            self.backpressure_rejections as f64,
        );
        counter(
            "backpressure_waits_total",
            "Blocking submit calls that waited for queue space.",
            self.backpressure_waits as f64,
        );
        counter("race_jobs_total", "Portfolio-race jobs completed.", self.race_jobs as f64);
        counter(
            "jobs_retried_total",
            "Retry attempts after retryable failures (panics, injected errors).",
            self.jobs_retried as f64,
        );
        counter(
            "retries_exhausted_total",
            "Jobs that failed retryably after exhausting the retry budget.",
            self.retries_exhausted as f64,
        );
        counter(
            "deadlines_exceeded_total",
            "Jobs that missed their per-job deadline.",
            self.deadlines_exceeded as f64,
        );
        counter(
            "breaker_opened_total",
            "Backend circuit breakers tripped open.",
            self.breaker_opened as f64,
        );
        counter(
            "breaker_half_opened_total",
            "Open breakers moved to half-open after cooldown.",
            self.breaker_half_opened as f64,
        );
        counter(
            "breaker_closed_total",
            "Tripped breakers re-closed by a success.",
            self.breaker_closed as f64,
        );
        counter(
            "compile_seconds_saved_total",
            "Compile time avoided by compile-once sharing.",
            self.compile_seconds_saved,
        );
        counter(
            "traces_recorded_total",
            "Job traces recorded (retained or dropped).",
            self.traces_recorded as f64,
        );
        counter(
            "traces_dropped_total",
            "Job traces lost to ring wraparound or slot contention.",
            self.traces_dropped as f64,
        );
        let mut gauge = |name: &str, help: &str, value: f64| {
            out.push_str(&format!(
                "# HELP qdm_{name} {help}\n# TYPE qdm_{name} gauge\nqdm_{name} {value}\n"
            ));
        };
        gauge(
            "queue_depth",
            "Jobs sitting in the service queue right now.",
            self.queue_depth as f64,
        );
        gauge("queue_depth_peak", "Deepest the queue has ever been.", self.queue_depth_peak as f64);
        gauge(
            "queue_backlog_seconds",
            "Predicted seconds of backend work sitting in the queue right now.",
            self.queue_backlog_seconds,
        );

        // Cluster admission/shedding counters carry the shard id as a label
        // when this report describes one shard of a cluster.
        let shard_label = self.shard.map(|s| format!("{{shard=\"{s}\"}}")).unwrap_or_default();
        for (name, help, value) in [
            (
                "jobs_admitted_total",
                "Jobs that passed cluster admission control and were enqueued.",
                self.jobs_admitted as f64,
            ),
            (
                "jobs_shed_total",
                "Jobs shed before enqueue (token bucket empty or queue over watermark).",
                self.jobs_shed as f64,
            ),
            (
                "migrations_total",
                "Queued jobs migrated between shards to rebalance depth.",
                self.migrations as f64,
            ),
            (
                "failovers_total",
                "Jobs routed or drained here because their home shard was unhealthy.",
                self.failovers as f64,
            ),
            (
                "jobs_recovered_total",
                "Jobs replayed from a durable journal during crash recovery.",
                self.jobs_recovered as f64,
            ),
            (
                "snapshot_saved_entries_total",
                "Cache entries exported into solution snapshots.",
                self.snapshot_saved as f64,
            ),
            (
                "snapshot_loaded_entries_total",
                "Cache entries restored from solution snapshots.",
                self.snapshot_loaded as f64,
            ),
        ] {
            out.push_str(&format!(
                "# HELP qdm_{name} {help}\n# TYPE qdm_{name} counter\nqdm_{name}{shard_label} {value}\n"
            ));
        }
        if !self.shard_queue_depths.is_empty() {
            out.push_str("# HELP qdm_shard_queue_depth Jobs queued on the shard right now.\n");
            out.push_str("# TYPE qdm_shard_queue_depth gauge\n");
            for (shard, depth) in &self.shard_queue_depths {
                out.push_str(&format!("qdm_shard_queue_depth{{shard=\"{shard}\"}} {depth}\n"));
            }
        }

        render_prom_histogram(
            &mut out,
            "solve_latency_seconds",
            "Backend solve wall time per cache-missing job.",
            &self.latency_histogram,
            self.solve_seconds_total,
        );
        render_prom_histogram(
            &mut out,
            "served_latency_seconds",
            "Caller-observed enqueue-to-result time per delivered job.",
            &self.served_latency_histogram,
            self.served_seconds_total,
        );

        out.push_str("# HELP qdm_backend_jobs_total Jobs solved per backend.\n");
        out.push_str("# TYPE qdm_backend_jobs_total counter\n");
        for (name, count) in &self.per_backend {
            out.push_str(&format!("qdm_backend_jobs_total{{backend=\"{name}\"}} {count}\n"));
        }
        out.push_str("# HELP qdm_race_wins_total Races won per backend.\n");
        out.push_str("# TYPE qdm_race_wins_total counter\n");
        for (name, count) in &self.race_wins {
            out.push_str(&format!("qdm_race_wins_total{{backend=\"{name}\"}} {count}\n"));
        }

        let telemetry = [
            (
                "backend_observations_total",
                "counter",
                "Solve observations folded into the backend's EWMAs.",
            ),
            (
                "backend_ewma_latency_seconds",
                "gauge",
                "EWMA solve latency the portfolio router routes on.",
            ),
            (
                "backend_ewma_quality",
                "gauge",
                "EWMA solution quality (lower is better) the router routes on.",
            ),
            ("backend_race_entries_total", "counter", "Races the backend was entered into."),
            (
                "backend_predicted_seconds",
                "gauge",
                "EWMA of the cost model's predicted latency for the backend's recent jobs.",
            ),
            (
                "backend_estimation_error_factor",
                "gauge",
                "EWMA symmetric predicted-vs-actual error factor (1.0 = perfect).",
            ),
        ];
        for (name, kind, help) in telemetry {
            out.push_str(&format!("# HELP qdm_{name} {help}\n# TYPE qdm_{name} {kind}\n"));
            for t in &self.backend_telemetry {
                let value = match name {
                    "backend_observations_total" => t.observations as f64,
                    "backend_ewma_latency_seconds" => t.ewma_latency_seconds,
                    "backend_ewma_quality" => t.ewma_quality,
                    "backend_predicted_seconds" => t.predicted_seconds,
                    "backend_estimation_error_factor" => t.estimation_error_factor,
                    _ => t.race_entries as f64,
                };
                out.push_str(&format!("qdm_{name}{{backend=\"{}\"}} {value}\n", t.backend));
            }
        }
        out
    }
}

fn render_prom_histogram(
    out: &mut String,
    name: &str,
    help: &str,
    histogram: &[u64; LATENCY_BUCKETS],
    sum_seconds: f64,
) {
    out.push_str(&format!("# HELP qdm_{name} {help}\n# TYPE qdm_{name} histogram\n"));
    let mut cumulative = 0u64;
    for (i, &count) in histogram.iter().enumerate().take(LATENCY_BUCKETS - 1) {
        cumulative += count;
        let le = (1u64 << (i + 1)) as f64 / 1e6;
        out.push_str(&format!("qdm_{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
    }
    let total = cumulative + histogram[LATENCY_BUCKETS - 1];
    out.push_str(&format!("qdm_{name}_bucket{{le=\"+Inf\"}} {total}\n"));
    out.push_str(&format!("qdm_{name}_sum {sum_seconds}\n"));
    out.push_str(&format!("qdm_{name}_count {total}\n"));
}

impl std::fmt::Display for RuntimeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "runtime: {} submitted, {} completed, {} failed",
            self.jobs_submitted, self.jobs_completed, self.jobs_failed
        )?;
        writeln!(
            f,
            "cache:   {} hits / {} misses (hit rate {:.1}%), {} coalesced in flight",
            self.cache_hits,
            self.cache_misses,
            100.0 * self.cache_hit_rate(),
            self.jobs_coalesced
        )?;
        writeln!(
            f,
            "queue:   depth {} (peak {}), {} rejected, {} waited, {} cancelled",
            self.queue_depth,
            self.queue_depth_peak,
            self.backpressure_rejections,
            self.backpressure_waits,
            self.jobs_cancelled
        )?;
        if self.jobs_admitted > 0 || self.jobs_shed > 0 || self.migrations > 0 {
            writeln!(
                f,
                "cluster: {} admitted, {} shed, {} migrations",
                self.jobs_admitted, self.jobs_shed, self.migrations
            )?;
        }
        if self.jobs_retried > 0 || self.retries_exhausted > 0 || self.deadlines_exceeded > 0 {
            writeln!(
                f,
                "faults:  {} retries, {} exhausted, {} deadline-exceeded",
                self.jobs_retried, self.retries_exhausted, self.deadlines_exceeded
            )?;
        }
        if self.breaker_opened > 0 || self.failovers > 0 {
            writeln!(
                f,
                "degrade: {} breaker opens, {} half-opens, {} closes, {} failovers",
                self.breaker_opened, self.breaker_half_opened, self.breaker_closed, self.failovers
            )?;
        }
        if !self.shard_queue_depths.is_empty() {
            write!(f, "shards: ")?;
            for (shard, depth) in &self.shard_queue_depths {
                write!(f, " [{shard}: depth {depth}]")?;
            }
            writeln!(f)?;
        }
        writeln!(f, "solve:   {:.3}s total backend time", self.solve_seconds_total)?;
        writeln!(f, "compile: {:.6}s saved by compile-once sharing", self.compile_seconds_saved)?;
        if self.traces_recorded > 0 {
            writeln!(
                f,
                "traces:  {} recorded, {} dropped",
                self.traces_recorded, self.traces_dropped
            )?;
        }
        if self.race_jobs > 0 {
            write!(f, "races:   {} jobs; wins:", self.race_jobs)?;
            for (name, wins) in &self.race_wins {
                write!(f, " {name} x{wins}")?;
            }
            writeln!(f)?;
        }
        for (name, count) in &self.per_backend {
            writeln!(f, "backend: {name:<28} {count} jobs")?;
        }
        for t in &self.backend_telemetry {
            writeln!(
                f,
                "ewma:    {:<28} latency {:.6}s quality {:.4} ({} obs)",
                t.backend, t.ewma_latency_seconds, t.ewma_quality, t.observations
            )?;
        }
        let total: u64 = self.latency_histogram.iter().sum();
        if total > 0 {
            write!(f, "latency:")?;
            for (i, &count) in self.latency_histogram.iter().enumerate() {
                if count > 0 {
                    let lo = 1u64 << i;
                    let unit = if lo >= 1_000_000 {
                        format!("{}s", lo / 1_000_000)
                    } else if lo >= 1_000 {
                        format!("{}ms", lo / 1_000)
                    } else {
                        format!("{lo}µs")
                    };
                    write!(f, " [≥{unit}: {count}]")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.on_submit(3);
        m.on_cache_hit();
        m.on_solved("tabu", 0.001);
        m.on_solved("tabu", 0.002);
        let r = m.report();
        assert_eq!(r.jobs_submitted, 3);
        assert_eq!(r.jobs_completed, 3);
        assert_eq!(r.cache_hits, 1);
        assert_eq!(r.cache_misses, 2);
        assert_eq!(r.per_backend, vec![("tabu".to_string(), 2)]);
        assert!((r.cache_hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.latency_histogram.iter().sum::<u64>(), 2);
    }

    #[test]
    fn latency_buckets_are_log_scale() {
        let m = Metrics::new();
        m.on_solved("a", 3e-6); // ~3µs → bucket 1 ([2,4)µs)
        m.on_solved("a", 1.0); // 1s = 1e6µs → bucket 19 ([524288, ...)µs)
        let r = m.report();
        assert_eq!(r.latency_histogram[1], 1);
        assert_eq!(r.latency_histogram[19], 1);
    }

    #[test]
    fn served_latency_tracks_every_delivery_separately_from_solves() {
        let m = Metrics::new();
        // One real solve, one cache hit, one coalesced follower — but all
        // three were *delivered*, so all three land in the served series.
        m.on_solved("tabu", 0.004);
        m.on_served(0.004);
        m.on_cache_hit();
        m.on_served(3e-6);
        m.on_coalesced();
        m.on_coalesced_served();
        m.on_served(5e-6);
        let r = m.report();
        assert_eq!(r.latency_histogram.iter().sum::<u64>(), 1, "only the miss hit a backend");
        assert_eq!(r.served_latency_histogram.iter().sum::<u64>(), 3);
        assert_eq!(r.served_latency_histogram[1], 1); // 3µs cache hit
        assert_eq!(r.served_latency_histogram[2], 1); // 5µs coalesced
        assert_eq!(r.served_latency_histogram[11], 1); // 4ms solve
        assert!((r.served_seconds_total - 0.004008).abs() < 1e-6);
    }

    #[test]
    fn quantiles_pin_bucket_boundary_math() {
        // A single 1µs observation: micros=1 → bucket 0 ([1,2)µs); every
        // quantile reports the bucket's upper bound 2µs.
        let m = Metrics::new();
        m.on_solved("a", 1e-6);
        let r = m.report();
        assert_eq!(r.latency_quantile(0.5), Some(2e-6));
        assert_eq!(r.latency_quantile(0.99), Some(2e-6));

        // Exact powers of two land in the bucket they open: 2^11 µs = 2048µs
        // → bucket 11 ([2048, 4096)µs) → upper bound 4096µs.
        let m = Metrics::new();
        m.on_solved("a", 2048e-6);
        assert_eq!(m.report().latency_quantile(0.5), Some(4096e-6));

        // The open-ended last bucket reports its *lower* bound: anything
        // ≥ 2^23 µs (= 8.388608s) has no finite upper bound.
        let m = Metrics::new();
        m.on_solved("a", 3600.0);
        assert_eq!(m.report().latency_quantile(0.99), Some((1u64 << 23) as f64 / 1e6));

        // Rank math across buckets: 9 fast (bucket 0) + 1 slow (bucket 11).
        // p50 rank = ceil(0.5*10) = 5 → bucket 0; p99 rank = 10 → bucket 11.
        let m = Metrics::new();
        for _ in 0..9 {
            m.on_solved("a", 1e-6);
        }
        m.on_solved("a", 3000e-6);
        let r = m.report();
        assert_eq!(r.latency_quantile(0.5), Some(2e-6));
        assert_eq!(r.latency_quantile(0.90), Some(2e-6), "rank 9 is still the fast bucket");
        assert_eq!(r.latency_quantile(0.99), Some(4096e-6));

        // Degenerate q values clamp instead of panicking.
        assert_eq!(r.latency_quantile(-1.0), Some(2e-6), "q<0 clamps to min rank");
        assert_eq!(r.latency_quantile(2.0), Some(4096e-6), "q>1 clamps to max rank");

        // Empty histograms have no quantiles.
        assert_eq!(Metrics::new().report().latency_quantile(0.5), None);
        assert_eq!(Metrics::new().report().served_latency_quantile(0.5), None);
    }

    #[test]
    fn queue_and_backpressure_counters_accumulate() {
        let m = Metrics::new();
        m.on_enqueue();
        m.on_enqueue();
        m.on_dequeue();
        m.on_backpressure_rejection();
        m.on_backpressure_wait();
        m.on_cancelled();
        let r = m.report();
        assert_eq!(r.queue_depth, 1);
        assert_eq!(r.queue_depth_peak, 2);
        assert_eq!(r.backpressure_rejections, 1);
        assert_eq!(r.backpressure_waits, 1);
        assert_eq!(r.jobs_cancelled, 1);
        assert!(r.to_string().contains("depth 1 (peak 2)"));
    }

    #[test]
    fn compile_and_race_counters_accumulate() {
        let m = Metrics::new();
        m.on_compile_shared(0.001, 5); // one compile served 5 consumers: 4ms saved
        m.on_compile_shared(0.002, 1); // sole consumer: nothing saved
        m.on_race("tabu");
        m.on_race("tabu");
        m.on_race("simulated-annealing");
        m.on_race_participant_time(0.25); // a losing participant's solve time
        let r = m.report();
        assert!((r.compile_seconds_saved - 0.004).abs() < 1e-6, "{}", r.compile_seconds_saved);
        assert!((r.solve_seconds_total - 0.25).abs() < 1e-6, "{}", r.solve_seconds_total);
        assert_eq!(r.race_jobs, 3);
        // Name-sorted snapshot: "simulated-annealing" < "tabu".
        assert_eq!(r.race_wins[0], ("simulated-annealing".to_string(), 1));
        assert_eq!(r.race_wins[1], ("tabu".to_string(), 2));
        let text = r.to_string();
        assert!(text.contains("races:   3 jobs"), "{text}");
        assert!(text.contains("compile:"), "{text}");
    }

    #[test]
    fn snapshots_are_deterministically_name_sorted() {
        let m = Metrics::new();
        for backend in ["zeta", "alpha", "mid", "alpha"] {
            m.on_solved(backend, 1e-3);
            m.on_race(backend);
        }
        let r = m.report();
        let names: Vec<&str> = r.per_backend.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
        assert_eq!(r.per_backend[0].1, 2);
        let win_names: Vec<&str> = r.race_wins.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(win_names, vec!["alpha", "mid", "zeta"]);
        assert_eq!(m.report(), r, "repeated snapshots of the same state are identical");
    }

    #[test]
    fn coalesced_and_cancel_conversion_keep_the_ledger_consistent() {
        let m = Metrics::new();
        m.on_submit(3);
        // Job 1: solved normally. Job 2: coalesced onto job 1. Job 3:
        // solved, but its cancel raced the run and won.
        m.on_solved("tabu", 0.001);
        m.on_coalesced();
        m.on_coalesced_served();
        m.on_solved("tabu", 0.002);
        m.on_cancelled();
        m.on_completion_converted_to_cancel();
        let r = m.report();
        assert_eq!(r.jobs_submitted, 3);
        assert_eq!(r.jobs_completed, 2, "the cancelled job must not stay counted completed");
        assert_eq!(r.jobs_cancelled, 1);
        assert_eq!(r.jobs_coalesced, 1);
        assert_eq!(r.cache_misses, 2, "coalescing never consults the cache");
        assert_eq!(r.cache_hits, 0);
        assert_eq!(
            r.jobs_completed + r.jobs_failed + r.jobs_cancelled,
            r.jobs_submitted,
            "every job lands in exactly one ledger bucket"
        );
        assert!(r.to_string().contains("1 coalesced in flight"), "{r}");
    }

    #[test]
    fn admission_counters_accumulate_and_render() {
        let m = Metrics::new();
        m.on_admitted();
        m.on_admitted();
        m.on_shed();
        m.on_migrated();
        let mut r = m.report();
        assert_eq!(r.jobs_admitted, 2);
        assert_eq!(r.jobs_shed, 1);
        assert_eq!(r.migrations, 1);
        assert_eq!(r.shard, None);
        let text = r.render_prometheus();
        assert!(text.contains("qdm_jobs_admitted_total 2\n"), "{text}");
        assert!(text.contains("qdm_jobs_shed_total 1\n"), "{text}");
        assert!(text.contains("qdm_migrations_total 1\n"), "{text}");
        assert!(r.to_string().contains("cluster: 2 admitted, 1 shed, 1 migrations"), "{r}");

        // Shard-tagged reports label the cluster counters.
        r.shard = Some(3);
        let text = r.render_prometheus();
        assert!(text.contains("qdm_jobs_admitted_total{shard=\"3\"} 2\n"), "{text}");
        assert!(text.contains("qdm_jobs_shed_total{shard=\"3\"} 1\n"), "{text}");
        assert!(text.contains("qdm_migrations_total{shard=\"3\"} 1\n"), "{text}");
    }

    #[test]
    fn merge_sums_counters_histograms_and_tables() {
        let a = Metrics::new();
        a.on_submit(2);
        a.on_solved("tabu", 1e-6); // bucket 0
        a.on_served(1e-6);
        a.on_cache_hit();
        a.on_served(3e-6);
        a.on_enqueue();
        a.on_admitted();
        a.on_admitted();
        a.on_shed();
        let b = Metrics::new();
        b.on_submit(1);
        b.on_solved("tabu", 3000e-6); // bucket 11
        b.on_solved("simulated-annealing", 1e-6);
        b.on_served(3000e-6);
        b.on_migrated();
        let mut ra = a.report();
        ra.shard = Some(0);
        let mut rb = b.report();
        rb.shard = Some(1);

        let merged = RuntimeReport::merge([&ra, &rb]);
        assert_eq!(merged.jobs_submitted, 3);
        assert_eq!(merged.jobs_completed, 4);
        assert_eq!(merged.cache_hits, 1);
        assert_eq!(merged.cache_misses, 3);
        assert_eq!(merged.jobs_admitted, 2);
        assert_eq!(merged.jobs_shed, 1);
        assert_eq!(merged.migrations, 1);
        assert_eq!(merged.queue_depth, 1);
        assert_eq!(merged.shard, None);
        assert_eq!(merged.shard_queue_depths, vec![(0, 1), (1, 0)]);
        // Per-backend tables merge by name and stay name-sorted.
        assert_eq!(
            merged.per_backend,
            vec![("simulated-annealing".to_string(), 1), ("tabu".to_string(), 2)]
        );
        // Histograms summed bucket-wise: the quantile readers keep working.
        assert_eq!(merged.latency_histogram.iter().sum::<u64>(), 3);
        assert_eq!(merged.latency_histogram[0], 2);
        assert_eq!(merged.latency_histogram[11], 1);
        // p50 rank = ceil(0.5*3) = 2 → bucket 0 (upper bound 2µs); p99 rank
        // = 3 → bucket 11 (upper bound 4096µs). Neither shard alone has
        // this shape, so these quantiles only come out of a correct merge.
        assert_eq!(merged.latency_quantile(0.5), Some(2e-6));
        assert_eq!(merged.latency_quantile(0.99), Some(4096e-6));
        assert_eq!(merged.served_latency_histogram.iter().sum::<u64>(), 3);
        assert_eq!(merged.served_latency_quantile(0.99), Some(4096e-6));

        // A merged report can be merged again; the shard breakdown nests.
        let rc = Metrics::new().report();
        let twice = RuntimeReport::merge([&merged, &rc]);
        assert_eq!(twice.jobs_submitted, 3);
        assert_eq!(twice.shard_queue_depths, vec![(0, 1), (1, 0)]);

        // Empty merge is the all-zero report.
        assert_eq!(RuntimeReport::merge([]).jobs_submitted, 0);
        assert_eq!(RuntimeReport::merge([]).latency_quantile(0.5), None);
    }

    #[test]
    fn merge_averages_telemetry_by_observations() {
        let mut ra = Metrics::new().report();
        ra.backend_telemetry = vec![BackendTelemetry {
            backend: "tabu".to_string(),
            observations: 3,
            ewma_latency_seconds: 0.001,
            ewma_quality: 1.0,
            race_entries: 2,
            race_wins: 1,
            predicted_seconds: 0.002,
            estimation_error_factor: 2.0,
        }];
        ra.queue_backlog_seconds = 1.5;
        let mut rb = Metrics::new().report();
        rb.backend_telemetry = vec![
            BackendTelemetry {
                backend: "simulated-annealing".to_string(),
                observations: 5,
                ewma_latency_seconds: 0.004,
                ewma_quality: 2.0,
                race_entries: 0,
                race_wins: 0,
                predicted_seconds: 0.004,
                estimation_error_factor: 1.0,
            },
            BackendTelemetry {
                backend: "tabu".to_string(),
                observations: 1,
                ewma_latency_seconds: 0.005,
                ewma_quality: 3.0,
                race_entries: 1,
                race_wins: 1,
                predicted_seconds: 0.006,
                estimation_error_factor: 6.0,
            },
        ];
        rb.queue_backlog_seconds = 0.25;
        let merged = RuntimeReport::merge([&ra, &rb]);
        assert_eq!(merged.backend_telemetry.len(), 2);
        let names: Vec<&str> =
            merged.backend_telemetry.iter().map(|t| t.backend.as_str()).collect();
        assert_eq!(names, vec!["simulated-annealing", "tabu"], "telemetry stays name-sorted");
        let tabu = &merged.backend_telemetry[1];
        assert_eq!(tabu.observations, 4);
        assert_eq!(tabu.race_entries, 3);
        assert_eq!(tabu.race_wins, 2);
        // Observation-weighted: (0.001*3 + 0.005*1) / 4 = 0.002.
        assert!((tabu.ewma_latency_seconds - 0.002).abs() < 1e-12);
        assert!((tabu.ewma_quality - 1.5).abs() < 1e-12);
        // The cost-model gauges fold with the same observation weights:
        // predicted (0.002*3 + 0.006*1) / 4 = 0.003, error (2*3 + 6*1) / 4
        // = 3. A shard with few observations cannot drag the aggregate.
        assert!((tabu.predicted_seconds - 0.003).abs() < 1e-12);
        assert!((tabu.estimation_error_factor - 3.0).abs() < 1e-12);
        let sa = &merged.backend_telemetry[0];
        assert!((sa.predicted_seconds - 0.004).abs() < 1e-12, "singleton folds unchanged");
        assert!((sa.estimation_error_factor - 1.0).abs() < 1e-12);
        // Backlog is additive across shards: queued work is queued work.
        assert!((merged.queue_backlog_seconds - 1.75).abs() < 1e-12);
    }

    #[test]
    fn merged_reports_render_shard_depth_gauges() {
        let a = Metrics::new();
        a.on_enqueue();
        a.on_enqueue();
        let mut ra = a.report();
        ra.shard = Some(0);
        let mut rb = Metrics::new().report();
        rb.shard = Some(1);
        let merged = RuntimeReport::merge([&ra, &rb]);
        let text = merged.render_prometheus();
        assert!(text.contains("qdm_shard_queue_depth{shard=\"0\"} 2\n"), "{text}");
        assert!(text.contains("qdm_shard_queue_depth{shard=\"1\"} 0\n"), "{text}");
        // The merged report's own cluster counters are unlabeled.
        assert!(text.contains("qdm_jobs_shed_total 0\n"), "{text}");
    }

    #[test]
    fn prometheus_rendering_parses_line_by_line() {
        let m = Metrics::new();
        m.on_submit(4);
        m.on_cache_hit();
        m.on_served(1e-6);
        m.on_solved("tabu", 0.004);
        m.on_served(0.004);
        m.on_race("tabu");
        let mut r = m.report();
        r.backend_telemetry = vec![BackendTelemetry {
            backend: "tabu".to_string(),
            observations: 1,
            ewma_latency_seconds: 0.004,
            ewma_quality: 0.25,
            race_entries: 1,
            race_wins: 1,
            predicted_seconds: 0.005,
            estimation_error_factor: 1.25,
        }];
        r.traces_recorded = 2;
        let text = r.render_prometheus();

        let mut samples = 0usize;
        for line in text.lines() {
            assert!(!line.is_empty(), "no blank lines in exposition");
            if let Some(rest) = line.strip_prefix("# ") {
                assert!(
                    rest.starts_with("HELP qdm_") || rest.starts_with("TYPE qdm_"),
                    "bad comment line: {line}"
                );
                if let Some(type_line) = rest.strip_prefix("TYPE qdm_") {
                    let kind = type_line.split_whitespace().nth(1).unwrap();
                    assert!(
                        ["counter", "gauge", "histogram"].contains(&kind),
                        "bad metric type: {line}"
                    );
                }
                continue;
            }
            // Sample line: name[{labels}] value
            let (name_part, value) = line.rsplit_once(' ').expect("sample has a value");
            value.parse::<f64>().unwrap_or_else(|_| panic!("unparsable value in: {line}"));
            let name = name_part.split('{').next().unwrap();
            assert!(name.starts_with("qdm_"), "unprefixed metric: {line}");
            if let Some(labels) = name_part.strip_prefix(name) {
                if !labels.is_empty() {
                    assert!(labels.starts_with('{') && labels.ends_with('}'), "bad labels: {line}");
                }
            }
            samples += 1;
        }
        assert!(samples > 40, "expected a full exposition, got {samples} samples");

        // The specific series the scrape must carry.
        assert!(text.contains("qdm_jobs_submitted_total 4\n"), "{text}");
        assert!(text.contains("qdm_cache_hits_total 1\n"), "{text}");
        assert!(text.contains("qdm_backend_jobs_total{backend=\"tabu\"} 1\n"), "{text}");
        assert!(text.contains("qdm_race_wins_total{backend=\"tabu\"} 1\n"), "{text}");
        assert!(text.contains("qdm_backend_ewma_latency_seconds{backend=\"tabu\"} 0.004\n"));
        assert!(text.contains("qdm_backend_ewma_quality{backend=\"tabu\"} 0.25\n"));
        assert!(text.contains("qdm_backend_predicted_seconds{backend=\"tabu\"} 0.005\n"));
        assert!(text.contains("qdm_backend_estimation_error_factor{backend=\"tabu\"} 1.25\n"));
        assert!(text.contains("qdm_queue_backlog_seconds 0\n"));
        assert!(text.contains("qdm_traces_recorded_total 2\n"));

        // Histogram shape: cumulative buckets ending in +Inf == _count.
        let inf_solve: u64 = text
            .lines()
            .find(|l| l.starts_with("qdm_solve_latency_seconds_bucket{le=\"+Inf\"}"))
            .and_then(|l| l.rsplit_once(' '))
            .map(|(_, v)| v.parse().unwrap())
            .unwrap();
        assert_eq!(inf_solve, 1);
        assert!(text.contains("qdm_solve_latency_seconds_count 1\n"));
        assert!(text.contains("qdm_served_latency_seconds_count 2\n"));
        // 4ms solve: cumulative count reaches 1 by the le="0.008192" bucket.
        assert!(text.contains("qdm_solve_latency_seconds_bucket{le=\"0.008192\"} 1\n"), "{text}");
        // Buckets are cumulative: the le="0.000002" served bucket already
        // holds the 1µs cache hit.
        assert!(text.contains("qdm_served_latency_seconds_bucket{le=\"0.000002\"} 1\n"), "{text}");
    }
}
