//! Durable job journal and snapshotted solution store: the crash-safety
//! substrate of the runtime.
//!
//! Two persistence artifacts make the service restartable without losing
//! or duplicating work:
//!
//! - **The job journal** — an append-only log of [`JournalEvent`]s written
//!   at the three lifecycle seams of a job: `Submitted` when it enters a
//!   queue (carrying the full encoded [`QuboModel`], seed, options, and
//!   backend choice — everything a replay needs), `Completed` when its
//!   result is delivered, and `Cancelled` when a handle removes it. A job
//!   that appears in the log without a terminal event is *unfinished*:
//!   the process died (or the job failed) before the result got out, and
//!   [`crate::service::SolverService::recover`] replays it through the
//!   normal pipeline. Per-job seeded RNGs make the replayed result
//!   bit-identical to what the crashed run would have produced.
//! - **The solution snapshot** — a point-in-time serialization of the
//!   result cache ([`SolutionSnapshot`]), restored on startup so a warm
//!   restart serves previously-solved fingerprints straight from cache
//!   without recompiling or re-solving anything.
//!
//! Both use the same hand-rolled length-prefixed binary codec as
//! [`QuboModel::to_bytes`] — the workspace has no serialization crates.
//! [`FileJournal`] is a write-ahead log: each record is a little-endian
//! `u32` payload length followed by the payload, appended and flushed per
//! event. Readers tolerate a torn tail (a record cut short by the crash is
//! ignored, never misparsed), which is the standard WAL recovery contract.

use crate::service::{BackendChoice, JobSpec, SharedProblem};
use crate::sync::LockExt;
use qdm_core::pipeline::{JobPriority, PipelineOptions};
use qdm_core::problem::{Decoded, DmProblem};
use qdm_qubo::model::QuboModel;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Version byte leading every journal record and snapshot image.
const JOURNAL_CODEC_VERSION: u8 = 1;

/// Magic prefix of a serialized [`SolutionSnapshot`].
const SNAPSHOT_MAGIC: &[u8; 7] = b"QDMSNAP";

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// Everything a crashed run needs to re-execute a job identically: the
/// encoded model (not the un-serializable [`crate::service::SharedProblem`]
/// trait object), the seed that fixes the solve trajectory, and the
/// result-affecting pipeline options.
///
/// Deadlines are deliberately absent: they are scheduling-only state
/// measured from enqueue, meaningless after a restart.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmittedRecord {
    /// The job's service-assigned id. Recovery reuses it, so a replayed
    /// job's `Completed` event converges the journal instead of forking it.
    pub job_id: u64,
    /// The problem's [`DmProblem::name`] (also the cache-key namespace).
    pub problem: String,
    /// The full encoded model, captured at submit time.
    pub qubo: QuboModel,
    /// Result-affecting pipeline options, packed exactly like
    /// [`crate::cache::CacheKey::options_bits`]
    /// (`presolve | decompose<<1 | repair<<2`).
    pub options_bits: u8,
    /// Queue priority (scheduling-only, but preserved so a replayed
    /// backlog drains in the same order).
    pub priority: JobPriority,
    /// The job's RNG seed — the reproducibility anchor.
    pub seed: u64,
    /// Backend selection policy.
    pub backend: BackendChoice,
    /// Submitting tenant, for jobs that arrived through a cluster session.
    pub tenant: Option<String>,
    /// Shard the job was queued on, for cluster-submitted jobs.
    pub shard: Option<u64>,
}

impl SubmittedRecord {
    /// Rebuilds the [`JobSpec`] this record was captured from, around the
    /// given problem implementation — either the original (via
    /// [`crate::service::SolverService::recover_with`]'s resolver) or the
    /// journal's own [`JournaledProblem`] stand-in.
    pub fn to_spec(&self, problem: SharedProblem) -> JobSpec {
        let options = PipelineOptions {
            presolve: self.options_bits & 1 != 0,
            decompose: self.options_bits & 2 != 0,
            repair: self.options_bits & 4 != 0,
            priority: self.priority,
            ..PipelineOptions::default()
        };
        JobSpec { problem, options, seed: self.seed, backend: self.backend.clone(), deadline: None }
    }

    /// The stand-in problem for replays with no resolver: carries the
    /// journaled model verbatim, so compilation, solving, and the solved
    /// bits/energy are bit-identical to the original run. Only the decoded
    /// problem-level *summary* is generic — the original trait object's
    /// domain `decode`/`repair` logic cannot be serialized.
    pub fn fallback_problem(&self) -> SharedProblem {
        Arc::new(JournaledProblem::new(self.problem.clone(), self.qubo.clone()))
    }
}

/// One entry of the append-only job journal.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalEvent {
    /// A job entered a service queue.
    Submitted(SubmittedRecord),
    /// A job's result was delivered to its completion slot.
    Completed {
        /// The finished job.
        job_id: u64,
        /// Canonical fingerprint of the solved model (0 when the job was
        /// served by coalescing onto an in-flight leader and never
        /// computed its own fingerprint).
        fingerprint: u64,
    },
    /// A job was cancelled through its handle.
    Cancelled {
        /// The cancelled job.
        job_id: u64,
    },
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u64(out, b.len() as u64);
    out.extend_from_slice(b);
}

fn put_opt_string(out: &mut Vec<u8>, s: Option<&str>) {
    match s {
        Some(s) => {
            out.push(1);
            put_string(out, s);
        }
        None => out.push(0),
    }
}

fn put_bools(out: &mut Vec<u8>, bits: &[bool]) {
    put_u64(out, bits.len() as u64);
    out.extend(bits.iter().map(|&b| b as u8));
}

/// Bounds-checked little-endian reader over a byte slice; every accessor
/// answers `None` past the end, so torn or corrupt records fail decoding
/// cleanly instead of panicking.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    fn len(&mut self) -> Option<usize> {
        let n = self.u64()?;
        // A length prefix can never legitimately exceed what remains.
        let n = usize::try_from(n).ok()?;
        (n <= self.buf.len() - self.pos).then_some(n)
    }

    fn string(&mut self) -> Option<String> {
        let n = self.len()?;
        String::from_utf8(self.take(n)?.to_vec()).ok()
    }

    fn bytes(&mut self) -> Option<&'a [u8]> {
        let n = self.len()?;
        self.take(n)
    }

    fn opt_string(&mut self) -> Option<Option<String>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(self.string()?)),
            _ => None,
        }
    }

    fn bools(&mut self) -> Option<Vec<bool>> {
        let n = self.len()?;
        Some(self.take(n)?.iter().map(|&b| b != 0).collect())
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn priority_code(p: JobPriority) -> u8 {
    match p {
        JobPriority::Normal => 0,
        JobPriority::High => 1,
        JobPriority::Low => 2,
    }
}

fn priority_from(code: u8) -> Option<JobPriority> {
    match code {
        0 => Some(JobPriority::Normal),
        1 => Some(JobPriority::High),
        2 => Some(JobPriority::Low),
        _ => None,
    }
}

fn put_backend(out: &mut Vec<u8>, backend: &BackendChoice) {
    match backend {
        BackendChoice::Auto => out.push(0),
        BackendChoice::Named(name) => {
            out.push(1);
            put_string(out, name);
        }
        BackendChoice::Race { k } => {
            out.push(2);
            put_u64(out, *k as u64);
        }
    }
}

fn read_backend(r: &mut Reader<'_>) -> Option<BackendChoice> {
    match r.u8()? {
        0 => Some(BackendChoice::Auto),
        1 => Some(BackendChoice::Named(r.string()?)),
        2 => Some(BackendChoice::Race { k: usize::try_from(r.u64()?).ok()? }),
        _ => None,
    }
}

impl JournalEvent {
    /// Serializes the event to the journal's versioned binary form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![JOURNAL_CODEC_VERSION];
        match self {
            JournalEvent::Submitted(rec) => {
                out.push(0);
                put_u64(&mut out, rec.job_id);
                put_string(&mut out, &rec.problem);
                put_bytes(&mut out, &rec.qubo.to_bytes());
                out.push(rec.options_bits);
                out.push(priority_code(rec.priority));
                put_u64(&mut out, rec.seed);
                put_backend(&mut out, &rec.backend);
                put_opt_string(&mut out, rec.tenant.as_deref());
                match rec.shard {
                    Some(shard) => {
                        out.push(1);
                        put_u64(&mut out, shard);
                    }
                    None => out.push(0),
                }
            }
            JournalEvent::Completed { job_id, fingerprint } => {
                out.push(1);
                put_u64(&mut out, *job_id);
                put_u64(&mut out, *fingerprint);
            }
            JournalEvent::Cancelled { job_id } => {
                out.push(2);
                put_u64(&mut out, *job_id);
            }
        }
        out
    }

    /// Decodes one event; `None` on version mismatch, truncation, or any
    /// malformed field (the torn-tail case).
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        if r.u8()? != JOURNAL_CODEC_VERSION {
            return None;
        }
        let event = match r.u8()? {
            0 => {
                let job_id = r.u64()?;
                let problem = r.string()?;
                let qubo = QuboModel::from_bytes(r.bytes()?)?;
                let options_bits = r.u8()?;
                let priority = priority_from(r.u8()?)?;
                let seed = r.u64()?;
                let backend = read_backend(&mut r)?;
                let tenant = r.opt_string()?;
                let shard = match r.u8()? {
                    0 => None,
                    1 => Some(r.u64()?),
                    _ => return None,
                };
                JournalEvent::Submitted(SubmittedRecord {
                    job_id,
                    problem,
                    qubo,
                    options_bits,
                    priority,
                    seed,
                    backend,
                    tenant,
                    shard,
                })
            }
            1 => JournalEvent::Completed { job_id: r.u64()?, fingerprint: r.u64()? },
            2 => JournalEvent::Cancelled { job_id: r.u64()? },
            _ => return None,
        };
        r.done().then_some(event)
    }
}

// ---------------------------------------------------------------------------
// Journal implementations
// ---------------------------------------------------------------------------

/// An append-only event log the service writes job lifecycle records to.
///
/// Implementations must be safe to call from racing worker threads;
/// `append` is called under no service locks. [`MemoryJournal`] backs
/// tests and single-process crash simulation; [`FileJournal`] is the
/// durable write-ahead log.
pub trait Journal: Send + Sync {
    /// Appends one event. Must be atomic with respect to other appenders.
    fn append(&self, event: JournalEvent);

    /// All decodable events, in append order.
    fn events(&self) -> Vec<JournalEvent>;
}

/// An in-process journal: a mutex-guarded event vector. Survives a
/// *simulated* crash ([`crate::service::SolverService::simulate_crash`])
/// because the test holds the `Arc`, exactly as a file would survive a
/// real one.
#[derive(Debug, Default)]
pub struct MemoryJournal {
    events: Mutex<Vec<JournalEvent>>,
}

impl MemoryJournal {
    /// An empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events appended so far.
    pub fn len(&self) -> usize {
        self.events.lock_unpoisoned().len()
    }

    /// Whether nothing has been journaled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Journal for MemoryJournal {
    fn append(&self, event: JournalEvent) {
        self.events.lock_unpoisoned().push(event);
    }

    fn events(&self) -> Vec<JournalEvent> {
        self.events.lock_unpoisoned().clone()
    }
}

/// A file-backed write-ahead log: `u32`-LE length prefix + encoded payload
/// per record, appended and flushed per event.
///
/// Reading tolerates a torn tail — a trailing record whose prefix or
/// payload was cut short by a crash is ignored, and every record before it
/// is still served. Appending to a journal with a torn tail is not
/// repaired here; recovery normally replays into a *fresh* journal and
/// retires the old one.
#[derive(Debug)]
pub struct FileJournal {
    path: PathBuf,
    file: Mutex<File>,
}

impl FileJournal {
    /// Opens (creating if absent) the journal at `path` for appending.
    /// Existing records are preserved and served by [`Journal::events`].
    pub fn open(path: impl Into<PathBuf>) -> io::Result<Self> {
        let path = path.into();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Self { path, file: Mutex::new(file) })
    }

    /// The log's location on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Journal for FileJournal {
    fn append(&self, event: JournalEvent) {
        let payload = event.to_bytes();
        let mut record = Vec::with_capacity(4 + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&payload);
        let mut file = self.file.lock_unpoisoned();
        // One write per record keeps concurrent appenders' records intact
        // (never interleaved), and the flush moves it to the OS before the
        // caller proceeds — the write-ahead contract.
        if file.write_all(&record).is_ok() {
            let _ = file.flush();
        }
    }

    fn events(&self) -> Vec<JournalEvent> {
        let Ok(buf) = std::fs::read(&self.path) else { return Vec::new() };
        let mut events = Vec::new();
        let mut pos = 0usize;
        while pos + 4 <= buf.len() {
            let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let Some(end) = pos.checked_add(4).and_then(|p| p.checked_add(len)) else { break };
            if end > buf.len() {
                break; // torn tail: the crash cut this record short
            }
            match JournalEvent::from_bytes(&buf[pos + 4..end]) {
                Some(event) => events.push(event),
                None => break, // corrupt tail: stop at the last good record
            }
            pos = end;
        }
        events
    }
}

/// The submissions in `events` with no terminal (`Completed`/`Cancelled`)
/// event — the jobs a crashed run still owes answers for — in original
/// submission order. This is exactly the set
/// [`crate::service::SolverService::recover`] replays.
pub fn unfinished(events: &[JournalEvent]) -> Vec<SubmittedRecord> {
    use std::collections::HashSet;
    let mut finished: HashSet<u64> = HashSet::new();
    for event in events {
        match event {
            JournalEvent::Completed { job_id, .. } | JournalEvent::Cancelled { job_id } => {
                finished.insert(*job_id);
            }
            JournalEvent::Submitted(_) => {}
        }
    }
    events
        .iter()
        .filter_map(|event| match event {
            JournalEvent::Submitted(rec) if !finished.contains(&rec.job_id) => Some(rec.clone()),
            _ => None,
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Replay stand-in problem
// ---------------------------------------------------------------------------

/// A [`DmProblem`] reconstructed from a journal record: carries the
/// journaled [`QuboModel`] verbatim, so a replay compiles and solves the
/// exact model the original run did — bits and energy bit-identical.
///
/// The original trait object's domain logic is not serializable, so
/// `decode` reports QUBO-level facts (energy as the objective, a generic
/// summary) and `repair` is the identity. Replays needing full decode
/// fidelity pass a resolver to
/// [`crate::service::SolverService::recover_with`] instead.
#[derive(Debug, Clone)]
pub struct JournaledProblem {
    name: String,
    qubo: Arc<QuboModel>,
}

impl JournaledProblem {
    /// Wraps a journaled model under its original problem name.
    pub fn new(name: String, qubo: QuboModel) -> Self {
        Self { name, qubo: Arc::new(qubo) }
    }
}

impl DmProblem for JournaledProblem {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn n_vars(&self) -> usize {
        self.qubo.n_vars()
    }

    fn to_qubo(&self) -> QuboModel {
        (*self.qubo).clone()
    }

    fn decode(&self, bits: &[bool]) -> Decoded {
        let set = bits.iter().filter(|&&b| b).count();
        Decoded {
            feasible: true,
            objective: self.qubo.energy(bits),
            summary: format!("journal replay: {set}/{} bits set", bits.len()),
        }
    }
}

// ---------------------------------------------------------------------------
// Solution snapshot
// ---------------------------------------------------------------------------

use crate::cache::{CacheKey, CachedResult};
use qdm_core::pipeline::PipelineReport;

/// A point-in-time image of the result cache — every `(key, result)` pair —
/// serializable to one snapshot file and restorable into a fresh service.
///
/// A restored snapshot makes a restart *warm*: a resubmission of any
/// snapshotted fingerprint is served from cache without compiling or
/// solving anything (observable via
/// [`qdm_qubo::compiled::compilation_count`]).
#[derive(Debug, Clone, Default)]
pub struct SolutionSnapshot {
    /// The cached entries, in cache-shard iteration order.
    pub entries: Vec<(CacheKey, CachedResult)>,
}

fn put_cache_key(out: &mut Vec<u8>, key: &CacheKey) {
    put_string(out, &key.problem);
    put_u64(out, key.qubo_fingerprint);
    out.push(key.options_bits);
    put_u64(out, key.seed);
    put_opt_string(out, key.backend.as_deref());
}

fn read_cache_key(r: &mut Reader<'_>) -> Option<CacheKey> {
    Some(CacheKey {
        problem: r.string()?,
        qubo_fingerprint: r.u64()?,
        options_bits: r.u8()?,
        seed: r.u64()?,
        backend: r.opt_string()?,
    })
}

fn put_report(out: &mut Vec<u8>, report: &PipelineReport) {
    put_string(out, &report.problem);
    put_string(out, &report.solver);
    put_u64(out, report.n_vars as u64);
    put_u64(out, report.max_subproblem_vars as u64);
    put_u64(out, report.components as u64);
    put_u64(out, report.presolve_fixed as u64);
    put_bools(out, &report.bits);
    put_u64(out, report.energy.to_bits());
    out.push(report.decoded.feasible as u8);
    put_u64(out, report.decoded.objective.to_bits());
    put_string(out, &report.decoded.summary);
    put_u64(out, report.evaluations);
    put_u64(out, report.seconds.to_bits());
}

fn read_report(r: &mut Reader<'_>) -> Option<PipelineReport> {
    Some(PipelineReport {
        problem: r.string()?,
        solver: r.string()?,
        n_vars: usize::try_from(r.u64()?).ok()?,
        max_subproblem_vars: usize::try_from(r.u64()?).ok()?,
        components: usize::try_from(r.u64()?).ok()?,
        presolve_fixed: usize::try_from(r.u64()?).ok()?,
        bits: r.bools()?,
        energy: r.f64()?,
        decoded: Decoded { feasible: r.u8()? != 0, objective: r.f64()?, summary: r.string()? },
        evaluations: r.u64()?,
        seconds: r.f64()?,
    })
}

impl SolutionSnapshot {
    /// Number of cached results in the image.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the image holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes the snapshot: magic + version header, entry count, then
    /// each `(key, result)` pair in the shared length-prefixed codec.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(SNAPSHOT_MAGIC);
        out.push(JOURNAL_CODEC_VERSION);
        put_u64(&mut out, self.entries.len() as u64);
        for (key, value) in &self.entries {
            put_cache_key(&mut out, key);
            put_report(&mut out, &value.report);
            put_bools(&mut out, &value.canonical_bits);
            put_string(&mut out, &value.backend);
        }
        out
    }

    /// Decodes a snapshot image; `None` on bad magic, version mismatch,
    /// truncation, or trailing garbage.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        if r.take(SNAPSHOT_MAGIC.len())? != SNAPSHOT_MAGIC || r.u8()? != JOURNAL_CODEC_VERSION {
            return None;
        }
        let count = usize::try_from(r.u64()?).ok()?;
        let mut entries = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            let key = read_cache_key(&mut r)?;
            let report = read_report(&mut r)?;
            let canonical_bits = r.bools()?;
            let backend = r.string()?;
            entries.push((key, CachedResult { report, canonical_bits, backend }));
        }
        r.done().then_some(Self { entries })
    }

    /// Writes the snapshot atomically: to a `.tmp` sibling first, then
    /// renamed over `path`, so a crash mid-write never leaves a half
    /// snapshot where a reader expects a whole one.
    pub fn write_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_bytes())?;
        std::fs::rename(&tmp, path)
    }

    /// Reads and decodes a snapshot file; decode failures surface as
    /// [`io::ErrorKind::InvalidData`].
    pub fn read_from(path: impl AsRef<Path>) -> io::Result<Self> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed snapshot image"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_qubo() -> QuboModel {
        let mut q = QuboModel::new(3);
        q.add_linear(0, 1.5);
        q.add_linear(2, -0.5);
        q.add_quadratic(0, 1, 2.0);
        q.add_offset(0.25);
        q
    }

    fn submitted(job_id: u64) -> JournalEvent {
        JournalEvent::Submitted(SubmittedRecord {
            job_id,
            problem: format!("p{job_id}"),
            qubo: sample_qubo(),
            options_bits: 0b101,
            priority: JobPriority::High,
            seed: 42 + job_id,
            backend: BackendChoice::Race { k: 2 },
            tenant: Some("tenant-a".into()),
            shard: Some(3),
        })
    }

    #[test]
    fn events_round_trip_through_the_codec() {
        for event in [
            submitted(7),
            JournalEvent::Submitted(SubmittedRecord {
                job_id: 1,
                problem: "bare".into(),
                qubo: QuboModel::new(0),
                options_bits: 0,
                priority: JobPriority::Low,
                seed: 0,
                backend: BackendChoice::Named("tabu".into()),
                tenant: None,
                shard: None,
            }),
            JournalEvent::Completed { job_id: 9, fingerprint: 0xDEAD_BEEF },
            JournalEvent::Cancelled { job_id: 4 },
        ] {
            let bytes = event.to_bytes();
            assert_eq!(JournalEvent::from_bytes(&bytes), Some(event.clone()));
            // Truncation at every prefix fails cleanly, never panics.
            for cut in 0..bytes.len() {
                assert_eq!(JournalEvent::from_bytes(&bytes[..cut]), None, "cut at {cut}");
            }
            // Trailing garbage is rejected too.
            let mut padded = bytes.clone();
            padded.push(0);
            assert_eq!(JournalEvent::from_bytes(&padded), None);
        }
    }

    #[test]
    fn unfinished_is_submitted_minus_terminal_in_order() {
        let events = vec![
            submitted(1),
            submitted(2),
            JournalEvent::Completed { job_id: 1, fingerprint: 5 },
            submitted(3),
            JournalEvent::Cancelled { job_id: 3 },
            submitted(4),
        ];
        let open = unfinished(&events);
        assert_eq!(open.iter().map(|r| r.job_id).collect::<Vec<_>>(), vec![2, 4]);
    }

    #[test]
    fn memory_journal_preserves_append_order() {
        let journal = MemoryJournal::new();
        journal.append(submitted(1));
        journal.append(JournalEvent::Completed { job_id: 1, fingerprint: 0 });
        assert_eq!(journal.len(), 2);
        let events = journal.events();
        assert!(matches!(events[0], JournalEvent::Submitted(_)));
        assert!(matches!(events[1], JournalEvent::Completed { job_id: 1, .. }));
    }

    #[test]
    fn file_journal_survives_reopen_and_tolerates_torn_tail() {
        let dir = std::env::temp_dir().join("qdm-journal-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("wal-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);

        {
            let journal = FileJournal::open(&path).expect("open");
            journal.append(submitted(1));
            journal.append(submitted(2));
            journal.append(JournalEvent::Completed { job_id: 1, fingerprint: 77 });
        }
        // Reopen: existing records are served, appends continue after them.
        let journal = FileJournal::open(&path).expect("reopen");
        assert_eq!(journal.events().len(), 3);
        journal.append(JournalEvent::Cancelled { job_id: 2 });
        assert_eq!(journal.events().len(), 4);
        assert!(unfinished(&journal.events()).is_empty());

        // Simulate a torn tail: a length prefix promising more bytes than
        // the crash left behind. Every whole record still reads back.
        {
            let mut raw = std::fs::OpenOptions::new().append(true).open(&path).expect("raw");
            raw.write_all(&999u32.to_le_bytes()).expect("torn prefix");
            raw.write_all(&[1, 2, 3]).expect("torn payload");
        }
        assert_eq!(journal.events().len(), 4, "torn tail is ignored, good prefix served");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn journaled_problem_reproduces_the_model() {
        let qubo = sample_qubo();
        let rec = SubmittedRecord {
            job_id: 1,
            problem: "orig".into(),
            qubo: qubo.clone(),
            options_bits: 0b001,
            priority: JobPriority::Normal,
            seed: 9,
            backend: BackendChoice::Auto,
            tenant: None,
            shard: None,
        };
        let problem = rec.fallback_problem();
        assert_eq!(problem.name(), "orig");
        assert_eq!(problem.n_vars(), 3);
        assert_eq!(problem.to_qubo().fingerprint(), qubo.fingerprint());
        let bits = [true, false, true];
        let decoded = problem.decode(&bits);
        assert_eq!(decoded.objective, qubo.energy(&bits));
        let spec = rec.to_spec(problem);
        assert!(spec.options.presolve);
        assert!(!spec.options.decompose);
        assert_eq!(spec.seed, 9);
        assert!(spec.deadline.is_none());
    }

    #[test]
    fn snapshot_round_trips_and_rejects_corruption() {
        let report = PipelineReport {
            problem: "p".into(),
            solver: "sa".into(),
            n_vars: 3,
            max_subproblem_vars: 3,
            components: 1,
            presolve_fixed: 0,
            bits: vec![true, false, true],
            energy: -1.25,
            decoded: Decoded { feasible: true, objective: -1.25, summary: "ok".into() },
            evaluations: 600,
            seconds: 0.001,
        };
        let snapshot = SolutionSnapshot {
            entries: vec![(
                CacheKey {
                    problem: "p".into(),
                    qubo_fingerprint: 0xABCD,
                    options_bits: 1,
                    seed: 7,
                    backend: None,
                },
                CachedResult {
                    report,
                    canonical_bits: vec![true, true, false],
                    backend: "sa".into(),
                },
            )],
        };
        let bytes = snapshot.to_bytes();
        let back = SolutionSnapshot::from_bytes(&bytes).expect("round trip");
        assert_eq!(back.len(), 1);
        assert_eq!(back.entries[0].0, snapshot.entries[0].0);
        assert_eq!(back.entries[0].1.report.bits, vec![true, false, true]);
        assert_eq!(back.entries[0].1.report.energy, -1.25);
        assert!(SolutionSnapshot::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        assert!(SolutionSnapshot::from_bytes(b"not a snapshot").is_none());

        let dir = std::env::temp_dir().join("qdm-journal-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("snap-{}.bin", std::process::id()));
        snapshot.write_to(&path).expect("write");
        let read = SolutionSnapshot::read_from(&path).expect("read");
        assert_eq!(read.len(), 1);
        let _ = std::fs::remove_file(&path);
    }
}
