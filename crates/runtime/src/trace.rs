//! Structured per-job tracing: span timelines, the [`TraceSink`] consumer
//! interface, and the bounded lock-free(-ish) [`TraceRing`] the service
//! stores recent traces in.
//!
//! Every traced job produces one [`JobTrace`]: a span per runtime stage —
//! queue wait, compile+fingerprint, presolve/decompose preparation, one
//! solve span per race participant (winner marked), serve — each stamped
//! with monotonic nanosecond timestamps from the service's private epoch
//! and carrying lane/session/fingerprint attribution plus the
//! backend-internal [`StageStats`] collected through
//! [`qdm_qubo::probe::StageProbe`] hooks. Workers assemble the trace
//! locally while running the job (no shared state on the hot path) and hand
//! the finished record to the sink once, so steady-state overhead is one
//! ring push — a ticket `fetch_add` plus an uncontended `try_lock` — per
//! job. A full or contended slot **drops** the trace and counts it; writers
//! never block on readers.
//!
//! Export formats live next to the service:
//! [`crate::service::SolverService::export_traces`] renders the ring as
//! Chrome `trace_event` JSON (loadable in `about:tracing` / Perfetto) and
//! [`crate::metrics::RuntimeReport::render_prometheus`] exposes the
//! counters.

use qdm_core::pipeline::JobPriority;
use qdm_qubo::probe::{RestartStats, StageProbe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default [`TraceConfig::Ring`] capacity (traces retained).
pub const DEFAULT_TRACE_CAPACITY: usize = 1024;

/// Which runtime stage a [`Span`] covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Sitting in the service queue (enqueue → worker pickup).
    Queued,
    /// The job's single QUBO compile plus canonical fingerprinting.
    Compile,
    /// Pipeline preparation: presolve fixpoint + component extraction.
    Presolve,
    /// One backend solving (one span per race participant).
    Solve,
    /// Serving a result that was not solved here: cache hit or coalesced.
    Serve,
    /// A retry of a failed attempt: the span covers the backoff sleep and
    /// ends when the next attempt starts.
    Retry,
    /// The job was replayed from a durable journal after a crash; the span
    /// marks the moment recovery re-enqueued it.
    Recover,
}

impl Stage {
    /// Stable lowercase name used in exports.
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Queued => "queued",
            Stage::Compile => "compile",
            Stage::Presolve => "presolve",
            Stage::Solve => "solve",
            Stage::Serve => "serve",
            Stage::Retry => "retry",
            Stage::Recover => "recover",
        }
    }
}

/// Backend-internal progress counters accumulated over a span, fed by the
/// [`StageProbe`] hooks threaded through presolve and the solver restart
/// loops.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Presolve fixpoint rounds run (including the final converged round).
    pub presolve_rounds: u64,
    /// Variables fixed across all presolve rounds.
    pub presolve_fixed: u64,
    /// Solver restarts finished.
    pub restarts: u64,
    /// Sweeps/iterations summed over restarts.
    pub sweeps: u64,
    /// Move proposals evaluated.
    pub proposals: u64,
    /// Proposals accepted.
    pub accepted: u64,
}

impl StageStats {
    /// Whether nothing was recorded (spans without solver activity).
    pub fn is_empty(&self) -> bool {
        *self == StageStats::default()
    }

    /// Acceptance rate over proposals, or 0 when nothing was proposed.
    pub fn accept_rate(&self) -> f64 {
        if self.proposals == 0 {
            0.0
        } else {
            self.accepted as f64 / self.proposals as f64
        }
    }
}

/// One timed stage of a job's lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// The stage this span covers.
    pub stage: Stage,
    /// Backend attribution for [`Stage::Solve`] spans.
    pub backend: Option<String>,
    /// Whether this solve span produced the job's returned result (the race
    /// winner; trivially true for a single-backend solve).
    pub winner: bool,
    /// Span start, nanoseconds since the service epoch (monotonic).
    pub start_ns: u64,
    /// Span end, nanoseconds since the service epoch.
    pub end_ns: u64,
    /// Backend-internal counters collected during the span.
    pub stats: StageStats,
    /// The cost model's latency prediction for this span, in seconds, as
    /// quoted when the router dispatched the attempt — `Some` only on
    /// [`Stage::Solve`] spans. Comparing it against the span's measured
    /// duration is how calibration error is audited per job.
    pub predicted_seconds: Option<f64>,
}

impl Span {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// How a traced job ultimately resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOutcome {
    /// Missed the cache and was solved by a backend.
    Solved,
    /// Served from the result cache.
    CacheHit,
    /// Coalesced onto a concurrent in-flight duplicate.
    Coalesced,
    /// Delivered as cancelled.
    Cancelled,
    /// Failed (routing error or panic).
    Failed,
}

impl TraceOutcome {
    /// Stable lowercase name used in exports.
    pub fn name(&self) -> &'static str {
        match self {
            TraceOutcome::Solved => "solved",
            TraceOutcome::CacheHit => "cache-hit",
            TraceOutcome::Coalesced => "coalesced",
            TraceOutcome::Cancelled => "cancelled",
            TraceOutcome::Failed => "failed",
        }
    }
}

/// The complete span timeline of one job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobTrace {
    /// Service-wide job id (submission order).
    pub job_id: u64,
    /// Owning session id.
    pub session: u64,
    /// Problem name.
    pub problem: String,
    /// Scheduling lane the job ran in.
    pub lane: JobPriority,
    /// Canonical QUBO fingerprint (0 when the job never compiled — e.g.
    /// coalesced followers and routing failures).
    pub fingerprint: u64,
    /// The job's RNG seed.
    pub seed: u64,
    /// How the job resolved.
    pub outcome: TraceOutcome,
    /// Backend that produced (or originally produced) the result, when any.
    pub backend: Option<String>,
    /// The shard that ran the job inside a
    /// [`crate::cluster::ClusterService`]; `None` on standalone services.
    pub shard: Option<u64>,
    /// Stage spans in chronological order.
    pub spans: Vec<Span>,
}

impl JobTrace {
    /// The first span of a given stage, if present.
    pub fn span(&self, stage: Stage) -> Option<&Span> {
        self.spans.iter().find(|s| s.stage == stage)
    }
}

/// Consumer of finished job traces. Implementations must be cheap and
/// non-blocking: `record` runs on worker threads once per job.
pub trait TraceSink: Send + Sync {
    /// Accepts one finished trace (ownership transfers; drop to discard).
    fn record(&self, trace: JobTrace);
}

/// A sink that discards everything — tracing disabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct DisabledSink;

impl TraceSink for DisabledSink {
    fn record(&self, _trace: JobTrace) {}
}

/// One ring slot: the retained trace tagged with its admission ticket.
type TicketedSlot = Mutex<Option<(u64, JobTrace)>>;

/// A bounded ring of recent job traces with drop counting.
///
/// Writers take a ticket with one `fetch_add` and claim the target slot
/// with `try_lock` — an uncontended claim is a single CAS; a contended one
/// (another writer or a snapshot holding the slot) **drops** the trace and
/// counts it rather than blocking. When the ring wraps, the displaced
/// older trace counts as dropped too, so
/// `recorded() == len() + dropped()` always balances. Snapshots sort by
/// ticket, so readers see surviving traces in completion order.
pub struct TraceRing {
    slots: Box<[TicketedSlot]>,
    head: AtomicU64,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

impl TraceRing {
    /// A ring retaining up to `capacity` traces (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Stores `trace`, overwriting the oldest retained trace once the ring
    /// is full. Never blocks: slot contention drops the trace instead.
    pub fn push(&self, trace: JobTrace) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        match slot.try_lock() {
            Ok(mut guard) => {
                if guard.replace((ticket, trace)).is_some() {
                    // Wrapped: the displaced older trace is gone.
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(_) => {
                // Someone else holds the slot; dropping beats blocking a
                // worker thread on telemetry.
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Traces pushed over the ring's lifetime (retained or dropped).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Traces lost to wraparound or slot contention.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Snapshot of the retained traces in completion (ticket) order.
    pub fn snapshot(&self) -> Vec<JobTrace> {
        let mut entries: Vec<(u64, JobTrace)> = self
            .slots
            .iter()
            .filter_map(|slot| slot.try_lock().ok().and_then(|guard| guard.clone()))
            .collect();
        entries.sort_by_key(|(ticket, _)| *ticket);
        entries.into_iter().map(|(_, trace)| trace).collect()
    }
}

impl TraceSink for TraceRing {
    fn record(&self, trace: JobTrace) {
        self.push(trace);
    }
}

/// Service-level tracing configuration
/// ([`crate::service::ServiceConfig::tracing`]).
#[derive(Clone, Default)]
pub enum TraceConfig {
    /// No tracing: jobs pay zero tracing cost (no clock reads, no sink).
    Disabled,
    /// Trace into a bounded in-service [`TraceRing`], exported through
    /// [`crate::service::SolverService::export_traces`] /
    /// [`crate::service::SolverService::traces`]. This is the default, at
    /// [`DEFAULT_TRACE_CAPACITY`].
    #[default]
    Ring,
    /// Trace into a bounded ring of the given capacity.
    RingWithCapacity(usize),
    /// Trace into a caller-supplied sink (ownership of each trace passes to
    /// it; `SolverService::traces` sees nothing).
    Custom(Arc<dyn TraceSink>),
}

impl std::fmt::Debug for TraceConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceConfig::Disabled => write!(f, "Disabled"),
            TraceConfig::Ring => write!(f, "Ring({DEFAULT_TRACE_CAPACITY})"),
            TraceConfig::RingWithCapacity(n) => write!(f, "Ring({n})"),
            TraceConfig::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

/// A [`StageProbe`] accumulating [`StageStats`] atomically — the bridge
/// between solver-internal hooks (which may fire from several racing
/// threads) and the per-span stats a worker snapshots when the span closes.
#[derive(Debug, Default)]
pub struct StageProfile {
    presolve_rounds: AtomicU64,
    presolve_fixed: AtomicU64,
    restarts: AtomicU64,
    sweeps: AtomicU64,
    proposals: AtomicU64,
    accepted: AtomicU64,
}

impl StageProfile {
    /// A fresh all-zero profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of the accumulated counters.
    pub fn snapshot(&self) -> StageStats {
        StageStats {
            presolve_rounds: self.presolve_rounds.load(Ordering::Relaxed),
            presolve_fixed: self.presolve_fixed.load(Ordering::Relaxed),
            restarts: self.restarts.load(Ordering::Relaxed),
            sweeps: self.sweeps.load(Ordering::Relaxed),
            proposals: self.proposals.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
        }
    }
}

impl StageProbe for StageProfile {
    fn on_presolve_round(&self, _round: u64, fixed_in_round: u64) {
        self.presolve_rounds.fetch_add(1, Ordering::Relaxed);
        self.presolve_fixed.fetch_add(fixed_in_round, Ordering::Relaxed);
    }

    fn on_restart(&self, stats: &RestartStats) {
        self.restarts.fetch_add(1, Ordering::Relaxed);
        self.sweeps.fetch_add(stats.sweeps, Ordering::Relaxed);
        self.proposals.fetch_add(stats.proposals, Ordering::Relaxed);
        self.accepted.fetch_add(stats.accepted, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(job_id: u64) -> JobTrace {
        JobTrace {
            job_id,
            session: 0,
            problem: format!("p{job_id}"),
            lane: JobPriority::Normal,
            fingerprint: 42,
            seed: 7,
            outcome: TraceOutcome::Solved,
            backend: Some("tabu".into()),
            shard: None,
            spans: vec![Span {
                stage: Stage::Solve,
                backend: Some("tabu".into()),
                winner: true,
                start_ns: job_id * 10,
                end_ns: job_id * 10 + 5,
                stats: StageStats::default(),
                predicted_seconds: None,
            }],
        }
    }

    #[test]
    fn ring_retains_in_order_below_capacity() {
        let ring = TraceRing::new(8);
        for id in 0..5 {
            ring.push(trace(id));
        }
        let got = ring.snapshot();
        assert_eq!(got.len(), 5);
        assert_eq!(got.iter().map(|t| t.job_id).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        assert_eq!(ring.recorded(), 5);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn ring_wraparound_keeps_newest_and_counts_drops() {
        let ring = TraceRing::new(4);
        for id in 0..6 {
            ring.push(trace(id));
        }
        let got = ring.snapshot();
        assert_eq!(got.len(), 4, "capacity bounds retention");
        assert_eq!(
            got.iter().map(|t| t.job_id).collect::<Vec<_>>(),
            vec![2, 3, 4, 5],
            "oldest traces are displaced first; survivors stay in completion order"
        );
        assert_eq!(ring.recorded(), 6);
        assert_eq!(ring.dropped(), 2, "each wrap displaces exactly one older trace");
        assert_eq!(ring.recorded(), got.len() as u64 + ring.dropped(), "ledger balances");
    }

    #[test]
    fn contended_slot_drops_instead_of_blocking() {
        let ring = TraceRing::new(2);
        ring.push(trace(0));
        // Hold slot 1's lock to simulate contention, then push the trace
        // that targets it.
        let guard = ring.slots[1].lock().unwrap();
        ring.push(trace(1));
        drop(guard);
        assert_eq!(ring.dropped(), 1, "the contended push was dropped, not blocked");
        assert_eq!(ring.recorded(), 2);
        let got = ring.snapshot();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].job_id, 0);
    }

    #[test]
    fn stage_profile_accumulates_probe_events() {
        let profile = StageProfile::new();
        profile.on_presolve_round(0, 3);
        profile.on_presolve_round(1, 0);
        profile.on_restart(&RestartStats {
            solver: "sa",
            restart: 0,
            sweeps: 200,
            proposals: 1000,
            accepted: 400,
        });
        profile.on_restart(&RestartStats {
            solver: "sa",
            restart: 1,
            sweeps: 200,
            proposals: 1000,
            accepted: 100,
        });
        let stats = profile.snapshot();
        assert_eq!(stats.presolve_rounds, 2);
        assert_eq!(stats.presolve_fixed, 3);
        assert_eq!(stats.restarts, 2);
        assert_eq!(stats.sweeps, 400);
        assert_eq!(stats.proposals, 2000);
        assert_eq!(stats.accepted, 500);
        assert!((stats.accept_rate() - 0.25).abs() < 1e-12);
        assert!(!stats.is_empty());
        assert!(StageStats::default().is_empty());
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let ring = TraceRing::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.push(trace(0));
        ring.push(trace(1));
        assert_eq!(ring.snapshot().len(), 1);
        assert_eq!(ring.dropped(), 1);
    }
}
