//! Per-backend circuit breakers: graceful degradation when a backend
//! keeps failing.
//!
//! Every registered backend carries a three-state breaker. `Closed` is
//! normal service. [`BreakerConfig::failure_threshold`] *consecutive*
//! failures (panics or injected errors attributed to the backend) trip it
//! to `Open`: the portfolio ranking excludes the backend, so traffic
//! degrades to the remaining portfolio instead of burning retries on a
//! dead executor — never to zero, though: when every eligible backend is
//! open, the best-ranked one stays eligible (see
//! [`crate::portfolio::PortfolioScheduler::rank_filtered`]). After
//! [`BreakerConfig::cooldown`] on the injectable [`Clock`], the next
//! ranking moves the breaker to `HalfOpen`: probe traffic is allowed
//! through, one success re-closes the breaker, one failure re-opens it
//! for another cooldown.
//!
//! State transitions are counted into [`crate::metrics::Metrics`]
//! (`breaker_opened` / `breaker_half_opened` / `breaker_closed`) and
//! rendered by
//! [`crate::metrics::RuntimeReport::render_prometheus`]. The clock is
//! injectable for the same reason the cluster's admission clock is: a
//! test drives cooldown expiry with a
//! [`crate::cluster::ManualClock`] and never sleeps. This state is also
//! priced by the cost model ([`crate::cost`]): beyond the hard ranking
//! exclusion, `CircuitBreakers::capacity` discounts an open or
//! half-open backend's predicted capacity, so every predicted-seconds
//! consumer (DRR charging, admission buckets, backlog estimates) sees a
//! degraded backend as *more expensive* rather than invisible.

use crate::cluster::{Clock, MonotonicClock};
use crate::metrics::Metrics;
use crate::sync::LockExt;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Circuit-breaker policy, set on
/// [`crate::service::ServiceConfig::breaker`]. `None` there disables
/// breakers entirely (the default).
#[derive(Clone)]
pub struct BreakerConfig {
    /// Consecutive failures that trip a backend's breaker open (at least 1).
    pub failure_threshold: u32,
    /// How long an open breaker blocks traffic before the next ranking
    /// half-opens it for a probe.
    pub cooldown: Duration,
    /// Clock the cooldown is measured on; `None` uses the monotonic wall
    /// clock. Tests inject a [`crate::cluster::ManualClock`] and advance it
    /// instead of sleeping.
    pub clock: Option<Arc<dyn Clock>>,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self { failure_threshold: 5, cooldown: Duration::from_secs(1), clock: None }
    }
}

impl std::fmt::Debug for BreakerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BreakerConfig")
            .field("failure_threshold", &self.failure_threshold)
            .field("cooldown", &self.cooldown)
            .field("clock", &self.clock.as_ref().map(|_| "<clock>"))
            .finish()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    Closed,
    Open { since_micros: u64 },
    HalfOpen,
}

struct BackendBreaker {
    consecutive_failures: u32,
    state: BreakerState,
}

/// One breaker per registered backend, indexed like the registry.
pub(crate) struct CircuitBreakers {
    threshold: u32,
    cooldown_micros: u64,
    clock: Arc<dyn Clock>,
    states: Vec<Mutex<BackendBreaker>>,
}

impl CircuitBreakers {
    pub(crate) fn new(config: &BreakerConfig, n_backends: usize) -> Self {
        Self {
            threshold: config.failure_threshold.max(1),
            cooldown_micros: config.cooldown.as_micros().min(u128::from(u64::MAX)) as u64,
            clock: config.clock.clone().unwrap_or_else(|| Arc::new(MonotonicClock::default())),
            states: (0..n_backends)
                .map(|_| {
                    Mutex::new(BackendBreaker {
                        consecutive_failures: 0,
                        state: BreakerState::Closed,
                    })
                })
                .collect(),
        }
    }

    /// Records a failure attributed to `backend`. The threshold counts
    /// consecutive failures from `Closed`; a failed `HalfOpen` probe
    /// re-opens immediately (the backend already proved unhealthy once).
    pub(crate) fn on_failure(&self, backend: usize, metrics: &Metrics) {
        let mut b = self.states[backend].lock_unpoisoned();
        b.consecutive_failures = b.consecutive_failures.saturating_add(1);
        let trip = match b.state {
            BreakerState::Closed => b.consecutive_failures >= self.threshold,
            BreakerState::HalfOpen => true,
            BreakerState::Open { .. } => false,
        };
        if trip {
            b.state = BreakerState::Open { since_micros: self.clock.now_micros() };
            metrics.on_breaker_opened();
        }
    }

    /// Records a success on `backend`: resets the consecutive-failure
    /// count and re-closes a half-open (or open — a straggler attempt that
    /// started before the trip may succeed after it) breaker.
    pub(crate) fn on_success(&self, backend: usize, metrics: &Metrics) {
        let mut b = self.states[backend].lock_unpoisoned();
        b.consecutive_failures = 0;
        if b.state != BreakerState::Closed {
            b.state = BreakerState::Closed;
            metrics.on_breaker_closed();
        }
    }

    /// The cost-model capacity discount for `backend`'s current breaker
    /// state: 1.0 closed, 0.5 half-open (probe traffic only — price it up
    /// so races prefer proven backends), 0.25 open (an open breaker that
    /// has cooled down reads as half-open). Side-effect free: no state
    /// transition, no metrics — pricing must be able to quote a backend
    /// without acting as its half-open probe.
    pub(crate) fn capacity(&self, backend: usize) -> f64 {
        let b = self.states[backend].lock_unpoisoned();
        match b.state {
            BreakerState::Closed => 1.0,
            BreakerState::HalfOpen => 0.5,
            BreakerState::Open { since_micros } => {
                if self.clock.now_micros().saturating_sub(since_micros) >= self.cooldown_micros {
                    0.5
                } else {
                    0.25
                }
            }
        }
    }

    /// Whether `backend` is currently in the half-open probe state.
    /// Side-effect free, like [`CircuitBreakers::capacity`]: no transition,
    /// no metrics — callers use this to *promote* an already-half-opened
    /// backend to the front of a ranking so the probe actually dispatches.
    pub(crate) fn is_half_open(&self, backend: usize) -> bool {
        let b = self.states[backend].lock_unpoisoned();
        matches!(b.state, BreakerState::HalfOpen)
    }

    /// Whether `backend` is currently excluded from ranking. An open
    /// breaker whose cooldown has elapsed transitions to `HalfOpen` here —
    /// the caller's ranking is the probe that re-admits it.
    pub(crate) fn is_open(&self, backend: usize, metrics: &Metrics) -> bool {
        let mut b = self.states[backend].lock_unpoisoned();
        match b.state {
            BreakerState::Closed | BreakerState::HalfOpen => false,
            BreakerState::Open { since_micros } => {
                if self.clock.now_micros().saturating_sub(since_micros) >= self.cooldown_micros {
                    b.state = BreakerState::HalfOpen;
                    metrics.on_breaker_half_opened();
                    false
                } else {
                    true
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ManualClock;

    fn breakers(threshold: u32, cooldown: Duration, clock: Arc<ManualClock>) -> CircuitBreakers {
        CircuitBreakers::new(
            &BreakerConfig { failure_threshold: threshold, cooldown, clock: Some(clock) },
            2,
        )
    }

    #[test]
    fn consecutive_failures_trip_and_a_success_resets_the_count() {
        let clock = Arc::new(ManualClock::new(0));
        let b = breakers(3, Duration::from_secs(1), clock);
        let m = Metrics::new();
        b.on_failure(0, &m);
        b.on_failure(0, &m);
        assert!(!b.is_open(0, &m), "two of three failures: still closed");
        b.on_success(0, &m);
        b.on_failure(0, &m);
        b.on_failure(0, &m);
        assert!(!b.is_open(0, &m), "the success reset the consecutive count");
        b.on_failure(0, &m);
        assert!(b.is_open(0, &m), "third consecutive failure trips");
        assert!(!b.is_open(1, &m), "breakers are per-backend");
        assert_eq!(m.report().breaker_opened, 1);
        assert_eq!(m.report().breaker_closed, 0, "closed counts transitions, not successes");
    }

    #[test]
    fn cooldown_half_opens_then_success_closes_or_failure_reopens() {
        let clock = Arc::new(ManualClock::new(0));
        let b = breakers(1, Duration::from_millis(500), Arc::clone(&clock));
        let m = Metrics::new();
        b.on_failure(0, &m);
        assert!(b.is_open(0, &m));
        clock.advance(499_999);
        assert!(b.is_open(0, &m), "cooldown not yet elapsed");
        clock.advance(1);
        assert!(!b.is_open(0, &m), "cooldown elapsed: half-open admits a probe");
        assert_eq!(m.report().breaker_half_opened, 1);
        // A failed probe re-opens immediately for another cooldown.
        b.on_failure(0, &m);
        assert!(b.is_open(0, &m));
        assert_eq!(m.report().breaker_opened, 2);
        // Cooldown again, and this time the probe succeeds: closed.
        clock.advance(500_000);
        assert!(!b.is_open(0, &m));
        b.on_success(0, &m);
        assert!(!b.is_open(0, &m));
        let r = m.report();
        assert_eq!((r.breaker_opened, r.breaker_half_opened, r.breaker_closed), (2, 2, 1));
    }

    #[test]
    fn capacity_discounts_by_state_without_transitions() {
        let clock = Arc::new(ManualClock::new(0));
        let b = breakers(1, Duration::from_millis(500), Arc::clone(&clock));
        let m = Metrics::new();
        assert_eq!(b.capacity(0), 1.0);
        b.on_failure(0, &m);
        assert_eq!(b.capacity(0), 0.25, "open: quarter capacity");
        clock.advance(500_000);
        assert_eq!(b.capacity(0), 0.5, "cooled down: prices as half-open");
        // Quoting capacity is not the probe: the breaker is still Open
        // and no half-open transition was counted.
        assert_eq!(m.report().breaker_half_opened, 0);
        assert!(!b.is_open(0, &m), "ranking is the probe");
        assert_eq!(m.report().breaker_half_opened, 1);
        assert_eq!(b.capacity(0), 0.5, "half-open: half capacity");
        b.on_success(0, &m);
        assert_eq!(b.capacity(0), 1.0);
    }
}
