//! Per-job completion handles: the asynchronous half of the submission API.
//!
//! Every submitted job gets a private `CompletionSlot` — a mutex-guarded
//! outcome cell with its own condvar — instead of a shared batch channel.
//! The [`JobHandle`] returned by [`crate::submit::Session::submit`] wraps
//! that slot: callers can poll ([`JobHandle::try_result`]), block
//! ([`JobHandle::wait`]), or abandon the job ([`JobHandle::cancel`]) without
//! affecting any other in-flight work. Finished jobs are also streamed, in
//! finish order, through the session's [`crate::submit::Session::completions`]
//! iterator as [`Completion`] records.

use crate::metrics::Metrics;
use crate::service::{JobError, JobOutcome, Shared};
use crate::submit::SessionCore;
use crate::sync::{CondvarExt, LockExt};
use crate::trace::{JobTrace, Span, Stage, StageStats, TraceOutcome};
use std::sync::{Arc, Condvar, Mutex};

/// One finished job as streamed by
/// [`crate::submit::Session::completions`]: jobs appear in the order they
/// finish, not the order they were submitted.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The job's service-wide id ([`JobHandle::id`] of its handle).
    pub id: u64,
    /// The job's outcome, identical to what [`JobHandle::wait`] returns.
    pub outcome: JobOutcome,
}

/// What [`JobHandle::cancel`] achieved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelStatus {
    /// The job was still queued and has been removed before any worker
    /// picked it up; its handle resolves to [`JobError::Cancelled`].
    Cancelled,
    /// A worker is already running the job (or a racing `cancel` on the
    /// same handle is concurrently removing it). It completes (and still
    /// populates the result cache), but the handle and the completion
    /// stream report [`JobError::Cancelled`] to late waiters.
    Running,
    /// The job had already finished; the cancel had no effect and the
    /// real outcome remains observable.
    Finished,
}

struct SlotInner {
    cancelled: bool,
    outcome: Option<JobOutcome>,
}

/// Outcome of trying to mark a slot cancelled.
enum MarkCancelled {
    /// This call set the flag: the cancellation took effect (count it).
    Marked,
    /// A previous cancel already set the flag: no new effect.
    AlreadyMarked,
    /// The job already resolved: too late to cancel.
    Resolved,
}

/// The per-job completion cell shared by the worker (producer) and the
/// handle + completion stream (consumers).
pub(crate) struct CompletionSlot {
    inner: Mutex<SlotInner>,
    done: Condvar,
}

impl CompletionSlot {
    pub(crate) fn new() -> Self {
        Self {
            inner: Mutex::new(SlotInner { cancelled: false, outcome: None }),
            done: Condvar::new(),
        }
    }

    /// Stores the job's outcome (converting it to [`JobError::Cancelled`] if
    /// the job was cancelled while running), wakes every waiter, and returns
    /// the outcome as delivered — the same value the completion stream must
    /// carry so `wait()` and `completions()` always agree.
    ///
    /// When the conversion downgrades an outcome that `process` already
    /// counted — completed for `Ok`, failed for any error other than
    /// `Cancelled` itself — the ledger is reconciled here, under the slot
    /// lock and **before** any waiter can observe the outcome: the cancel
    /// call counted the job cancelled, so without the matching
    /// [`Metrics::on_completion_converted_to_cancel`] /
    /// [`Metrics::on_failure_converted_to_cancel`] one job would occupy two
    /// ledger buckets.
    pub(crate) fn resolve(&self, outcome: JobOutcome, metrics: &Metrics) -> JobOutcome {
        let solved = outcome.is_ok();
        // Every non-`Cancelled` error reaching a slot was counted by
        // `on_failed` (routing, panic, or coalesced-failure path); a
        // queued-job cancel resolves with `Err(Cancelled)` and was never
        // counted failed.
        let counted_failed = matches!(&outcome, Err(err) if *err != JobError::Cancelled);
        let mut inner = self.inner.lock_unpoisoned();
        let delivered = if inner.cancelled { Err(JobError::Cancelled) } else { outcome };
        if inner.cancelled {
            if solved {
                metrics.on_completion_converted_to_cancel();
            } else if counted_failed {
                metrics.on_failure_converted_to_cancel();
            }
        }
        inner.outcome = Some(delivered.clone());
        self.done.notify_all();
        delivered
    }

    /// Marks a still-running job as cancelled so [`Self::resolve`] delivers
    /// [`JobError::Cancelled`].
    fn mark_cancelled_if_pending(&self) -> MarkCancelled {
        let mut inner = self.inner.lock_unpoisoned();
        if inner.outcome.is_some() {
            MarkCancelled::Resolved
        } else if inner.cancelled {
            MarkCancelled::AlreadyMarked
        } else {
            inner.cancelled = true;
            MarkCancelled::Marked
        }
    }

    fn try_result(&self) -> Option<JobOutcome> {
        self.inner.lock_unpoisoned().outcome.clone()
    }

    fn wait(&self) -> JobOutcome {
        let mut inner = self.inner.lock_unpoisoned();
        loop {
            if let Some(outcome) = &inner.outcome {
                return outcome.clone();
            }
            inner = self.done.wait_unpoisoned(inner);
        }
    }
}

/// A handle to one asynchronously submitted job.
///
/// Handles are independent of the [`crate::submit::Session`] that created
/// them: they can be moved to other threads, waited on in any order, and
/// dropped without consequence (the job still runs and its completion still
/// streams). The result is a [`JobOutcome`] clone, so `wait`/`try_result`
/// can be called repeatedly and concurrently with the completion stream.
pub struct JobHandle {
    id: u64,
    slot: Arc<CompletionSlot>,
    shared: Arc<Shared>,
    session: Arc<SessionCore>,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.id)
            .field("finished", &self.is_finished())
            .finish_non_exhaustive()
    }
}

impl JobHandle {
    pub(crate) fn new(
        id: u64,
        slot: Arc<CompletionSlot>,
        shared: Arc<Shared>,
        session: Arc<SessionCore>,
    ) -> Self {
        Self { id, slot, shared, session }
    }

    /// The job's service-wide id (monotonic submission order).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Non-blocking poll: `Some` once the job resolved, `None` while it is
    /// still queued or running.
    pub fn try_result(&self) -> Option<JobOutcome> {
        self.slot.try_result()
    }

    /// Whether the job has resolved (completed, failed, or been cancelled).
    pub fn is_finished(&self) -> bool {
        self.slot.try_result().is_some()
    }

    /// Blocks until the job resolves and returns its outcome. Results are
    /// bit-identical to a synchronous [`crate::service::SolverService::run`]
    /// of the same spec: per-job seeded RNGs make the outcome independent of
    /// scheduling.
    pub fn wait(&self) -> JobOutcome {
        self.slot.wait()
    }

    /// Cancels the job.
    ///
    /// - Still queued → the job is removed before any worker picks it up and
    ///   the handle resolves to [`JobError::Cancelled`]
    ///   ([`CancelStatus::Cancelled`]).
    /// - Already running → the job completes (and still populates the result
    ///   cache), but the handle and the completion stream report
    ///   [`JobError::Cancelled`] ([`CancelStatus::Running`]). In the ledger
    ///   the job counts as cancelled, **not** completed — one job, one
    ///   bucket.
    /// - Already resolved → no effect ([`CancelStatus::Finished`]).
    ///
    /// Cancellation is strictly per-handle. If this job coalesced onto a
    /// concurrent in-flight duplicate (single-flight), cancelling it never
    /// cancels the leader it parked on; conversely a cancelled leader still
    /// finishes its solve and serves any followers — only its own handle
    /// reports [`JobError::Cancelled`].
    pub fn cancel(&self) -> CancelStatus {
        let removed = {
            let mut queue = self.shared.queue.lock_unpoisoned();
            queue.remove(self.id)
        };
        if let Some(job) = removed {
            // Claim the slot's cancel flag before resolving: racing cancels
            // on the same handle each see `Marked` at most once in total, so
            // `jobs_cancelled` counts one effective cancellation per job no
            // matter how many threads race here.
            if matches!(job.slot.mark_cancelled_if_pending(), MarkCancelled::Marked) {
                self.shared.metrics.on_cancelled();
            }
            self.shared.metrics.on_dequeue();
            self.session.on_dequeue();
            // A queue-removed job never reaches a worker, so its trace is
            // recorded here: just the queue-wait span, outcome `cancelled`.
            if let Some(sink) = self.shared.sink.as_ref() {
                sink.record(JobTrace {
                    job_id: job.id,
                    session: job.session.id(),
                    problem: job.spec.problem.name(),
                    lane: job.spec.options.priority,
                    fingerprint: 0,
                    seed: job.spec.seed,
                    outcome: TraceOutcome::Cancelled,
                    backend: None,
                    shard: self.shared.shard,
                    spans: vec![Span {
                        stage: Stage::Queued,
                        backend: None,
                        winner: false,
                        start_ns: job.queued_ns,
                        end_ns: self.shared.now_ns(),
                        stats: StageStats::default(),
                        predicted_seconds: None,
                    }],
                });
            }
            let delivered = job.slot.resolve(Err(JobError::Cancelled), &self.shared.metrics);
            // A queue-removed job resolves here, never on a worker, so its
            // terminal journal record is appended here too — without it the
            // cancelled job would look unfinished and recovery would
            // resurrect it.
            if let Some(journal) = &self.shared.journal {
                journal.append(crate::journal::JournalEvent::Cancelled { job_id: self.id });
            }
            self.session.on_complete(Completion { id: self.id, outcome: delivered });
            return CancelStatus::Cancelled;
        }
        match self.slot.mark_cancelled_if_pending() {
            MarkCancelled::Marked => {
                self.shared.metrics.on_cancelled();
                CancelStatus::Running
            }
            MarkCancelled::AlreadyMarked => CancelStatus::Running,
            MarkCancelled::Resolved => CancelStatus::Finished,
        }
    }
}
