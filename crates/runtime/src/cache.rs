//! The result cache: completed [`PipelineReport`]s keyed by a canonical
//! fingerprint of the *work*, so repeated submissions of the same encoding —
//! the common case when the same MQO or join-ordering instance arrives again
//! — are served without re-solving.
//!
//! The key combines the QUBO's permutation-invariant canonical fingerprint
//! ([`qdm_qubo::model::QuboModel::canonical_fingerprint`]) with the pipeline
//! options, the job seed, and the requested backend, so even the same
//! instance encoded with its variables enumerated in a different order hits.
//! Entries store the solved assignment in *canonical* variable order
//! ([`CachedResult::canonical_bits`]); the service translates it back into
//! the requester's labeling on every hit. Under fixed seeds every pipeline
//! stage is deterministic, so an identically-labeled hit returns a
//! **bit-identical** report to what re-solving would have produced; the
//! cache trades memory for latency without changing any observable result.
//!
//! Storage is sharded: `min(capacity, MAX_SHARDS)` independently locked
//! shards selected by the canonical fingerprint, so concurrent workers
//! rarely contend on the same mutex at high worker counts. Each shard
//! evicts independently with a **second-chance (CLOCK)** policy: every
//! entry carries a referenced bit that hits set; the eviction hand clears
//! set bits as it sweeps and evicts the first entry it finds unreferenced.
//! A hot fingerprint that keeps hitting therefore survives churn that plain
//! FIFO insertion order would have evicted it under, at FIFO's O(1) cost
//! and with none of LRU's per-hit list surgery. The per-shard capacities sum
//! to **exactly** the configured capacity (the division remainder is spread
//! one entry each across the first shards), and the total never exceeds it.
//!
//! This module also hosts the `FlightTable`: the single-flight table the
//! service consults *before* the cache can answer. Two concurrent
//! submissions of the same work both miss the cache (the entry only appears
//! after the first solve completes), and without coordination both would
//! solve — the thundering-herd re-solve. The table registers one leader per
//! in-flight key; duplicates park on the leader's `Flight` and are served
//! its completed result through the same canonical-bit translation a cache
//! hit uses. Keys exist at two granularities (`FlightKey`): the exact
//! (label-order) model fingerprint, checked before compiling so an exact
//! duplicate never pays a compilation, and the canonical [`CacheKey`],
//! which additionally coalesces permuted-but-identical encodings.

use crate::service::JobError;
use crate::sync::{CondvarExt, LockExt};
use qdm_core::pipeline::{PipelineOptions, PipelineReport};
use qdm_qubo::compiled::CompiledQubo;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// Upper bound on the number of independently locked cache shards.
pub const MAX_SHARDS: usize = 16;

/// Minimum capacity a shard is worth: small caches stay unsharded so
/// fingerprint collisions between a handful of entries cannot evict each
/// other prematurely.
pub const SHARD_MIN_CAPACITY: usize = 64;

/// Cache key: canonical work identity.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The problem's [`qdm_core::problem::DmProblem::name`]. Two different
    /// problem types can encode to coefficient-identical QUBOs while
    /// decoding/repairing differently; the name keeps their entries apart.
    pub problem: String,
    /// Permutation-invariant canonical QUBO fingerprint.
    pub qubo_fingerprint: u64,
    /// Pipeline options, packed (presolve | decompose<<1 | repair<<2).
    /// Priority is scheduling-only and deliberately excluded: a job's result
    /// is identical at every priority level.
    pub options_bits: u8,
    /// Per-job RNG seed.
    pub seed: u64,
    /// Requested backend name, or `None` for portfolio ("auto") routing.
    pub backend: Option<String>,
}

impl CacheKey {
    /// Builds a key from job parameters.
    pub fn new(
        problem: String,
        qubo_fingerprint: u64,
        options: &PipelineOptions,
        seed: u64,
        backend: Option<&str>,
    ) -> Self {
        Self {
            problem,
            qubo_fingerprint,
            options_bits: pack_options(options),
            seed,
            backend: backend.map(str::to_string),
        }
    }
}

/// Packs the result-affecting pipeline options into the byte cache and
/// flight keys carry (priority is scheduling-only and excluded).
pub(crate) fn pack_options(options: &PipelineOptions) -> u8 {
    (options.presolve as u8) | ((options.decompose as u8) << 1) | ((options.repair as u8) << 2)
}

/// A cached completed job.
#[derive(Debug, Clone)]
pub struct CachedResult {
    /// The full pipeline report as produced by the original solve (its
    /// `bits` are in the *original submitter's* variable order).
    pub report: PipelineReport,
    /// The solved assignment permuted into canonical variable order, so a
    /// hit from a permuted-but-identical encoding can translate it into its
    /// own labeling (`bits[i] = canonical_bits[perm[i]]`).
    pub canonical_bits: Vec<bool>,
    /// Name of the backend that produced it.
    pub backend: String,
}

/// One ring slot of a shard's CLOCK: the entry plus its referenced bit.
struct Slot {
    key: CacheKey,
    value: CachedResult,
    referenced: bool,
}

struct CacheInner {
    /// Key → ring index of the live entry.
    map: HashMap<CacheKey, usize>,
    /// The CLOCK ring, filled up to the shard capacity and then recycled in
    /// place (deterministic, no clocks-the-time-kind).
    ring: Vec<Slot>,
    /// Next ring position the eviction hand examines.
    hand: usize,
    /// This shard's entry budget. Shards differ by at most one entry so the
    /// budgets sum to exactly the configured cache capacity.
    capacity: usize,
}

impl CacheInner {
    /// Second-chance sweep: clears referenced bits until it lands on an
    /// unreferenced entry, evicts it, and returns its ring index for reuse.
    /// Terminates within two laps (after one lap every bit is clear).
    fn evict_one(&mut self) -> usize {
        loop {
            let h = self.hand;
            self.hand = (self.hand + 1) % self.ring.len();
            let slot = &mut self.ring[h];
            if slot.referenced {
                slot.referenced = false;
            } else {
                self.map.remove(&slot.key);
                return h;
            }
        }
    }
}

/// A bounded, thread-safe result cache: fingerprint-sharded with per-shard
/// second-chance (CLOCK) eviction.
pub struct ResultCache {
    shards: Vec<Mutex<CacheInner>>,
}

impl ResultCache {
    /// A cache holding at most `capacity` results (at least 1). The shard
    /// count scales with capacity — one shard per [`SHARD_MIN_CAPACITY`]
    /// entries, capped at [`MAX_SHARDS`] — so the default service cache gets
    /// full sharding while tiny test caches keep single-FIFO semantics.
    /// The division remainder is distributed one entry each across the
    /// first `capacity % n_shards` shards, so the per-shard budgets sum to
    /// exactly `capacity` (a flat `capacity / n_shards` would silently
    /// shrink a 1000-entry cache to 990).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let n_shards = (capacity / SHARD_MIN_CAPACITY).clamp(1, MAX_SHARDS);
        let base = capacity / n_shards;
        let remainder = capacity % n_shards;
        let shards = (0..n_shards)
            .map(|i| {
                Mutex::new(CacheInner {
                    map: HashMap::new(),
                    ring: Vec::new(),
                    hand: 0,
                    capacity: base + usize::from(i < remainder),
                })
            })
            .collect();
        Self { shards }
    }

    /// Number of independently locked shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total entry budget: the sum of per-shard capacities, exactly the
    /// `capacity` the cache was built with.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.lock_unpoisoned().capacity).sum()
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<CacheInner> {
        &self.shards[(key.qubo_fingerprint as usize) % self.shards.len()]
    }

    /// Looks up a completed result, marking the entry referenced so the
    /// CLOCK hand grants it a second chance on its next sweep.
    pub fn get(&self, key: &CacheKey) -> Option<CachedResult> {
        let mut inner = self.shard(key).lock_unpoisoned();
        let &slot = inner.map.get(key)?;
        inner.ring[slot].referenced = true;
        Some(inner.ring[slot].value.clone())
    }

    /// Inserts a completed result; when the shard is full the CLOCK hand
    /// evicts the first entry it finds whose referenced bit is clear
    /// (clearing set bits as it sweeps). New entries start unreferenced —
    /// they earn their second chance by being hit. First-writer-wins on
    /// races: a duplicate insert (two workers solving the same key
    /// concurrently) keeps the existing entry so later hits stay consistent
    /// with earlier responses.
    pub fn insert(&self, key: CacheKey, value: CachedResult) {
        let mut inner = self.shard(&key).lock_unpoisoned();
        if inner.map.contains_key(&key) {
            return;
        }
        if inner.ring.len() < inner.capacity {
            let slot = inner.ring.len();
            inner.ring.push(Slot { key: key.clone(), value, referenced: false });
            inner.map.insert(key, slot);
        } else {
            let slot = inner.evict_one();
            inner.ring[slot] = Slot { key: key.clone(), value, referenced: false };
            inner.map.insert(key, slot);
        }
    }

    /// Number of live entries, summed over shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock_unpoisoned().map.len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every live `(key, result)` pair, in shard order then insertion/ring
    /// order — the export [`crate::journal::SolutionSnapshot`] serializes.
    /// A full-cache export clones every entry; snapshotting is expected at
    /// checkpoint cadence, not per job.
    pub fn entries(&self) -> Vec<(CacheKey, CachedResult)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let inner = shard.lock_unpoisoned();
            for slot in &inner.ring {
                out.push((slot.key.clone(), slot.value.clone()));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Single-flight: in-flight duplicate suppression ahead of the cache.
// ---------------------------------------------------------------------------

/// Identity of an in-flight solve in the [`FlightTable`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum FlightKey {
    /// Pre-compilation identity: the exact (label-order-sensitive)
    /// [`qdm_qubo::model::QuboModel::fingerprint`] plus everything else a
    /// [`CacheKey`] carries. Checked before the job compiles, so an exact
    /// concurrent duplicate coalesces without paying a compilation.
    Exact {
        /// The problem's `DmProblem::name`.
        problem: String,
        /// Label-order-sensitive model fingerprint (no compile needed).
        raw_fingerprint: u64,
        /// Packed result-affecting pipeline options ([`pack_options`]).
        options_bits: u8,
        /// Per-job RNG seed.
        seed: u64,
        /// Requested backend marker, `None` for auto routing.
        backend: Option<String>,
    },
    /// Post-compilation identity: the canonical cache key, which
    /// additionally coalesces permuted-but-identical encodings.
    Canonical(CacheKey),
}

impl FlightKey {
    /// Builds the pre-compilation exact key.
    pub(crate) fn exact(
        problem: String,
        raw_fingerprint: u64,
        options: &PipelineOptions,
        seed: u64,
        backend: Option<&str>,
    ) -> Self {
        Self::Exact {
            problem,
            raw_fingerprint,
            options_bits: pack_options(options),
            seed,
            backend: backend.map(str::to_string),
        }
    }
}

/// What a completed leader hands its parked followers: the same
/// [`CachedResult`] it inserted into the cache, plus its compilation and
/// canonical permutation so exact followers (who skipped compiling) can run
/// the standard cache-hit translation.
#[derive(Clone)]
pub(crate) struct FlightOutput {
    pub(crate) cached: CachedResult,
    pub(crate) compiled: Arc<CompiledQubo>,
    pub(crate) perm: Arc<Vec<usize>>,
}

/// How a follower's park resolved.
pub(crate) enum FlightResolution {
    /// The leader finished; serve its result.
    Served(FlightOutput),
    /// The leader failed deterministically (routing error); the duplicate
    /// would have failed identically.
    Failed(JobError),
    /// The leader disappeared without publishing (it panicked); the
    /// follower must retry from the top — it may become the new leader.
    Abandoned,
}

enum FlightState {
    Pending,
    /// Boxed: the output dwarfs the other variants and most flights spend
    /// their lifetime `Pending`.
    Done(Box<Result<FlightOutput, JobError>>),
    Abandoned,
}

/// One in-flight solve: the completion cell duplicates park on.
pub(crate) struct Flight {
    state: Mutex<FlightState>,
    done: Condvar,
}

impl Flight {
    fn new() -> Self {
        Self { state: Mutex::new(FlightState::Pending), done: Condvar::new() }
    }

    /// Parks until the leader publishes or abandons.
    pub(crate) fn wait(&self) -> FlightResolution {
        let mut state = self.state.lock_unpoisoned();
        loop {
            match &*state {
                FlightState::Pending => state = self.done.wait_unpoisoned(state),
                FlightState::Done(outcome) => {
                    return match outcome.as_ref() {
                        Ok(output) => FlightResolution::Served(output.clone()),
                        Err(err) => FlightResolution::Failed(err.clone()),
                    }
                }
                FlightState::Abandoned => return FlightResolution::Abandoned,
            }
        }
    }

    fn publish(&self, state: FlightState) {
        *self.state.lock_unpoisoned() = state;
        self.done.notify_all();
    }
}

/// Whether a job leads its flight or coalesces onto an existing one.
pub(crate) enum FlightRole<'t> {
    /// First arrival: the caller must solve and then
    /// [`FlightLease::publish`] (or drop the lease on panic, which wakes
    /// followers with [`FlightResolution::Abandoned`]).
    Leader(FlightLease<'t>),
    /// A leader is already solving this key: park on its flight.
    Follower(Arc<Flight>),
}

/// The in-flight table: at most one leader per [`FlightKey`].
pub(crate) struct FlightTable {
    map: Mutex<HashMap<FlightKey, Arc<Flight>>>,
}

impl FlightTable {
    pub(crate) fn new() -> Self {
        Self { map: Mutex::new(HashMap::new()) }
    }

    /// Registers the caller as the leader for `key`, or returns the
    /// existing in-flight [`Flight`] to park on.
    pub(crate) fn join_or_lead(&self, key: FlightKey) -> FlightRole<'_> {
        let mut map = self.map.lock_unpoisoned();
        match map.entry(key.clone()) {
            Entry::Occupied(entry) => FlightRole::Follower(Arc::clone(entry.get())),
            Entry::Vacant(entry) => {
                let flight = Arc::new(Flight::new());
                entry.insert(Arc::clone(&flight));
                FlightRole::Leader(FlightLease {
                    table: self,
                    flight,
                    keys: vec![key],
                    resolved: false,
                })
            }
        }
    }
}

/// A leader's registration in the [`FlightTable`]. Publishing (or dropping,
/// for the panic path) removes every registered key and wakes all parked
/// followers exactly once.
pub(crate) struct FlightLease<'t> {
    table: &'t FlightTable,
    flight: Arc<Flight>,
    keys: Vec<FlightKey>,
    resolved: bool,
}

impl FlightLease<'_> {
    /// Tries to also lead `key` (the canonical key, learned after
    /// compiling). Returns `None` on success; if a *different* leader
    /// already holds it, returns that flight so the caller can demote to a
    /// follower of it. Extending with a key this lease already leads is a
    /// no-op success (the cluster-routed path registers the canonical key
    /// *before* compiling, and the shared lead path re-derives it after).
    pub(crate) fn extend(&mut self, key: FlightKey) -> Option<Arc<Flight>> {
        let mut map = self.table.map.lock_unpoisoned();
        match map.entry(key.clone()) {
            Entry::Occupied(entry) if Arc::ptr_eq(entry.get(), &self.flight) => None,
            Entry::Occupied(entry) => Some(Arc::clone(entry.get())),
            Entry::Vacant(entry) => {
                entry.insert(Arc::clone(&self.flight));
                self.keys.push(key);
                None
            }
        }
    }

    /// Publishes the flight's outcome to every parked follower and
    /// deregisters its keys. Call *after* inserting a successful result into
    /// the cache, so a duplicate arriving post-deregistration hits the cache.
    pub(crate) fn publish(mut self, outcome: Result<FlightOutput, JobError>) {
        self.resolve(FlightState::Done(Box::new(outcome)));
    }

    fn resolve(&mut self, state: FlightState) {
        if self.resolved {
            return;
        }
        self.resolved = true;
        {
            let mut map = self.table.map.lock_unpoisoned();
            for key in &self.keys {
                map.remove(key);
            }
        }
        self.flight.publish(state);
    }
}

impl Drop for FlightLease<'_> {
    /// A lease dropped without publishing means the leader panicked
    /// mid-solve: followers wake with [`FlightResolution::Abandoned`] and
    /// retry instead of parking forever.
    fn drop(&mut self) {
        self.resolve(FlightState::Abandoned);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdm_core::problem::Decoded;

    fn report(tag: &str) -> PipelineReport {
        PipelineReport {
            problem: tag.to_string(),
            solver: "exact".to_string(),
            n_vars: 2,
            max_subproblem_vars: 2,
            components: 1,
            presolve_fixed: 0,
            bits: vec![true, false],
            energy: -1.0,
            decoded: Decoded { feasible: true, objective: -1.0, summary: tag.into() },
            evaluations: 4,
            seconds: 0.0,
        }
    }

    fn entry(tag: &str, backend: &str) -> CachedResult {
        let report = report(tag);
        CachedResult { canonical_bits: report.bits.clone(), report, backend: backend.into() }
    }

    fn key(fp: u64) -> CacheKey {
        CacheKey::new("p".into(), fp, &PipelineOptions::default(), 7, None)
    }

    #[test]
    fn hit_returns_inserted_report() {
        let cache = ResultCache::new(4);
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), entry("a", "exact"));
        let hit = cache.get(&key(1)).expect("hit");
        assert_eq!(hit.report.problem, "a");
        assert_eq!(hit.backend, "exact");
        assert_eq!(hit.canonical_bits, vec![true, false]);
    }

    #[test]
    fn distinct_options_seeds_and_backends_do_not_collide() {
        let opts = PipelineOptions::default();
        let presolve = PipelineOptions { presolve: true, ..Default::default() };
        let a = CacheKey::new("mqo".into(), 1, &opts, 7, None);
        let b = CacheKey::new("mqo".into(), 1, &presolve, 7, None);
        let c = CacheKey::new("mqo".into(), 1, &opts, 8, None);
        let d = CacheKey::new("mqo".into(), 1, &opts, 7, Some("tabu"));
        let e = CacheKey::new("join".into(), 1, &opts, 7, None);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_ne!(a, e, "same QUBO, different problem type: distinct entries");
    }

    #[test]
    fn priority_does_not_split_cache_keys() {
        use qdm_core::pipeline::JobPriority;
        let normal = PipelineOptions::default();
        let high = PipelineOptions { priority: JobPriority::High, ..Default::default() };
        assert_eq!(
            CacheKey::new("mqo".into(), 1, &normal, 7, None),
            CacheKey::new("mqo".into(), 1, &high, 7, None),
            "priority is scheduling-only; results are identical across levels"
        );
    }

    #[test]
    fn clock_eviction_bounds_size() {
        let cache = ResultCache::new(2);
        assert_eq!(cache.shard_count(), 1, "tiny caches stay unsharded");
        for fp in 0..5u64 {
            cache.insert(key(fp), entry("r", "e"));
        }
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(0)).is_none(), "untouched entries evicted in insertion order");
        assert!(cache.get(&key(4)).is_some(), "newest entry retained");
    }

    #[test]
    fn hot_entry_survives_an_eviction_cycle_fifo_would_drop_it_in() {
        let cache = ResultCache::new(2);
        cache.insert(key(1), entry("hot", "e"));
        cache.insert(key(2), entry("cold", "e"));
        // The hot fingerprint keeps hitting; under FIFO that would not
        // matter — key(1) is the oldest insertion and the next insert would
        // evict it.
        assert!(cache.get(&key(1)).is_some());
        cache.insert(key(3), entry("new", "e"));
        assert!(cache.get(&key(1)).is_some(), "second chance must spare the hot entry");
        assert!(cache.get(&key(2)).is_none(), "the unreferenced entry is evicted instead");
        assert!(cache.get(&key(3)).is_some());
        // The spared entry's second chance is spent: with no further hits it
        // is next out.
        cache.insert(key(4), entry("newer", "e"));
        assert!(cache.get(&key(1)).is_none(), "a second chance is not immortality");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn sharding_caps_at_max_shards_and_preserves_total_capacity() {
        let cache = ResultCache::new(1024);
        assert_eq!(cache.shard_count(), MAX_SHARDS);
        // 1024 entries spread over 16 shards of 64: nothing evicted yet.
        for fp in 0..1024u64 {
            cache.insert(key(fp), entry("r", "e"));
        }
        assert_eq!(cache.len(), 1024);
        // One more per shard rolls the oldest of each shard out.
        for fp in 1024..1040u64 {
            cache.insert(key(fp), entry("r", "e"));
        }
        assert_eq!(cache.len(), 1024, "total stays at capacity");
        for fp in 0..16u64 {
            assert!(cache.get(&key(fp)).is_none(), "fp {fp} was each shard's oldest");
        }
    }

    #[test]
    fn first_writer_wins_on_duplicate_insert() {
        let cache = ResultCache::new(4);
        cache.insert(key(1), entry("first", "e"));
        cache.insert(key(1), entry("second", "e"));
        assert_eq!(cache.get(&key(1)).unwrap().report.problem, "first");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn shard_capacities_sum_to_exactly_the_configured_capacity() {
        // 1000 / 64 → 15 shards; a flat 1000/15 = 66 per shard would hold
        // only 990 entries. The remainder must be spread across shards.
        for capacity in [1, 2, 17, 63, 64, 100, 777, 1000, 1024, 4096, 4099] {
            let cache = ResultCache::new(capacity);
            assert_eq!(cache.capacity(), capacity, "capacity {capacity} must round-trip");
        }
    }

    #[test]
    fn a_1000_entry_cache_actually_holds_1000_entries() {
        let cache = ResultCache::new(1000);
        assert_eq!(cache.shard_count(), 15);
        for fp in 0..1000u64 {
            cache.insert(key(fp), entry("r", "e"));
        }
        // Sequential fingerprints land `fp % 15` and fill shard s with 67
        // entries for s < 10 and 66 for s ≥ 10 — exactly the remainder
        // distribution — so nothing may have been evicted.
        assert_eq!(cache.len(), 1000, "no entry of the first 1000 may be evicted");
        for fp in 1000..3000u64 {
            cache.insert(key(fp), entry("r", "e"));
        }
        assert_eq!(cache.len(), 1000, "the total stays pinned at capacity under churn");
    }

    #[test]
    fn flight_table_has_one_leader_per_key_and_reopens_after_publish() {
        let table = FlightTable::new();
        let fk = || FlightKey::Canonical(key(7));
        let lease = match table.join_or_lead(fk()) {
            FlightRole::Leader(lease) => lease,
            FlightRole::Follower(_) => panic!("first arrival must lead"),
        };
        let follower = match table.join_or_lead(fk()) {
            FlightRole::Follower(flight) => flight,
            FlightRole::Leader(_) => panic!("second arrival must coalesce"),
        };
        let output = FlightOutput {
            cached: entry("led", "e"),
            compiled: Arc::new(qdm_qubo::model::QuboModel::new(2).compile()),
            perm: Arc::new(vec![0, 1]),
        };
        lease.publish(Ok(output));
        match follower.wait() {
            FlightResolution::Served(out) => assert_eq!(out.cached.report.problem, "led"),
            _ => panic!("published flight must serve its followers"),
        }
        // The key is deregistered: the next arrival leads a fresh flight.
        assert!(matches!(table.join_or_lead(fk()), FlightRole::Leader(_)));
    }

    #[test]
    fn dropping_a_lease_without_publishing_abandons_followers() {
        let table = FlightTable::new();
        let fk = || FlightKey::Canonical(key(9));
        let lease = match table.join_or_lead(fk()) {
            FlightRole::Leader(lease) => lease,
            FlightRole::Follower(_) => panic!("first arrival must lead"),
        };
        let follower = match table.join_or_lead(fk()) {
            FlightRole::Follower(flight) => flight,
            FlightRole::Leader(_) => panic!("second arrival must coalesce"),
        };
        drop(lease); // the panic path: no publish
        assert!(matches!(follower.wait(), FlightResolution::Abandoned));
        assert!(matches!(table.join_or_lead(fk()), FlightRole::Leader(_)));
    }

    #[test]
    fn extend_with_an_already_held_key_is_a_noop_success() {
        let table = FlightTable::new();
        let canonical = || FlightKey::Canonical(key(11));
        let mut lease = match table.join_or_lead(canonical()) {
            FlightRole::Leader(lease) => lease,
            FlightRole::Follower(_) => panic!("first arrival must lead"),
        };
        assert!(lease.extend(canonical()).is_none(), "own key must not demote the leader");
        drop(lease);
        assert!(matches!(table.join_or_lead(canonical()), FlightRole::Leader(_)));
    }

    #[test]
    fn extend_registers_a_second_key_or_demotes_on_collision() {
        let table = FlightTable::new();
        let exact =
            || FlightKey::exact("p".into(), 1, &PipelineOptions::default(), 7, Some("tabu"));
        let canonical = || FlightKey::Canonical(key(5));
        let mut lease_a = match table.join_or_lead(exact()) {
            FlightRole::Leader(lease) => lease,
            FlightRole::Follower(_) => panic!("must lead"),
        };
        assert!(lease_a.extend(canonical()).is_none(), "free canonical key extends the lease");
        // A different leader holding the canonical key demotes the caller.
        let mut lease_b = match table.join_or_lead(FlightKey::exact(
            "p".into(),
            2,
            &PipelineOptions::default(),
            7,
            None,
        )) {
            FlightRole::Leader(lease) => lease,
            FlightRole::Follower(_) => panic!("distinct exact key must lead"),
        };
        assert!(lease_b.extend(canonical()).is_some(), "occupied canonical key demotes");
        drop(lease_b);
        // Publishing lease A clears both of its keys.
        let output = FlightOutput {
            cached: entry("a", "e"),
            compiled: Arc::new(qdm_qubo::model::QuboModel::new(2).compile()),
            perm: Arc::new(vec![0, 1]),
        };
        lease_a.publish(Ok(output));
        assert!(matches!(table.join_or_lead(exact()), FlightRole::Leader(_)));
        assert!(matches!(table.join_or_lead(canonical()), FlightRole::Leader(_)));
    }
}
