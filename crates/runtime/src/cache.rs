//! The result cache: completed [`PipelineReport`]s keyed by a canonical
//! fingerprint of the *work*, so repeated submissions of the same encoding —
//! the common case when the same MQO or join-ordering instance arrives again
//! — are served without re-solving.
//!
//! The key combines the QUBO's permutation-invariant canonical fingerprint
//! ([`qdm_qubo::model::QuboModel::canonical_fingerprint`]) with the pipeline
//! options, the job seed, and the requested backend, so even the same
//! instance encoded with its variables enumerated in a different order hits.
//! Entries store the solved assignment in *canonical* variable order
//! ([`CachedResult::canonical_bits`]); the service translates it back into
//! the requester's labeling on every hit. Under fixed seeds every pipeline
//! stage is deterministic, so an identically-labeled hit returns a
//! **bit-identical** report to what re-solving would have produced; the
//! cache trades memory for latency without changing any observable result.
//!
//! Storage is sharded: `min(capacity, MAX_SHARDS)` independently locked
//! shards selected by the canonical fingerprint, so concurrent workers
//! rarely contend on the same mutex at high worker counts. Each shard
//! evicts independently with a **second-chance (CLOCK)** policy: every
//! entry carries a referenced bit that hits set; the eviction hand clears
//! set bits as it sweeps and evicts the first entry it finds unreferenced.
//! A hot fingerprint that keeps hitting therefore survives churn that plain
//! FIFO insertion order would have evicted it under, at FIFO's O(1) cost
//! and with none of LRU's per-hit list surgery. The total never exceeds the
//! configured capacity.

use qdm_core::pipeline::{PipelineOptions, PipelineReport};
use std::collections::HashMap;
use std::sync::Mutex;

/// Upper bound on the number of independently locked cache shards.
pub const MAX_SHARDS: usize = 16;

/// Minimum capacity a shard is worth: small caches stay unsharded so
/// fingerprint collisions between a handful of entries cannot evict each
/// other prematurely.
pub const SHARD_MIN_CAPACITY: usize = 64;

/// Cache key: canonical work identity.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The problem's [`qdm_core::problem::DmProblem::name`]. Two different
    /// problem types can encode to coefficient-identical QUBOs while
    /// decoding/repairing differently; the name keeps their entries apart.
    pub problem: String,
    /// Permutation-invariant canonical QUBO fingerprint.
    pub qubo_fingerprint: u64,
    /// Pipeline options, packed (presolve | decompose<<1 | repair<<2).
    /// Priority is scheduling-only and deliberately excluded: a job's result
    /// is identical at every priority level.
    pub options_bits: u8,
    /// Per-job RNG seed.
    pub seed: u64,
    /// Requested backend name, or `None` for portfolio ("auto") routing.
    pub backend: Option<String>,
}

impl CacheKey {
    /// Builds a key from job parameters.
    pub fn new(
        problem: String,
        qubo_fingerprint: u64,
        options: &PipelineOptions,
        seed: u64,
        backend: Option<&str>,
    ) -> Self {
        let options_bits = (options.presolve as u8)
            | ((options.decompose as u8) << 1)
            | ((options.repair as u8) << 2);
        Self { problem, qubo_fingerprint, options_bits, seed, backend: backend.map(str::to_string) }
    }
}

/// A cached completed job.
#[derive(Debug, Clone)]
pub struct CachedResult {
    /// The full pipeline report as produced by the original solve (its
    /// `bits` are in the *original submitter's* variable order).
    pub report: PipelineReport,
    /// The solved assignment permuted into canonical variable order, so a
    /// hit from a permuted-but-identical encoding can translate it into its
    /// own labeling (`bits[i] = canonical_bits[perm[i]]`).
    pub canonical_bits: Vec<bool>,
    /// Name of the backend that produced it.
    pub backend: String,
}

/// One ring slot of a shard's CLOCK: the entry plus its referenced bit.
struct Slot {
    key: CacheKey,
    value: CachedResult,
    referenced: bool,
}

struct CacheInner {
    /// Key → ring index of the live entry.
    map: HashMap<CacheKey, usize>,
    /// The CLOCK ring, filled up to the shard capacity and then recycled in
    /// place (deterministic, no clocks-the-time-kind).
    ring: Vec<Slot>,
    /// Next ring position the eviction hand examines.
    hand: usize,
}

impl CacheInner {
    /// Second-chance sweep: clears referenced bits until it lands on an
    /// unreferenced entry, evicts it, and returns its ring index for reuse.
    /// Terminates within two laps (after one lap every bit is clear).
    fn evict_one(&mut self) -> usize {
        loop {
            let h = self.hand;
            self.hand = (self.hand + 1) % self.ring.len();
            let slot = &mut self.ring[h];
            if slot.referenced {
                slot.referenced = false;
            } else {
                self.map.remove(&slot.key);
                return h;
            }
        }
    }
}

/// A bounded, thread-safe result cache: fingerprint-sharded with per-shard
/// second-chance (CLOCK) eviction.
pub struct ResultCache {
    shards: Vec<Mutex<CacheInner>>,
    per_shard_capacity: usize,
}

impl ResultCache {
    /// A cache holding at most `capacity` results (at least 1). The shard
    /// count scales with capacity — one shard per [`SHARD_MIN_CAPACITY`]
    /// entries, capped at [`MAX_SHARDS`] — so the default service cache gets
    /// full sharding while tiny test caches keep single-FIFO semantics.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let n_shards = (capacity / SHARD_MIN_CAPACITY).clamp(1, MAX_SHARDS);
        let per_shard_capacity = (capacity / n_shards).max(1);
        let shards = (0..n_shards)
            .map(|_| Mutex::new(CacheInner { map: HashMap::new(), ring: Vec::new(), hand: 0 }))
            .collect();
        Self { shards, per_shard_capacity }
    }

    /// Number of independently locked shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<CacheInner> {
        &self.shards[(key.qubo_fingerprint as usize) % self.shards.len()]
    }

    /// Looks up a completed result, marking the entry referenced so the
    /// CLOCK hand grants it a second chance on its next sweep.
    pub fn get(&self, key: &CacheKey) -> Option<CachedResult> {
        let mut inner = self.shard(key).lock().expect("cache lock");
        let &slot = inner.map.get(key)?;
        inner.ring[slot].referenced = true;
        Some(inner.ring[slot].value.clone())
    }

    /// Inserts a completed result; when the shard is full the CLOCK hand
    /// evicts the first entry it finds whose referenced bit is clear
    /// (clearing set bits as it sweeps). New entries start unreferenced —
    /// they earn their second chance by being hit. First-writer-wins on
    /// races: a duplicate insert (two workers solving the same key
    /// concurrently) keeps the existing entry so later hits stay consistent
    /// with earlier responses.
    pub fn insert(&self, key: CacheKey, value: CachedResult) {
        let mut inner = self.shard(&key).lock().expect("cache lock");
        if inner.map.contains_key(&key) {
            return;
        }
        if inner.ring.len() < self.per_shard_capacity {
            let slot = inner.ring.len();
            inner.ring.push(Slot { key: key.clone(), value, referenced: false });
            inner.map.insert(key, slot);
        } else {
            let slot = inner.evict_one();
            inner.ring[slot] = Slot { key: key.clone(), value, referenced: false };
            inner.map.insert(key, slot);
        }
    }

    /// Number of live entries, summed over shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache lock").map.len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdm_core::problem::Decoded;

    fn report(tag: &str) -> PipelineReport {
        PipelineReport {
            problem: tag.to_string(),
            solver: "exact".to_string(),
            n_vars: 2,
            max_subproblem_vars: 2,
            components: 1,
            presolve_fixed: 0,
            bits: vec![true, false],
            energy: -1.0,
            decoded: Decoded { feasible: true, objective: -1.0, summary: tag.into() },
            evaluations: 4,
            seconds: 0.0,
        }
    }

    fn entry(tag: &str, backend: &str) -> CachedResult {
        let report = report(tag);
        CachedResult { canonical_bits: report.bits.clone(), report, backend: backend.into() }
    }

    fn key(fp: u64) -> CacheKey {
        CacheKey::new("p".into(), fp, &PipelineOptions::default(), 7, None)
    }

    #[test]
    fn hit_returns_inserted_report() {
        let cache = ResultCache::new(4);
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), entry("a", "exact"));
        let hit = cache.get(&key(1)).expect("hit");
        assert_eq!(hit.report.problem, "a");
        assert_eq!(hit.backend, "exact");
        assert_eq!(hit.canonical_bits, vec![true, false]);
    }

    #[test]
    fn distinct_options_seeds_and_backends_do_not_collide() {
        let opts = PipelineOptions::default();
        let presolve = PipelineOptions { presolve: true, ..Default::default() };
        let a = CacheKey::new("mqo".into(), 1, &opts, 7, None);
        let b = CacheKey::new("mqo".into(), 1, &presolve, 7, None);
        let c = CacheKey::new("mqo".into(), 1, &opts, 8, None);
        let d = CacheKey::new("mqo".into(), 1, &opts, 7, Some("tabu"));
        let e = CacheKey::new("join".into(), 1, &opts, 7, None);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_ne!(a, e, "same QUBO, different problem type: distinct entries");
    }

    #[test]
    fn priority_does_not_split_cache_keys() {
        use qdm_core::pipeline::JobPriority;
        let normal = PipelineOptions::default();
        let high = PipelineOptions { priority: JobPriority::High, ..Default::default() };
        assert_eq!(
            CacheKey::new("mqo".into(), 1, &normal, 7, None),
            CacheKey::new("mqo".into(), 1, &high, 7, None),
            "priority is scheduling-only; results are identical across levels"
        );
    }

    #[test]
    fn clock_eviction_bounds_size() {
        let cache = ResultCache::new(2);
        assert_eq!(cache.shard_count(), 1, "tiny caches stay unsharded");
        for fp in 0..5u64 {
            cache.insert(key(fp), entry("r", "e"));
        }
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(0)).is_none(), "untouched entries evicted in insertion order");
        assert!(cache.get(&key(4)).is_some(), "newest entry retained");
    }

    #[test]
    fn hot_entry_survives_an_eviction_cycle_fifo_would_drop_it_in() {
        let cache = ResultCache::new(2);
        cache.insert(key(1), entry("hot", "e"));
        cache.insert(key(2), entry("cold", "e"));
        // The hot fingerprint keeps hitting; under FIFO that would not
        // matter — key(1) is the oldest insertion and the next insert would
        // evict it.
        assert!(cache.get(&key(1)).is_some());
        cache.insert(key(3), entry("new", "e"));
        assert!(cache.get(&key(1)).is_some(), "second chance must spare the hot entry");
        assert!(cache.get(&key(2)).is_none(), "the unreferenced entry is evicted instead");
        assert!(cache.get(&key(3)).is_some());
        // The spared entry's second chance is spent: with no further hits it
        // is next out.
        cache.insert(key(4), entry("newer", "e"));
        assert!(cache.get(&key(1)).is_none(), "a second chance is not immortality");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn sharding_caps_at_max_shards_and_preserves_total_capacity() {
        let cache = ResultCache::new(1024);
        assert_eq!(cache.shard_count(), MAX_SHARDS);
        // 1024 entries spread over 16 shards of 64: nothing evicted yet.
        for fp in 0..1024u64 {
            cache.insert(key(fp), entry("r", "e"));
        }
        assert_eq!(cache.len(), 1024);
        // One more per shard rolls the oldest of each shard out.
        for fp in 1024..1040u64 {
            cache.insert(key(fp), entry("r", "e"));
        }
        assert_eq!(cache.len(), 1024, "total stays at capacity");
        for fp in 0..16u64 {
            assert!(cache.get(&key(fp)).is_none(), "fp {fp} was each shard's oldest");
        }
    }

    #[test]
    fn first_writer_wins_on_duplicate_insert() {
        let cache = ResultCache::new(4);
        cache.insert(key(1), entry("first", "e"));
        cache.insert(key(1), entry("second", "e"));
        assert_eq!(cache.get(&key(1)).unwrap().report.problem, "first");
        assert_eq!(cache.len(), 1);
    }
}
