//! The result cache: completed [`PipelineReport`]s keyed by a canonical
//! fingerprint of the *work*, so repeated submissions of the same encoding —
//! the common case when the same MQO or join-ordering instance arrives again
//! — are served without re-solving.
//!
//! The key combines the QUBO's canonical fingerprint
//! ([`qdm_qubo::model::QuboModel::fingerprint`]) with the pipeline options,
//! the job seed, and the requested backend. Under fixed seeds every pipeline
//! stage is deterministic, so a hit returns a **bit-identical** report to
//! what re-solving would have produced; the cache trades memory for latency
//! without changing any observable result.

use qdm_core::pipeline::{PipelineOptions, PipelineReport};
use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

/// Cache key: canonical work identity.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The problem's [`qdm_core::problem::DmProblem::name`]. Two different
    /// problem types can encode to coefficient-identical QUBOs while
    /// decoding/repairing differently; the name keeps their entries apart.
    pub problem: String,
    /// Canonical QUBO fingerprint.
    pub qubo_fingerprint: u64,
    /// Pipeline options, packed (presolve | decompose<<1 | repair<<2).
    pub options_bits: u8,
    /// Per-job RNG seed.
    pub seed: u64,
    /// Requested backend name, or `None` for portfolio ("auto") routing.
    pub backend: Option<String>,
}

impl CacheKey {
    /// Builds a key from job parameters.
    pub fn new(
        problem: String,
        qubo_fingerprint: u64,
        options: &PipelineOptions,
        seed: u64,
        backend: Option<&str>,
    ) -> Self {
        let options_bits = (options.presolve as u8)
            | ((options.decompose as u8) << 1)
            | ((options.repair as u8) << 2);
        Self { problem, qubo_fingerprint, options_bits, seed, backend: backend.map(str::to_string) }
    }
}

/// A cached completed job.
#[derive(Debug, Clone)]
pub struct CachedResult {
    /// The full pipeline report served to repeated submissions.
    pub report: PipelineReport,
    /// Name of the backend that produced it.
    pub backend: String,
}

struct CacheInner {
    map: HashMap<CacheKey, CachedResult>,
    /// Insertion order for FIFO eviction (deterministic, no clocks).
    order: VecDeque<CacheKey>,
}

/// A bounded, thread-safe result cache with FIFO eviction.
pub struct ResultCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

impl ResultCache {
    /// A cache holding at most `capacity` results (at least 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(CacheInner { map: HashMap::new(), order: VecDeque::new() }),
            capacity: capacity.max(1),
        }
    }

    /// Looks up a completed result.
    pub fn get(&self, key: &CacheKey) -> Option<CachedResult> {
        self.inner.lock().expect("cache lock").map.get(key).cloned()
    }

    /// Inserts a completed result, evicting the oldest entry when full.
    /// First-writer-wins on races: a duplicate insert (two workers solving
    /// the same key concurrently) keeps the existing entry so later hits stay
    /// consistent with earlier responses.
    pub fn insert(&self, key: CacheKey, value: CachedResult) {
        let mut inner = self.inner.lock().expect("cache lock");
        if inner.map.contains_key(&key) {
            return;
        }
        while inner.map.len() >= self.capacity {
            match inner.order.pop_front() {
                Some(oldest) => {
                    inner.map.remove(&oldest);
                }
                None => break,
            }
        }
        inner.order.push_back(key.clone());
        inner.map.insert(key, value);
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdm_core::problem::Decoded;

    fn report(tag: &str) -> PipelineReport {
        PipelineReport {
            problem: tag.to_string(),
            solver: "exact".to_string(),
            n_vars: 2,
            max_subproblem_vars: 2,
            components: 1,
            presolve_fixed: 0,
            bits: vec![true, false],
            energy: -1.0,
            decoded: Decoded { feasible: true, objective: -1.0, summary: tag.into() },
            evaluations: 4,
            seconds: 0.0,
        }
    }

    fn key(fp: u64) -> CacheKey {
        CacheKey::new("p".into(), fp, &PipelineOptions::default(), 7, None)
    }

    #[test]
    fn hit_returns_inserted_report() {
        let cache = ResultCache::new(4);
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), CachedResult { report: report("a"), backend: "exact".into() });
        let hit = cache.get(&key(1)).expect("hit");
        assert_eq!(hit.report.problem, "a");
        assert_eq!(hit.backend, "exact");
    }

    #[test]
    fn distinct_options_seeds_and_backends_do_not_collide() {
        let opts = PipelineOptions::default();
        let presolve = PipelineOptions { presolve: true, ..Default::default() };
        let a = CacheKey::new("mqo".into(), 1, &opts, 7, None);
        let b = CacheKey::new("mqo".into(), 1, &presolve, 7, None);
        let c = CacheKey::new("mqo".into(), 1, &opts, 8, None);
        let d = CacheKey::new("mqo".into(), 1, &opts, 7, Some("tabu"));
        let e = CacheKey::new("join".into(), 1, &opts, 7, None);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_ne!(a, e, "same QUBO, different problem type: distinct entries");
    }

    #[test]
    fn fifo_eviction_bounds_size() {
        let cache = ResultCache::new(2);
        for fp in 0..5u64 {
            cache.insert(key(fp), CachedResult { report: report("r"), backend: "e".into() });
        }
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(0)).is_none(), "oldest entries evicted");
        assert!(cache.get(&key(4)).is_some(), "newest entry retained");
    }

    #[test]
    fn first_writer_wins_on_duplicate_insert() {
        let cache = ResultCache::new(4);
        cache.insert(key(1), CachedResult { report: report("first"), backend: "e".into() });
        cache.insert(key(1), CachedResult { report: report("second"), backend: "e".into() });
        assert_eq!(cache.get(&key(1)).unwrap().report.problem, "first");
        assert_eq!(cache.len(), 1);
    }
}
