//! The solver registry: every backend the service can dispatch to, with the
//! capability metadata the portfolio scheduler routes on.
//!
//! A backend is any [`QuboSolver`] from the Fig. 2 registry in `qdm-core` —
//! annealing stand-ins, gate-based routes on the state-vector simulator, or
//! classical baselines. The registry snapshots each backend's capabilities
//! ([`SolverSpec`]) at registration so routing decisions never need to touch
//! the trait object.

use qdm_core::solver::{full_registry, QuboSolver, SolverKind};
use qdm_qubo::model::QuboModel;
use qdm_qubo::solve::SolveResult;
use rand::rngs::StdRng;

/// Capability metadata for one registered backend.
#[derive(Debug, Clone)]
pub struct SolverSpec {
    /// Backend name (the solver's [`QuboSolver::name`]).
    pub name: String,
    /// Which Fig. 2 branch the backend belongs to.
    pub kind: SolverKind,
    /// Largest variable count the backend accepts.
    pub max_vars: usize,
}

/// One backend: its capability snapshot plus the shared solver instance.
pub struct RegisteredSolver {
    /// Capability metadata used for routing.
    pub spec: SolverSpec,
    solver: Box<dyn QuboSolver + Send + Sync>,
}

impl RegisteredSolver {
    /// Solves `q` on this backend.
    pub fn solve(&self, q: &QuboModel, rng: &mut StdRng) -> SolveResult {
        self.solver.solve(q, rng)
    }

    /// The underlying solver (for handing to `run_pipeline`).
    pub fn solver(&self) -> &(dyn QuboSolver + Send + Sync) {
        self.solver.as_ref()
    }
}

/// The set of backends a [`crate::service::SolverService`] dispatches over.
#[derive(Default)]
pub struct SolverRegistry {
    backends: Vec<RegisteredSolver>,
}

impl SolverRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a backend, snapshotting its capabilities. Returns the
    /// backend's index for direct routing.
    ///
    /// # Panics
    /// Panics if the backend's name contains `':'` — the service reserves
    /// that character for internal cache-key markers (a `Race { k }` job is
    /// keyed as `"race:<k>"`), and a colliding name could alias a pinned
    /// job's cache entries with a race's.
    pub fn register(&mut self, solver: Box<dyn QuboSolver + Send + Sync>) -> usize {
        let name = solver.name().to_string();
        assert!(
            !name.contains(':'),
            "backend name {name:?} contains ':', which is reserved for cache-key markers"
        );
        let spec = SolverSpec { name, kind: solver.kind(), max_vars: solver.max_vars() };
        self.backends.push(RegisteredSolver { spec, solver });
        self.backends.len() - 1
    }

    /// The full Fig. 2 portfolio from `qdm-core`: every annealing, gate-based
    /// and classical route.
    pub fn standard() -> Self {
        let mut reg = Self::new();
        for solver in full_registry() {
            reg.register(solver);
        }
        reg
    }

    /// Number of registered backends.
    pub fn len(&self) -> usize {
        self.backends.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }

    /// Backend at `index`.
    pub fn get(&self, index: usize) -> &RegisteredSolver {
        &self.backends[index]
    }

    /// Looks a backend up by name.
    pub fn find(&self, name: &str) -> Option<usize> {
        self.backends.iter().position(|b| b.spec.name == name)
    }

    /// Indices of backends whose `max_vars` admits an `n_vars`-variable
    /// model, in registration order.
    pub fn eligible(&self, n_vars: usize) -> Vec<usize> {
        (0..self.backends.len()).filter(|&i| self.backends[i].spec.max_vars >= n_vars).collect()
    }

    /// Iterates over backends in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &RegisteredSolver> {
        self.backends.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_covers_all_kinds() {
        let reg = SolverRegistry::standard();
        assert!(reg.len() >= 3);
        let kinds: std::collections::HashSet<_> = reg.iter().map(|b| b.spec.kind).collect();
        assert!(kinds.contains(&SolverKind::Annealing));
        assert!(kinds.contains(&SolverKind::GateBased));
        assert!(kinds.contains(&SolverKind::Classical));
    }

    #[test]
    fn eligibility_respects_max_vars() {
        let reg = SolverRegistry::standard();
        // 30 variables rules out every 16/20-qubit gate-based route and the
        // exact enumerator (cap 26).
        for &i in &reg.eligible(30) {
            assert!(reg.get(i).spec.max_vars >= 30);
        }
        assert!(!reg.eligible(30).is_empty());
        // Tiny models are accepted everywhere.
        assert_eq!(reg.eligible(4).len(), reg.len());
    }

    #[test]
    fn find_by_name_matches_spec() {
        let reg = SolverRegistry::standard();
        let idx = reg.find("simulated-annealing").expect("SA is registered");
        assert_eq!(reg.get(idx).spec.name, "simulated-annealing");
        assert!(reg.find("no-such-backend").is_none());
    }

    #[test]
    fn parallel_sa_is_registered() {
        let reg = SolverRegistry::standard();
        let par = reg.find("simulated-annealing-parallel").expect("parallel SA registered");
        assert_eq!(reg.get(par).spec.kind, SolverKind::Annealing);
    }
}
